//! WAP versus i-mode on the same content, side by side — Table 3 live.
//!
//! Runs the identical travel-booking workload through both middlewares on
//! three different wireless networks and prints the trade-off the paper
//! tabulates: gateway translation (WAP) against heavier over-the-air
//! markup (i-mode), session setup against always-on.
//!
//! ```text
//! cargo run --example middleware_faceoff
//! ```

use mcommerce::core::{Category, FleetRunner, MiddlewareKind, Scenario, WirelessConfig};
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::{CellularStandard, WlanStandard};

fn main() {
    let networks = [
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 25.0,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        },
    ];

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "network", "mw", "latency ms", "air bytes", "energy mJ"
    );
    println!("{}", "-".repeat(70));

    for network in networks {
        for kind in [MiddlewareKind::Wap, MiddlewareKind::IMode] {
            // One user, twenty sessions: the same returning customer on
            // each stack, so WAP's one-time session setup amortises.
            let scenario = Scenario::new("faceoff")
                .app(Category::Travel)
                .middleware(kind)
                .device(DeviceProfile::nokia_9290())
                .wireless(network)
                .sessions_per_user(20)
                .seed(17);
            let summary = FleetRunner::new(scenario).run().report.summary.workload;
            assert_eq!(summary.succeeded, summary.attempted, "{}", summary.label);
            println!(
                "{:<22} {:>8} {:>12.1} {:>12.0} {:>10.2}",
                network.name(),
                kind.name(),
                summary.latency_mean * 1e3,
                summary.air_bytes_mean,
                summary.energy_mean_j * 1e3,
            );
        }
    }

    println!(
        "\nReading the table: WAP's WBXML decks are smaller on the air (its \
         gateway translates and tokenises), which wins on slow links like GPRS; \
         i-mode skips translation CPU and session setup, which shows on fast \
         links. That is Table 3's 'protocol vs service' trade-off, measured."
    );
}
