//! WAP versus i-mode on the same content, side by side — Table 3 live.
//!
//! Runs the identical travel-booking workload through both middlewares on
//! three different wireless networks and prints the trade-off the paper
//! tabulates: gateway translation (WAP) against heavier over-the-air
//! markup (i-mode), session setup against always-on.
//!
//! ```text
//! cargo run --example middleware_faceoff
//! ```

use mcommerce::core::apps::{Application, TravelApp};
use mcommerce::core::workload::run_workload;
use mcommerce::core::{McSystem, WiredPath, WirelessConfig};
use mcommerce::hostsite::db::Database;
use mcommerce::hostsite::HostComputer;
use mcommerce::middleware::{IModeService, Middleware, WapGateway};
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::{CellularStandard, WlanStandard};

fn main() {
    let networks = [
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 25.0,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        },
    ];

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "network", "mw", "latency ms", "air bytes", "energy mJ"
    );
    println!("{}", "-".repeat(70));

    for network in networks {
        for mw_name in ["WAP", "i-mode"] {
            let app = TravelApp;
            let mut host = HostComputer::new(Database::new(), 3);
            app.install(&mut host);
            let middleware: Box<dyn Middleware> = if mw_name == "WAP" {
                Box::new(WapGateway::default())
            } else {
                Box::new(IModeService::new())
            };
            let mut system = McSystem::new(
                host,
                middleware,
                DeviceProfile::nokia_9290(),
                network,
                WiredPath::wan(),
                91,
            );
            let summary = run_workload(&mut system, &app, 20, 17);
            assert_eq!(summary.succeeded, summary.attempted, "{}", summary.label);
            println!(
                "{:<22} {:>8} {:>12.1} {:>12.0} {:>10.2}",
                network.name(),
                mw_name,
                summary.latency_mean * 1e3,
                summary.air_bytes_mean,
                summary.energy_mean_j * 1e3,
            );
        }
    }

    println!(
        "\nReading the table: WAP's WBXML decks are smaller on the air (its \
         gateway translates and tokenises), which wins on slow links like GPRS; \
         i-mode skips translation CPU and session setup, which shows on fast \
         links. That is Table 3's 'protocol vs service' trade-off, measured."
    );
}
