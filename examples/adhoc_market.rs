//! Ad hoc commerce — §6.1's "if no APs are available" scenario.
//!
//! A street market with no infrastructure: a vendor's terminal and a
//! buyer's handheld are out of direct radio range, but a third stall
//! between them relays. The buyer completes a signed payment over TCP
//! across the two-hop 802.11b mesh; then the relay wanders off and the
//! market partitions.
//!
//! ```text
//! cargo run --example adhoc_market
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use mcommerce::netstack::Ip;
use mcommerce::security::{Mac, PaymentGateway, PaymentRequest};
use mcommerce::simnet::trace::Trace;
use mcommerce::simnet::Simulator;
use mcommerce::transport::{SocketAddr, Tcp};
use mcommerce::wireless::adhoc::AdHocNetwork;
use mcommerce::wireless::mobility::Point;
use mcommerce::wireless::WlanStandard;

const BUYER: Ip = Ip::new(10, 44, 0, 1);
const STALL: Ip = Ip::new(10, 44, 0, 2);
const VENDOR: Ip = Ip::new(10, 44, 0, 3);

fn main() {
    let mut sim = Simulator::new();
    let trace = Trace::bounded(256);

    let mut mesh = AdHocNetwork::new(WlanStandard::Dot11b, 44);
    let buyer = mesh.add_member("buyer", BUYER, Point::new(0.0, 0.0));
    let _stall = mesh.add_member("stall", STALL, Point::new(85.0, 0.0));
    let vendor = mesh.add_member("vendor", VENDOR, Point::new(170.0, 0.0));
    mesh.reform();

    println!(
        "mesh formed: {} members, {} radio links",
        mesh.len(),
        mesh.link_count()
    );
    println!(
        "buyer → vendor: {:?} hops (direct range of 802.11b is 100 m; they are 170 m apart)\n",
        mesh.hops(BUYER, VENDOR)
    );

    // The vendor's terminal runs the payment gateway behind a TCP port.
    let client_mac = Mac::new(b"market-day-key");
    let gateway = Rc::new(RefCell::new({
        let mut gw = PaymentGateway::new(client_mac, Mac::new(b"vendor-secret"));
        gw.open_account("buyer", 5_000);
        gw
    }));

    let tcp_vendor = Tcp::install(Rc::clone(&vendor), trace.clone());
    let tcp_buyer = Tcp::install(Rc::clone(&buyer), trace);
    {
        let gateway = Rc::clone(&gateway);
        tcp_vendor.listen(7000, move |_sim, conn| {
            let gateway = Rc::clone(&gateway);
            let conn2 = Rc::clone(&conn);
            conn.on_data(move |sim, data| {
                // Wire format: order_id(8) amount(8) nonce(8) tag(16).
                if data.len() < 40 {
                    return;
                }
                let order = u64::from_le_bytes(data[0..8].try_into().unwrap());
                let amount = u64::from_le_bytes(data[8..16].try_into().unwrap());
                let nonce = u64::from_le_bytes(data[16..24].try_into().unwrap());
                let mut tag = [0u8; 16];
                tag.copy_from_slice(&data[24..40]);
                let req = PaymentRequest {
                    order_id: order,
                    amount_cents: amount,
                    account: "buyer".into(),
                    nonce,
                    tag,
                };
                let mut gw = gateway.borrow_mut();
                let reply = match gw.authorize(&req).and_then(|()| gw.capture(order)) {
                    Ok(receipt) => format!("APPROVED auth={}", receipt.auth_code),
                    Err(e) => format!("REFUSED {e}"),
                };
                conn2.send(sim, reply.as_bytes());
            });
        });
    }

    // The buyer signs and sends the payment.
    let reply: Rc<RefCell<String>> = Rc::default();
    let conn = tcp_buyer.connect(&mut sim, BUYER, SocketAddr::new(VENDOR, 7000));
    {
        let reply = Rc::clone(&reply);
        conn.on_data(move |_sim, data| {
            reply
                .borrow_mut()
                .push_str(std::str::from_utf8(&data).unwrap_or("?"));
        });
    }
    let req = PaymentRequest::signed(&client_mac, 1, 1_250, "buyer", 9001);
    let mut wire = Vec::new();
    wire.extend_from_slice(&req.order_id.to_le_bytes());
    wire.extend_from_slice(&req.amount_cents.to_le_bytes());
    wire.extend_from_slice(&req.nonce.to_le_bytes());
    wire.extend_from_slice(&req.tag);
    conn.send(&mut sim, &wire);
    sim.run();

    println!("payment over two wireless hops: {}", reply.borrow());
    println!(
        "buyer balance now: {} cents\n",
        gateway.borrow().balance("buyer").unwrap()
    );
    assert!(reply.borrow().contains("APPROVED"));

    // The relaying stall packs up and leaves.
    mesh.move_member(1, Point::new(85.0, 300.0));
    mesh.reform();
    println!(
        "stall wandered off: buyer → vendor is now {:?} (market partitioned, {} links left)",
        mesh.hops(BUYER, VENDOR),
        mesh.link_count()
    );
    assert_eq!(mesh.hops(BUYER, VENDOR), None);
}
