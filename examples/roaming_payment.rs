//! A payment that survives roaming: Mobile IP + TCP + handoff, at packet
//! granularity.
//!
//! A mobile station keeps a TCP connection to a payment host alive while
//! it roams from its home network to a foreign network mid-transfer —
//! the §5.2 machinery (home agent interception, tunneling to the care-of
//! address, foreign-agent delivery) working under a live connection.
//! A second act replays the same story at the system-model level: a
//! [`Scenario`] fleet paying over GPRS through a mid-session cell
//! outage, with the retry policy standing in for TCP's recovery.
//!
//! ```text
//! cargo run --example roaming_payment
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use mcommerce::core::{
    Category, FaultKind, FaultPlan, FleetRunner, RetryPolicy, Scenario, WirelessConfig,
};
use mcommerce::netstack::mobileip::{ForeignAgent, HomeAgent, MobileIpClient};
use mcommerce::netstack::node::Network;
use mcommerce::netstack::{Ip, Subnet};
use mcommerce::simnet::link::LinkParams;
use mcommerce::simnet::trace::Trace;
use mcommerce::simnet::{SimDuration, SimTime, Simulator};
use mcommerce::transport::{SocketAddr, Tcp};

const HOST: Ip = Ip::new(20, 0, 0, 9);
const ROUTER: Ip = Ip::new(30, 0, 0, 1);
const HA: Ip = Ip::new(10, 0, 0, 1);
const FA: Ip = Ip::new(11, 0, 0, 1);
const MOBILE: Ip = Ip::new(10, 0, 0, 5);

fn main() {
    let mut sim = Simulator::new();
    let trace = Trace::bounded(4096);

    // Topology: payment host — router — {home agent, foreign agent},
    // mobile attached at home to begin with.
    let mut net = Network::new();
    let host = net.add_node("payment-host", HOST);
    let router = net.add_node("router", ROUTER);
    let ha_node = net.add_node("home-agent", HA);
    let fa_node = net.add_node("foreign-agent", FA);
    let mobile = net.add_node("mobile", MOBILE);

    let wired = LinkParams::wired_wan();
    Network::connect(&host, HOST, &router, ROUTER, wired.clone());
    Network::connect(&router, ROUTER, &ha_node, HA, wired.clone());
    Network::connect(&router, ROUTER, &fa_node, FA, wired);
    host.add_route(Subnet::DEFAULT, ROUTER);
    router.add_route("10.0.0.0/8".parse().unwrap(), HA);
    router.add_route("11.0.0.0/8".parse().unwrap(), FA);
    ha_node.add_route(Subnet::DEFAULT, ROUTER);
    fa_node.add_route(Subnet::DEFAULT, ROUTER);

    let _ha = HomeAgent::install(Rc::clone(&ha_node), HA, trace.clone());
    let _fa = ForeignAgent::install(Rc::clone(&fa_node), FA, HA, trace.clone());
    let mip = MobileIpClient::install(Rc::clone(&mobile), MOBILE, HA, trace.clone());

    let wireless = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
    Network::connect(&ha_node, HA, &mobile, MOBILE, wireless.clone());
    mobile.add_route(Subnet::DEFAULT, HA);

    // The payment host streams a signed statement (64 KB) to the mobile.
    let tcp_host = Tcp::install(Rc::clone(&host), trace.clone());
    let tcp_mobile = Tcp::install(Rc::clone(&mobile), trace.clone());

    let received: Rc<RefCell<Vec<u8>>> = Rc::default();
    {
        let received = Rc::clone(&received);
        tcp_mobile.listen(4000, move |_sim, conn| {
            let received = Rc::clone(&received);
            conn.on_data(move |_sim, data| received.borrow_mut().extend_from_slice(&data));
        });
    }

    let statement: Vec<u8> = (0..65_536u32).map(|i| (i % 251) as u8).collect();
    let conn = tcp_host.connect(&mut sim, HOST, SocketAddr::new(MOBILE, 4000));
    {
        let payload = statement.clone();
        conn.on_established(move |_sim| {
            println!("[host] connection established, streaming statement…");
            let _ = &payload;
        });
    }
    conn.send(&mut sim, &statement);

    // Mid-transfer, the user walks out of the home network: detach from
    // the HA link, attach at the FA, register via Mobile IP.
    {
        let mobile = Rc::clone(&mobile);
        let ha_node = Rc::clone(&ha_node);
        let fa_node = Rc::clone(&fa_node);
        let mip = Rc::clone(&mip);
        sim.schedule_at(SimTime::from_millis(120), move |sim| {
            println!("[mobile] t={} leaving home network…", sim.now());
            mobile.disconnect(HA);
            ha_node.disconnect(MOBILE);
            mobile.remove_route(Subnet::DEFAULT);
            let wireless = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
            Network::connect(&fa_node, FA, &mobile, MOBILE, wireless);
            mobile.add_route(Subnet::DEFAULT, FA);
            mip.register_via(sim, FA);
        });
    }
    {
        let conn = Rc::clone(&conn);
        mip.on_registered(move |sim| {
            println!(
                "[mobile] t={} Mobile IP registration complete, nudging TCP",
                sim.now()
            );
            // Caceres & Iftode: fast retransmit right after handoff.
            conn.handoff_complete(sim);
        });
    }

    sim.run_until(SimTime::from_secs(30));

    let got = received.borrow();
    println!(
        "\nstatement bytes delivered: {} / {}",
        got.len(),
        statement.len()
    );
    println!("intact: {}", got.as_slice() == statement.as_slice());
    println!(
        "sender recovery: {} retransmits, {} fast retransmits, {} RTOs",
        conn.stats.retransmits.get(),
        conn.stats.fast_retransmits.get(),
        conn.stats.rtos.get()
    );
    println!("\nMobile IP trace:");
    for event in trace.snapshot().iter().filter(|e| e.category == "mip") {
        println!("  {event}");
    }
    assert_eq!(
        got.as_slice(),
        statement.as_slice(),
        "stream must survive roaming"
    );

    // Act two: the same roam told at the transaction level. Every user's
    // cell goes dark for 8 s mid-session; the Scenario's retry knob is
    // what keeps payments settling, exactly as TCP's fast retransmit
    // kept the statement flowing above.
    println!("\n== the same roam at the system-model level ==\n");
    let outage = FaultPlan::none().window(
        SimDuration::from_secs(4),
        SimDuration::from_secs(8),
        FaultKind::WirelessOutage,
    );
    let base = Scenario::new("roaming payment")
        .app(Category::Commerce)
        .wireless(WirelessConfig::Cellular {
            standard: mcommerce::wireless::CellularStandard::Gprs,
        })
        .secure(true)
        .think_time(3.0)
        .faults(outage)
        .users(24)
        .sessions_per_user(2)
        .seed(99);
    let fragile = FleetRunner::new(base.clone().retry(RetryPolicy::none())).run().report;
    let sturdy = FleetRunner::new(base.retry(RetryPolicy::standard())).run().report;
    let (fw, sw) = (&fragile.summary.workload, &sturdy.summary.workload);
    println!(
        "no retries      : {:5.1}% of {} transactions settle",
        fw.success_rate() * 100.0,
        fragile.summary.transactions()
    );
    println!(
        "standard retries: {:5.1}% settle, {} retries spent riding out the outage",
        sw.success_rate() * 100.0,
        sw.counters.retries
    );
    assert!(
        sw.success_rate() >= fw.success_rate(),
        "retries must not lose transactions"
    );
    assert!(sw.counters.retries > 0, "the outage must cost retries");
}
