//! Mobile inventory tracking and dispatching — the workload the paper's
//! introduction calls out as "not feasible for electronic commerce".
//!
//! A fleet of drivers with handhelds scans packages through depots over
//! GPRS while a dispatcher assigns work over the office WLAN; the same
//! host database serves both. Prints fleet progress and the per-network
//! cost difference.
//!
//! ```text
//! cargo run --example inventory_tracking
//! ```

use mcommerce::core::apps::{Application, InventoryApp};
use mcommerce::core::report::WorkloadSummary;
use mcommerce::core::workload::run_session;
use mcommerce::core::{CommerceSystem, MiddlewareKind, SystemSpec, WiredPath, WirelessConfig};
use mcommerce::hostsite::db::Database;
use mcommerce::hostsite::HostComputer;
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::{CellularStandard, WlanStandard};

fn main() {
    let mut host = HostComputer::new(Database::new(), 11);
    let app = InventoryApp;
    app.install(&mut host);

    // The drivers are on GPRS (2.5G cellular, wide coverage); the
    // dispatcher sits on the depot's 802.11b WLAN. They share one host —
    // which is why this example builds systems from a SystemSpec instead of
    // going through a Scenario (fleet users get independent hosts).
    let mut driver = SystemSpec::new()
        .middleware(MiddlewareKind::IMode)
        .device(DeviceProfile::palm_i705())
        .wireless(WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        })
        .wired(WiredPath::wan())
        .seed(1)
        .build(host);

    println!("driver system:      {}", driver.label());

    let mut driver_reports = Vec::new();
    for session in 0..12 {
        let steps = app.session(99, session);
        driver_reports.extend(run_session(&mut driver, &steps));
    }
    let drivers = WorkloadSummary::aggregate("drivers on GPRS", &driver_reports);

    // Re-home the host into a dispatcher-side system (office WLAN).
    let host = std::mem::replace(&mut driver.host, HostComputer::new(Database::new(), 0));
    let mut dispatcher = SystemSpec::new()
        .middleware(MiddlewareKind::IMode)
        .device(DeviceProfile::ipaq_h3870())
        .wireless(WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 12.0,
        })
        .wired(WiredPath::lan())
        .seed(2)
        .build(host);
    println!("dispatcher system:  {}", dispatcher.label());

    let mut dispatcher_reports = Vec::new();
    for session in 12..18 {
        let steps = app.session(99, session);
        dispatcher_reports.extend(run_session(&mut dispatcher, &steps));
    }
    let dispatch = WorkloadSummary::aggregate("dispatcher on WLAN", &dispatcher_reports);

    // Live fleet state straight from the shared database.
    let db = dispatcher.host.web.db();
    let in_transit = db
        .select_eq("packages", "status", &"in transit".into())
        .map(|r| r.len())
        .unwrap_or(0);
    let delivered = db
        .select_eq("packages", "status", &"delivered".into())
        .map(|r| r.len())
        .unwrap_or(0);

    println!("\nfleet state: {in_transit} in transit, {delivered} delivered");
    for s in [&drivers, &dispatch] {
        println!(
            "\n{}:\n  {} steps, {:.0}% ok, mean latency {:.0} ms, p90 {:.0} ms, {:.0} B on air, {:.2} mJ",
            s.label,
            s.attempted,
            s.success_rate() * 100.0,
            s.latency_mean * 1e3,
            s.latency_p90 * 1e3,
            s.air_bytes_mean,
            s.energy_mean_j * 1e3,
        );
    }
    println!(
        "\nGPRS costs {:.1}x the latency of the depot WLAN for the same scans — \
         coverage versus bandwidth, Table 4 vs Table 5 in action.",
        drivers.latency_mean / dispatch.latency_mean
    );
}
