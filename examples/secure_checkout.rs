//! Secure checkout: §8's "mobile security and payment" end to end.
//!
//! Runs the same purchase twice — plaintext and WTLS-secured — and shows
//! what security costs on the air and in the battery; then demonstrates
//! the payment protocol's defences (tampering, replay, forged receipts)
//! at the protocol level; finally scales the secured checkout to a fleet
//! through the same [`Scenario`] description.
//!
//! ```text
//! cargo run --example secure_checkout
//! ```

use mcommerce::core::{Category, FleetRunner, RetryPolicy, Scenario, WirelessConfig};
use mcommerce::middleware::MobileRequest;
use mcommerce::security::{Mac, PaymentGateway, PaymentRequest};
use mcommerce::simnet::rng::rng_for_indexed;
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::CellularStandard;

/// User think time between browsing and buying, seconds of sim time.
const THINK_SECS: f64 = 2.0;

fn scenario(secure: bool) -> Scenario {
    Scenario::new("secure checkout")
        .app(Category::Commerce)
        .device(DeviceProfile::nokia_9290())
        .wireless(WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        })
        .secure(secure)
        .think_time(THINK_SECS)
        .retry(RetryPolicy::standard())
        .seed(72)
}

fn checkout(secure: bool) -> (f64, u64, f64) {
    let mut system = scenario(secure).system_for_user(0);
    let retry = RetryPolicy::standard();
    let mut rng = rng_for_indexed(72, "checkout.retry", secure as u64);
    // Browse, think, then buy — retries armed, although a fault-free run
    // settles every transaction on the first attempt.
    let browse = system.execute_with_retry(&MobileRequest::get("/shop"), &retry, &mut rng);
    system.idle(THINK_SECS);
    let buy = system.execute_with_retry(
        &MobileRequest::post(
            "/shop/buy",
            vec![("sku".into(), "1".into()), ("nonce".into(), "42".into())],
        ),
        &retry,
        &mut rng,
    );
    assert_eq!(browse.attempts, 1, "fault-free browse settles first try");
    assert_eq!(buy.attempts, 1, "fault-free buy settles first try");
    assert!(
        browse.success && buy.success,
        "{:?} {:?}",
        browse.failure,
        buy.failure
    );
    (
        browse.total + buy.total,
        browse.air_bytes_up + browse.air_bytes_down + buy.air_bytes_up + buy.air_bytes_down,
        browse.energy_j + buy.energy_j,
    )
}

fn main() {
    println!("== the cost of security over GPRS (browse + buy) ==\n");
    let (plain_s, plain_b, plain_j) = checkout(false);
    let (sec_s, sec_b, sec_j) = checkout(true);
    println!(
        "plaintext    : {:7.1} ms, {:5} B on air, {:6.2} mJ",
        plain_s * 1e3,
        plain_b,
        plain_j * 1e3
    );
    println!(
        "WTLS secured : {:7.1} ms, {:5} B on air, {:6.2} mJ",
        sec_s * 1e3,
        sec_b,
        sec_j * 1e3
    );
    println!(
        "overhead     : {:+6.1}% latency, {:+} B, {:+.1}% battery\n",
        (sec_s / plain_s - 1.0) * 100.0,
        sec_b as i64 - plain_b as i64,
        (sec_j / plain_j - 1.0) * 100.0
    );

    println!("== the payment protocol's defences ==\n");
    let client_mac = Mac::new(b"shared-with-station");
    let mut gateway = PaymentGateway::new(client_mac, Mac::new(b"gateway-private"));
    gateway.open_account("traveller", 10_000);

    // 1. An honest purchase settles.
    let req = PaymentRequest::signed(&client_mac, 1, 2_500, "traveller", 1001);
    gateway.authorize(&req).expect("honest request authorizes");
    let receipt = gateway.capture(1).expect("capture settles");
    println!(
        "honest purchase  : authorized, receipt auth code {}",
        receipt.auth_code
    );
    assert!(receipt.verify(gateway.receipt_mac()));

    // 2. A man-in-the-middle lowers the price — integrity catches it.
    let mut tampered = PaymentRequest::signed(&client_mac, 2, 2_500, "traveller", 1002);
    tampered.amount_cents = 1;
    println!(
        "tampered amount  : {}",
        gateway.authorize(&tampered).unwrap_err()
    );

    // 3. An eavesdropper replays the original request.
    let replay = PaymentRequest::signed(&client_mac, 3, 2_500, "traveller", 1001);
    println!(
        "replayed nonce   : {}",
        gateway.authorize(&replay).unwrap_err()
    );

    // 4. A forged receipt fails verification.
    let mut forged = receipt.clone();
    forged.amount_cents = 25;
    println!(
        "forged receipt   : verifies = {}",
        forged.verify(gateway.receipt_mac())
    );

    println!("\naudit trail:");
    for event in gateway.audit() {
        println!("  {event:?}");
    }
    println!(
        "\nbalance after everything: {} cents (10000 - 2500)",
        gateway.balance("traveller").unwrap()
    );
    assert_eq!(gateway.balance("traveller"), Some(7_500));

    // The same secured checkout, scaled through the Scenario description
    // itself: the think-time and retry knobs above drive every fleet
    // session, deterministically sharded across the machine's cores.
    println!("\n== the secured checkout at fleet scale ==\n");
    let market = FleetRunner::new(scenario(true).users(40).sessions_per_user(2))
        .run()
        .report;
    let w = &market.summary.workload;
    println!(
        "{} users on {} thread(s): {} transactions, {:.1}% ok, mean {:.0} ms, {} retries",
        market.summary.users,
        market.threads,
        market.summary.transactions(),
        w.success_rate() * 100.0,
        w.latency_mean * 1e3,
        w.counters.retries
    );
    assert!(
        w.success_rate() > 0.99,
        "fault-free secured fleet must settle cleanly"
    );
}
