//! Quickstart: describe the paper's six-component mobile commerce system
//! as a [`Scenario`], run one transaction through it, then scale the same
//! description to a whole fleet of users.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcommerce::core::{Category, CommerceSystem, FleetRunner, MiddlewareKind, Scenario};
use mcommerce::middleware::MobileRequest;
use mcommerce::station::DeviceProfile;

fn main() {
    // One declarative description covers all six components: the
    // application (i), the station (ii), the middleware (iii), the
    // wireless (iv) and wired (v) networks, and the host computer (vi)
    // is provisioned from it with the application installed.
    let scenario = Scenario::new("quickstart")
        .app(Category::Commerce)
        .device(DeviceProfile::palm_i705())
        .middleware(MiddlewareKind::Wap)
        .seed(42);

    let mut system = scenario.system_for_user(0);
    println!("scenario: {}", scenario.label());
    println!("system:   {}", system.label());

    // Browse the shop…
    let report = system.execute(&MobileRequest::get("/shop"));
    println!(
        "\nGET /shop -> success={} in {:.1} ms",
        report.success,
        report.total * 1e3
    );
    if let Some(outcome) = &report.outcome {
        println!("rendered on the handheld ({} \"{}\"):", outcome.status, outcome.title);
        for line in outcome.page_text.lines().take(8) {
            println!("  | {line}");
        }
    }

    // …and buy something.
    let report = system.execute(&MobileRequest::post(
        "/shop/buy",
        vec![("sku".into(), "3".into()), ("nonce".into(), "1001".into())],
    ));
    println!(
        "\nPOST /shop/buy -> success={} in {:.1} ms",
        report.success,
        report.total * 1e3
    );
    if let Some(outcome) = &report.outcome {
        for line in outcome.page_text.lines() {
            println!("  | {line}");
        }
    }

    // Where did the time go? The six components, itemised.
    let b = report.breakdown;
    println!("\nper-component latency breakdown:");
    println!("  station (parse/render) : {:7.2} ms", b.station_secs * 1e3);
    println!(
        "  wireless network       : {:7.2} ms",
        b.wireless_secs * 1e3
    );
    println!(
        "  middleware (WAP)       : {:7.2} ms",
        b.middleware_secs * 1e3
    );
    println!("  wired network          : {:7.2} ms", b.wired_secs * 1e3);
    println!("  host computer          : {:7.2} ms", b.host_secs * 1e3);
    println!(
        "\nover the air: {} B up, {} B down; battery used: {:.3} mJ; battery left: {:.1}%",
        report.air_bytes_up,
        report.air_bytes_down,
        report.energy_j * 1e3,
        system.station.battery.level() * 100.0
    );

    // The same description, scaled to a market: 200 independent users,
    // sharded across the machine's cores, merged deterministically.
    // (Only virtual-clock metrics are printed here so the output stays
    // byte-identical run to run; wall-clock txns/s lives in the F3
    // experiment, which measures host throughput on purpose.)
    let market = FleetRunner::new(scenario.users(200).sessions_per_user(2))
        .run()
        .report;
    let w = &market.summary.workload;
    println!(
        "\nfleet of {} users on {} thread(s): {} transactions, {:.0}% ok,\n\
         mean latency {:.0} ms, {} B over the air",
        market.summary.users,
        market.threads,
        market.summary.transactions(),
        w.success_rate() * 100.0,
        w.latency_mean * 1e3,
        w.counters.air_bytes
    );
}
