//! Quickstart: assemble the paper's six-component mobile commerce system
//! and run one transaction through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcommerce::core::apps::{Application, PaymentsApp};
use mcommerce::core::{CommerceSystem, McSystem, WiredPath, WirelessConfig};
use mcommerce::hostsite::db::Database;
use mcommerce::hostsite::HostComputer;
use mcommerce::middleware::{MobileRequest, WapGateway};
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::WlanStandard;

fn main() {
    // Component (vi): the host computer — web server + database server +
    // application programs.
    let mut host = HostComputer::new(Database::new(), 7);

    // Component (i): a mobile commerce application (Table 1's first row —
    // mobile transactions and payments).
    let app = PaymentsApp::new();
    app.install(&mut host);

    // Components (ii)–(v): a Palm i705 station, the WAP gateway
    // middleware, an 802.11b wireless LAN at 20 m, and a wired WAN.
    let mut system = McSystem::new(
        host,
        Box::new(WapGateway::default()),
        DeviceProfile::palm_i705(),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 20.0,
        },
        WiredPath::wan(),
        42,
    );

    println!("system: {}", system.label());

    // Browse the shop…
    let report = system.execute(&MobileRequest::get("/shop"));
    println!(
        "\nGET /shop -> success={} in {:.1} ms",
        report.success,
        report.total * 1e3
    );
    println!("rendered on the handheld:");
    for line in system.last_page_text().unwrap_or_default().lines().take(8) {
        println!("  | {line}");
    }

    // …and buy something.
    let report = system.execute(&MobileRequest::post(
        "/shop/buy",
        vec![("sku".into(), "3".into()), ("nonce".into(), "1001".into())],
    ));
    println!(
        "\nPOST /shop/buy -> success={} in {:.1} ms",
        report.success,
        report.total * 1e3
    );
    for line in system.last_page_text().unwrap_or_default().lines() {
        println!("  | {line}");
    }

    // Where did the time go? The six components, itemised.
    let b = report.breakdown;
    println!("\nper-component latency breakdown:");
    println!("  station (parse/render) : {:7.2} ms", b.station_secs * 1e3);
    println!(
        "  wireless network       : {:7.2} ms",
        b.wireless_secs * 1e3
    );
    println!(
        "  middleware (WAP)       : {:7.2} ms",
        b.middleware_secs * 1e3
    );
    println!("  wired network          : {:7.2} ms", b.wired_secs * 1e3);
    println!("  host computer          : {:7.2} ms", b.host_secs * 1e3);
    println!(
        "\nover the air: {} B up, {} B down; battery used: {:.3} mJ; battery left: {:.1}%",
        report.air_bytes_up,
        report.air_bytes_down,
        report.energy_j * 1e3,
        system.station.battery.level() * 100.0
    );
}
