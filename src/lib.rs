//! # mcommerce — an executable system model for mobile commerce
//!
//! Facade crate re-exporting every subsystem of the reproduction of
//! *"A System Model for Mobile Commerce"* (Lee, Hu & Yeh, ICDCSW'03).
//!
//! The paper decomposes a mobile commerce (MC) system into six components;
//! each maps onto a crate in this workspace:
//!
//! | Paper component | Crate |
//! |---|---|
//! | (i) mobile commerce applications | [`core`] (`mcommerce_core::apps`) |
//! | (ii) mobile stations | [`station`] |
//! | (iii) mobile middleware | [`middleware`] (+ [`markup`]) |
//! | (iv) wireless networks | [`wireless`] (+ [`netstack`], [`transport`]) |
//! | (v) wired networks | [`simnet`] link models |
//! | (vi) host computers | [`hostsite`] |
//!
//! plus [`security`] for the payment/security concern the paper flags in its
//! summary, [`simnet`] as the deterministic discrete-event substrate, and
//! [`obs`] as the dependency-free observability layer (metrics, sim-time
//! span tracing, flight recorder, trace exporters) every crate above
//! publishes into.
//!
//! See `DESIGN.md` for the complete system inventory and `EXPERIMENTS.md`
//! for the per-table/figure reproduction index.

pub use faults;
pub use hostsite;
pub use markup;
pub use obs;
pub use mcommerce_core as core;
pub use middleware;
pub use netstack;
pub use security;
pub use simnet;
pub use station;
pub use transport;
pub use wireless;
