#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every PR.
#
#   build (release)  — the crates compile with optimisations, as the
#                      report binary and benches are actually run;
#   test (root pkg)  — the `mcommerce` facade's unit + integration
#                      tests, including the fleet determinism
#                      properties in tests/fleet_props.rs;
#   clippy (-D warnings, whole workspace) — lints are errors;
#   bench (compile)  — the Criterion benches build;
#   report smoke     — the F4 engine experiment runs end to end and
#                      emits well-formed BENCH_engine.json.
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --no-run
cargo run --release -p bench --bin report -- --quick --f4
python3 -m json.tool BENCH_engine.json > /dev/null
echo "tier1: OK"
