#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every PR.
#
#   build (release)  — the crates compile with optimisations, as the
#                      report binary and benches are actually run;
#   test (root pkg)  — the `mcommerce` facade's unit + integration
#                      tests, including the fleet determinism
#                      properties in tests/fleet_props.rs, the trace
#                      determinism properties in tests/trace_props.rs,
#                      and the fault-injection properties in
#                      tests/fault_props.rs;
#   clippy (-D warnings, whole workspace) — lints are errors;
#   bench (compile)  — the Criterion benches build;
#   report smoke     — the F4 engine experiment runs end to end and
#                      emits well-formed BENCH_engine.json;
#   obs smoke        — the F5 observability experiment runs with
#                      --trace, emits well-formed BENCH_obs.json and
#                      Chrome-trace JSON, the disabled-recorder
#                      overhead stays within the 3% budget, and the
#                      traced-fleet overhead stays within 25%;
#   faults smoke     — the F6 fault-injection experiment runs end to
#                      end, emits well-formed BENCH_faults.json, the
#                      retry policy strictly beats the bare fleet at
#                      every non-zero storm intensity, a zero-fault
#                      plan is byte-identical to no plan, and the TCP
#                      sender aborts against a dead peer;
#   cache smoke      — the F7 caching experiment runs end to end,
#                      emits well-formed BENCH_cache.json, warm p50
#                      and p99 beat cold whenever the TTL outlives
#                      the revisit interval, the zero-TTL fleet is
#                      byte-identical to a cache-free fleet, and
#                      every cache layer's hit counters light up;
#   contention smoke — the F8 shared-world experiment runs end to end,
#                      emits well-formed BENCH_contention.json, p99
#                      latency is non-decreasing in population (the
#                      knee), the shared gateway cache's hit rate
#                      grows with population, the 1-user shared world
#                      is byte-identical to the legacy per-user world,
#                      and every sweep point is byte-identical at
#                      1/2/4 threads;
#   telemetry smoke  — the F10 fleet-telemetry experiment runs end to
#                      end, emits well-formed BENCH_telemetry.json,
#                      the disabled-telemetry branch costs <= 3% in the
#                      micro cell, the series exports are byte-
#                      identical at 1/2/4/8 threads, telemetry on/off
#                      leaves summary and trace bit-identical, and
#                      every shared resource registered its series;
#                      the F8 step runs with --dash, so the resource
#                      dashboard renders, the knee is attributed to a
#                      named resource, and the Perfetto counter-track
#                      trace parses;
#   benchdiff        — fresh quick artefacts diff clean against the
#                      committed baselines in bench/baselines/ (wall-
#                      clock metrics are informational; deterministic
#                      metrics gate at 1%), and an injected regression
#                      makes the diff fail;
#   scale smoke      — the F9 fleet-scale experiment runs its quick
#                      grid ({10k, 100k} users × {1, 4, 8} threads,
#                      each cell in its own subprocess), emits
#                      well-formed BENCH_scale.json with the full
#                      schema, the merged-counter digest is identical
#                      across thread counts at every population, and
#                      peak RSS at 100k users stays under 128 MB (the
#                      engine streams; memory must not scale with the
#                      population);
#   db smoke         — the F11 durable-storage experiment runs end to
#                      end, emits well-formed BENCH_db.json, the
#                      explicit zero-cost durability policy is byte-
#                      identical to a policy-free fleet at 1/2/4/8
#                      threads, free fsyncs charge zero WAL time,
#                      recovery outage is monotone in journal length,
#                      and the group-commit fsync arithmetic holds;
#   search smoke     — the F12 full-text-search experiment runs end to
#                      end, emits well-formed BENCH_search.json, warm
#                      search p50 is strictly below cold at a covering
#                      TTL, indexed search byte-equals the brute-force
#                      scan, the search-heavy fleet is byte-identical
#                      at 1/2/4/8 threads, cold search cost is monotone
#                      in catalog size, memo hits fall as the write
#                      rate rises, and 10k distinct queries leave the
#                      page-cache interner empty (flat memory);
#   examples smoke   — the Scenario-driven examples run clean (their
#                      internal asserts are the gate).
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf
cargo bench --no-run
cargo run --release -p bench --bin report -- --quick --f4
python3 -m json.tool BENCH_engine.json > /dev/null
cargo run --release -p bench --bin report -- --quick --f5 --trace
python3 -m json.tool BENCH_obs.json > /dev/null
python3 -m json.tool TRACE_fleet.trace.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_obs.json"))
# Gates check the *floor* (minimum per-repetition ratio): scheduler
# noise on a shared box only inflates ratios, while a real regression
# lifts every pairing, floor included.
pct = doc["storm"]["overhead_disabled_floor_pct"]
assert pct <= 3.0, f"disabled-recorder overhead floor {pct:.2f}% exceeds the 3% budget"
assert doc["fleet"]["trace_events"] > 0, "traced fleet produced no events"
fleet_pct = doc["fleet"]["overhead_floor_pct"]
assert fleet_pct <= 25.0, (
    f"traced-fleet overhead floor {fleet_pct:.2f}% exceeds the 25% budget"
)
print(f"obs gate: disabled overhead floor {pct:+.2f}% (budget 3%); "
      f"traced fleet floor {fleet_pct:+.2f}% "
      f"(median {doc['fleet']['overhead_pct']:+.2f}%, budget 25%)")
PY
cargo run --release -p bench --bin report -- --quick --f6
python3 -m json.tool BENCH_faults.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_faults.json"))
for row in doc["sweep"]:
    if row["intensity"] > 0:
        assert row["retry_availability"] > row["bare_availability"], (
            f"intensity {row['intensity']}: retry {row['retry_availability']} "
            f"does not beat bare {row['bare_availability']}"
        )
assert doc["zero_fault_identical"], "zero-fault fleet diverged from plan-free fleet"
assert doc["dead_peer"]["aborted"], "TCP sender failed to abort against a dead peer"
assert doc["trace"]["fault_events"] > 0, "no fault events reached the flight recorder"
worst = min(r["retry_availability"] - r["bare_availability"]
            for r in doc["sweep"] if r["intensity"] > 0)
print(f"faults gate: retry dominates bare (min margin {worst:+.4f}); "
      f"dead peer aborted at {doc['dead_peer']['abort_secs']:.0f}s")
PY
cargo run --release -p bench --bin report -- --quick --f7
python3 -m json.tool BENCH_cache.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_cache.json"))
for row in doc["sweep"]:
    if row["ttl_s"] >= 30 and row["think_s"] <= 1:
        assert row["p50_ms"] < row["cold_p50_ms"], f"warm p50 not below cold: {row}"
        assert row["p99_ms"] < row["cold_p99_ms"], f"warm p99 not below cold: {row}"
        assert row["gateway_hits"] > 0, f"no gateway hits: {row}"
assert doc["zero_ttl_identical"], "zero-TTL fleet diverged from cache-free fleet"
assert doc["counters"]["page_hits"] > 0, "page cache never hit"
assert doc["counters"]["db_hits"] > 0, "query cache never hit"
gated = [r for r in doc["sweep"] if r["ttl_s"] >= 30 and r["think_s"] <= 1]
best = min(r["p50_ms"] / r["cold_p50_ms"] for r in gated)
print(f"cache gate: warm p50 down to {best:.2f}x of cold; zero-TTL identity holds")
PY
cargo run --release -p bench --bin report -- --quick --f8 --dash
python3 -m json.tool BENCH_contention.json > /dev/null
python3 -m json.tool TRACE_fleet.counters.trace.json > /dev/null
test -s TELEMETRY_fleet.jsonl
python3 - <<'PY'
import json
doc = json.load(open("BENCH_contention.json"))
knee = doc["knee"]
for prev, cur in zip(knee, knee[1:]):
    assert cur["p99_ms"] >= prev["p99_ms"], (
        f"p99 fell as population grew: {prev['users']} users {prev['p99_ms']} ms "
        f"-> {cur['users']} users {cur['p99_ms']} ms"
    )
assert knee[-1]["contended_share"] > 0, "largest population never contended"
growth = doc["cache_growth"]
assert growth[-1]["hit_rate"] > growth[0]["hit_rate"], (
    f"shared cache hit rate did not grow with population: "
    f"{growth[0]['hit_rate']} -> {growth[-1]['hit_rate']}"
)
assert doc["one_user_identical"], "1-user shared world diverged from the legacy world"
assert doc["thread_identity"], "shared world diverged across thread counts"
print(f"contention gate: p99 {knee[0]['p99_ms']:.0f} -> {knee[-1]['p99_ms']:.0f} ms "
      f"across the knee; shared hit rate {growth[0]['hit_rate']:.2f} -> "
      f"{growth[-1]['hit_rate']:.2f}; both identities hold")
PY
python3 - <<'PY'
import json
events = json.load(open("TRACE_fleet.counters.trace.json"))["traceEvents"]
counters = [e for e in events if e.get("ph") == "C"]
names = {e["name"] for e in counters}
assert any("gateway" in n and "cpu_util" in n for n in names), (
    f"no gateway-utilization counter track in the Perfetto trace: {sorted(names)}"
)
assert any("cache_hit_rate" in n for n in names), (
    f"no shared-cache hit-rate counter track in the Perfetto trace: {sorted(names)}"
)
lines = [l for l in open("TELEMETRY_fleet.jsonl") if l.strip()]
series = set()
for l in lines:
    row = json.loads(l)
    for key in ("series", "kind", "t_ns", "bin_ns", "sum", "weight", "max", "milli"):
        assert key in row, f"telemetry jsonl row missing {key}: {row}"
    series.add(row["series"])
print(f"dash gate: {len(names)} counter tracks, {len(counters)} counter events, "
      f"{len(lines)} telemetry rows across {len(series)} series")
PY
cargo run --release -p bench --bin report -- --quick --f10
python3 -m json.tool BENCH_telemetry.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_telemetry.json"))
pct = doc["micro"]["disabled"]["overhead_disabled_floor_pct"]
assert pct <= 3.0, f"disabled-telemetry overhead floor {pct:.2f}% exceeds the 3% budget"
assert doc["thread_identity"], "telemetry exports diverged across thread counts"
assert doc["run_identity"], "telemetry changed the simulation outcome"
assert doc["export_stable"], "telemetry exports diverged between identical runs"
peaks = doc["peaks"]
assert len(peaks) >= 5, f"expected >=5 registered series, got {len(peaks)}"
names = [p["series"] for p in peaks]
assert names == sorted(names), f"series not in canonical order: {names}"
for want in ("cell0000.airtime_util", "gateway0000.cpu_util",
             "gateway0000.cache_hit_rate", "host0000.cpu_util",
             "host0000.queue_depth"):
    assert want in names, f"missing series {want}: {names}"
print(f"telemetry gate: disabled overhead {pct:+.2f}% (budget 3%); "
      f"{len(peaks)} series; all identities hold")
PY
cargo run --release -p bench --bin report -- --quick --f9
python3 -m json.tool BENCH_scale.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_scale.json"))
assert doc["experiment"] == "F9_scale"
assert doc["identical_across_threads"] is True
pops, threads, cells = doc["populations"], doc["threads"], doc["cells"]
assert len(cells) == len(pops) * len(threads), "F9 grid incomplete"
for key in ("users", "threads", "wall_secs", "transactions", "tps",
            "events", "events_per_sec", "peak_rss_bytes", "digest"):
    assert all(key in c for c in cells), f"F9 cell missing {key}"
for pop in pops:
    digests = {c["digest"] for c in cells if c["users"] == pop}
    assert len(digests) == 1, (
        f"{pop} users: merged-counter digest diverges across threads: {digests}"
    )
for c in cells:
    if c["users"] == 100_000 and c["peak_rss_bytes"] > 0:
        assert c["peak_rss_bytes"] < 128 * 1024 * 1024, (
            f"peak RSS {c['peak_rss_bytes']} exceeds the 128 MB budget at 100k users"
        )
best = max(c["events_per_sec"] for c in cells)
print(f"scale gate: {len(cells)}-cell grid complete; digests identical at every "
      f"population; 100k-user RSS under 128 MB; best {best:,.0f} events/s")
PY
cargo run --release -p bench --bin report -- --quick --f11
python3 -m json.tool BENCH_db.json > /dev/null
python3 - <<'PY'
import json, math
doc = json.load(open("BENCH_db.json"))
assert doc["experiment"] == "F11_db"
assert doc["zero_cost_identical"], "zero-cost durability policy diverged from policy-free fleet"
for row in doc["sweep"]:
    if row["fsync_us"] == 0:
        assert row["commit_ms"] == 0, f"free fsync charged WAL time: {row}"
by_policy = {}
for row in doc["recovery"]:
    by_policy.setdefault((row["commit_batch"], row["fsync_us"]), []).append(row)
for rows in by_policy.values():
    rows.sort(key=lambda r: r["replayed"])
    for prev, cur in zip(rows, rows[1:]):
        assert cur["outage_ms"] > prev["outage_ms"], (
            f"recovery outage not monotone in journal length: {prev} -> {cur}"
        )
for name, fsyncs in doc["fsyncs_per_100_commits"].items():
    batch = int(name.split("_")[1])
    assert fsyncs == math.ceil(100 / batch), f"batch {batch}: {fsyncs} fsyncs"
assert doc["index_entries_rebuilt"] > 0, "recovery rebuilt no index entries"
paid = sorted((r for r in doc["sweep"] if r["fsync_us"] == 1000),
              key=lambda r: r["commit_batch"])
print(f"db gate: zero-cost identity holds; 1 ms fsync WAL time "
      f"{paid[0]['commit_ms']:.0f} -> {paid[-1]['commit_ms']:.0f} ms from batch "
      f"{paid[0]['commit_batch']} to {paid[-1]['commit_batch']}; "
      f"recovery monotone over {len(by_policy)} policies")
PY
cargo run --release -p bench --bin report -- --quick --f12
python3 -m json.tool BENCH_search.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_search.json"))
assert doc["experiment"] == "F12_search"
legs = {l["leg"]: l for l in doc["latency"]}
assert legs["warm"]["p50_ms"] < legs["cold"]["p50_ms"], (
    f"warm search p50 not below cold: {legs['warm']} vs {legs['cold']}"
)
assert legs["warm"]["search_ms"] < legs["cold"]["search_ms"], (
    "memoized searches must cost less simulated CPU"
)
assert legs["cold"]["memo_hits"] == 0 and legs["warm"]["memo_hits"] > 0
assert doc["search_equals_scan"], "indexed search diverged from brute-force scan"
assert doc["thread_identical"], "search fleet diverged across thread counts"
assert doc["interner_flat"], "distinct queries grew the page-cache interner"
sizes = doc["index_size"]
for prev, cur in zip(sizes, sizes[1:]):
    assert cur["cold_search_ns"] > prev["cold_search_ns"], (
        f"search cost not monotone in catalog size: {prev} -> {cur}"
    )
rates = doc["write_rate"]
for row in rates:
    assert row["memo_hits"] + row["memo_misses"] == 100, f"short leg: {row}"
for prev, cur in zip(rates, rates[1:]):
    assert cur["memo_hits"] < prev["memo_hits"], (
        f"memo hits not falling with write rate: {prev} -> {cur}"
    )
print(f"search gate: warm p50 {legs['warm']['p50_ms']:.1f} ms < cold "
      f"{legs['cold']['p50_ms']:.1f} ms; index == scan; identical at 1/2/4/8 "
      f"threads; interner flat under 10k distinct queries")
PY
cargo run --release -p bench --bin benchdiff -- bench/baselines .
python3 - <<'PY'
import json
doc = json.load(open("bench/baselines/BENCH_contention.json"))
doc["knee"][-1]["p99_ms"] *= 2
json.dump(doc, open("BENCH_regressed.baseline.json", "w"))
PY
if cargo run --release -p bench --bin benchdiff -- \
    BENCH_regressed.baseline.json BENCH_contention.json > /dev/null 2>&1; then
  echo "benchdiff gate: FAILED to flag an injected 2x p99 regression" >&2
  rm -f BENCH_regressed.baseline.json
  exit 1
fi
rm -f BENCH_regressed.baseline.json
echo "benchdiff gate: baselines match and the injected regression was flagged"
cargo run -q --release --example quickstart > /dev/null
cargo run -q --release --example secure_checkout > /dev/null
cargo run -q --release --example roaming_payment > /dev/null
echo "tier1: OK"
