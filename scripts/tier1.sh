#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every PR.
#
#   build (release)  — the crates compile with optimisations, as the
#                      report binary and benches are actually run;
#   test (root pkg)  — the `mcommerce` facade's unit + integration
#                      tests, including the fleet determinism
#                      properties in tests/fleet_props.rs and the trace
#                      determinism properties in tests/trace_props.rs;
#   clippy (-D warnings, whole workspace) — lints are errors;
#   bench (compile)  — the Criterion benches build;
#   report smoke     — the F4 engine experiment runs end to end and
#                      emits well-formed BENCH_engine.json;
#   obs smoke        — the F5 observability experiment runs with
#                      --trace, emits well-formed BENCH_obs.json and
#                      Chrome-trace JSON, and the disabled-recorder
#                      overhead stays within the 3% budget.
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --no-run
cargo run --release -p bench --bin report -- --quick --f4
python3 -m json.tool BENCH_engine.json > /dev/null
cargo run --release -p bench --bin report -- --quick --f5 --trace
python3 -m json.tool BENCH_obs.json > /dev/null
python3 -m json.tool TRACE_fleet.trace.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_obs.json"))
pct = doc["storm"]["overhead_disabled_pct"]
assert pct <= 3.0, f"disabled-recorder overhead {pct:.2f}% exceeds the 3% budget"
assert doc["fleet"]["trace_events"] > 0, "traced fleet produced no events"
print(f"obs gate: disabled overhead {pct:+.2f}% (budget 3%)")
PY
echo "tier1: OK"
