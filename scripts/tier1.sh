#!/usr/bin/env bash
# Tier-1 gate: what must stay green on every PR.
#
#   build (release)  — the crates compile with optimisations, as the
#                      report binary and benches are actually run;
#   test (root pkg)  — the `mcommerce` facade's unit + integration
#                      tests, including the fleet determinism
#                      properties in tests/fleet_props.rs, the trace
#                      determinism properties in tests/trace_props.rs,
#                      and the fault-injection properties in
#                      tests/fault_props.rs;
#   clippy (-D warnings, whole workspace) — lints are errors;
#   bench (compile)  — the Criterion benches build;
#   report smoke     — the F4 engine experiment runs end to end and
#                      emits well-formed BENCH_engine.json;
#   obs smoke        — the F5 observability experiment runs with
#                      --trace, emits well-formed BENCH_obs.json and
#                      Chrome-trace JSON, and the disabled-recorder
#                      overhead stays within the 3% budget;
#   faults smoke     — the F6 fault-injection experiment runs end to
#                      end, emits well-formed BENCH_faults.json, the
#                      retry policy strictly beats the bare fleet at
#                      every non-zero storm intensity, a zero-fault
#                      plan is byte-identical to no plan, and the TCP
#                      sender aborts against a dead peer;
#   cache smoke      — the F7 caching experiment runs end to end,
#                      emits well-formed BENCH_cache.json, warm p50
#                      and p99 beat cold whenever the TTL outlives
#                      the revisit interval, the zero-TTL fleet is
#                      byte-identical to a cache-free fleet, and
#                      every cache layer's hit counters light up;
#   contention smoke — the F8 shared-world experiment runs end to end,
#                      emits well-formed BENCH_contention.json, p99
#                      latency is non-decreasing in population (the
#                      knee), the shared gateway cache's hit rate
#                      grows with population, the 1-user shared world
#                      is byte-identical to the legacy per-user world,
#                      and every sweep point is byte-identical at
#                      1/2/4 threads;
#   scale smoke      — the F9 fleet-scale experiment runs its quick
#                      grid ({10k, 100k} users × {1, 4, 8} threads,
#                      each cell in its own subprocess), emits
#                      well-formed BENCH_scale.json with the full
#                      schema, the merged-counter digest is identical
#                      across thread counts at every population, and
#                      peak RSS at 100k users stays under 128 MB (the
#                      engine streams; memory must not scale with the
#                      population);
#   examples smoke   — the Scenario-driven examples run clean (their
#                      internal asserts are the gate).
#
# Run from anywhere; the script cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf
cargo bench --no-run
cargo run --release -p bench --bin report -- --quick --f4
python3 -m json.tool BENCH_engine.json > /dev/null
cargo run --release -p bench --bin report -- --quick --f5 --trace
python3 -m json.tool BENCH_obs.json > /dev/null
python3 -m json.tool TRACE_fleet.trace.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_obs.json"))
pct = doc["storm"]["overhead_disabled_pct"]
assert pct <= 3.0, f"disabled-recorder overhead {pct:.2f}% exceeds the 3% budget"
assert doc["fleet"]["trace_events"] > 0, "traced fleet produced no events"
print(f"obs gate: disabled overhead {pct:+.2f}% (budget 3%)")
PY
cargo run --release -p bench --bin report -- --quick --f6
python3 -m json.tool BENCH_faults.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_faults.json"))
for row in doc["sweep"]:
    if row["intensity"] > 0:
        assert row["retry_availability"] > row["bare_availability"], (
            f"intensity {row['intensity']}: retry {row['retry_availability']} "
            f"does not beat bare {row['bare_availability']}"
        )
assert doc["zero_fault_identical"], "zero-fault fleet diverged from plan-free fleet"
assert doc["dead_peer"]["aborted"], "TCP sender failed to abort against a dead peer"
assert doc["trace"]["fault_events"] > 0, "no fault events reached the flight recorder"
worst = min(r["retry_availability"] - r["bare_availability"]
            for r in doc["sweep"] if r["intensity"] > 0)
print(f"faults gate: retry dominates bare (min margin {worst:+.4f}); "
      f"dead peer aborted at {doc['dead_peer']['abort_secs']:.0f}s")
PY
cargo run --release -p bench --bin report -- --quick --f7
python3 -m json.tool BENCH_cache.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_cache.json"))
for row in doc["sweep"]:
    if row["ttl_s"] >= 30 and row["think_s"] <= 1:
        assert row["p50_ms"] < row["cold_p50_ms"], f"warm p50 not below cold: {row}"
        assert row["p99_ms"] < row["cold_p99_ms"], f"warm p99 not below cold: {row}"
        assert row["gateway_hits"] > 0, f"no gateway hits: {row}"
assert doc["zero_ttl_identical"], "zero-TTL fleet diverged from cache-free fleet"
assert doc["counters"]["page_hits"] > 0, "page cache never hit"
assert doc["counters"]["db_hits"] > 0, "query cache never hit"
gated = [r for r in doc["sweep"] if r["ttl_s"] >= 30 and r["think_s"] <= 1]
best = min(r["p50_ms"] / r["cold_p50_ms"] for r in gated)
print(f"cache gate: warm p50 down to {best:.2f}x of cold; zero-TTL identity holds")
PY
cargo run --release -p bench --bin report -- --quick --f8
python3 -m json.tool BENCH_contention.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_contention.json"))
knee = doc["knee"]
for prev, cur in zip(knee, knee[1:]):
    assert cur["p99_ms"] >= prev["p99_ms"], (
        f"p99 fell as population grew: {prev['users']} users {prev['p99_ms']} ms "
        f"-> {cur['users']} users {cur['p99_ms']} ms"
    )
assert knee[-1]["contended_share"] > 0, "largest population never contended"
growth = doc["cache_growth"]
assert growth[-1]["hit_rate"] > growth[0]["hit_rate"], (
    f"shared cache hit rate did not grow with population: "
    f"{growth[0]['hit_rate']} -> {growth[-1]['hit_rate']}"
)
assert doc["one_user_identical"], "1-user shared world diverged from the legacy world"
assert doc["thread_identity"], "shared world diverged across thread counts"
print(f"contention gate: p99 {knee[0]['p99_ms']:.0f} -> {knee[-1]['p99_ms']:.0f} ms "
      f"across the knee; shared hit rate {growth[0]['hit_rate']:.2f} -> "
      f"{growth[-1]['hit_rate']:.2f}; both identities hold")
PY
cargo run --release -p bench --bin report -- --quick --f9
python3 -m json.tool BENCH_scale.json > /dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_scale.json"))
assert doc["experiment"] == "F9_scale"
assert doc["identical_across_threads"] is True
pops, threads, cells = doc["populations"], doc["threads"], doc["cells"]
assert len(cells) == len(pops) * len(threads), "F9 grid incomplete"
for key in ("users", "threads", "wall_secs", "transactions", "tps",
            "events", "events_per_sec", "peak_rss_bytes", "digest"):
    assert all(key in c for c in cells), f"F9 cell missing {key}"
for pop in pops:
    digests = {c["digest"] for c in cells if c["users"] == pop}
    assert len(digests) == 1, (
        f"{pop} users: merged-counter digest diverges across threads: {digests}"
    )
for c in cells:
    if c["users"] == 100_000 and c["peak_rss_bytes"] > 0:
        assert c["peak_rss_bytes"] < 128 * 1024 * 1024, (
            f"peak RSS {c['peak_rss_bytes']} exceeds the 128 MB budget at 100k users"
        )
best = max(c["events_per_sec"] for c in cells)
print(f"scale gate: {len(cells)}-cell grid complete; digests identical at every "
      f"population; 100k-user RSS under 128 MB; best {best:,.0f} events/s")
PY
cargo run -q --release --example quickstart > /dev/null
cargo run -q --release --example secure_checkout > /dev/null
cargo run -q --release --example roaming_payment > /dev/null
echo "tier1: OK"
