#![warn(missing_docs)]
//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `criterion` its benches use: `Criterion`,
//! `bench_function`, `benchmark_group` with `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! best-of-N wall-clock measurement via `std::time::Instant` — enough
//! to print comparable numbers, with none of the statistical machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Passed to the closure given to `bench_function`; drives iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            best: Duration::MAX,
            iters_per_sample: 1,
        }
    }

    /// Runs `routine` repeatedly and records the best per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so each sample lasts at least ~1ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }

    fn per_iter(&self) -> Duration {
        self.best / self.iters_per_sample.max(1) as u32
    }
}

fn print_result(name: &str, bencher: &Bencher) {
    println!("bench: {name:<50} {:>12.3?}/iter", bencher.per_iter());
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Benchmarks `routine` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        print_result(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `name` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        print_result(&format!("{}/{}", self.name, name.as_ref()), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        // Owned name on purpose: pins the `impl Into<String>` signature.
        #[allow(clippy::unnecessary_to_owned)]
        group.bench_function("string_name".to_string(), |b| b.iter(|| 2u64 * 2));
        group.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn group_runner_runs() {
        smoke();
    }
}
