#![warn(missing_docs)]
//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! sampling methods (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic across platforms. Statistical
//! quality matters here only insofar as simulations need uncorrelated
//! streams; cryptographic strength is explicitly a non-goal.

/// Pseudo-random number generators.
pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Same name and role as `rand::rngs::StdRng`: a seedable,
    /// reproducible PRNG. Streams are stable across platforms and
    /// releases of this vendored crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // xoshiro state must not be all-zero; SplitMix64 guarantees a
        // well-mixed non-degenerate state for every seed.
        rngs::StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types that can be produced uniformly from a generator.
pub trait FromRandom {
    /// Draws one uniformly distributed value.
    fn from_rng(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_rng(rng: &mut rngs::StdRng) -> Self {
        ((rng.next_u64_impl() as u128) << 64) | rng.next_u64_impl() as u128
    }
}

impl FromRandom for bool {
    fn from_rng(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64_impl() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng(rng: &mut rngs::StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64_impl() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a generator can sample uniformly.
///
/// Generic over the element type (like real `rand`'s `SampleRange<T>`)
/// so an unsuffixed literal range such as `0..4` lets inference pick the
/// element type from the use site, e.g. indexing with the result.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from_rng(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from_rng(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// Sampling methods on a generator — the subset of `rand::Rng` this
/// workspace uses, under the `RngExt` name it imports.
pub trait RngExt {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn random<T: FromRandom>(&mut self) -> T;

    /// A uniform draw from `range` (half-open or inclusive; integer or
    /// float element types).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let u = rng.random_range(0..5usize);
            assert!(u < 5);
            let f = rng.random_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let inc = rng.random_range(0u8..=32);
            assert!(inc <= 32);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_vary() {
        let mut rng = StdRng::seed_from_u64(4);
        let draws: Vec<f64> = (0..100).map(|_| rng.random()).collect();
        assert!(draws.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean {mean} looks degenerate");
    }

    #[test]
    fn random_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..1000).filter(|_| rng.random_bool(0.25)).count();
        assert!((150..350).contains(&heads), "heads {heads}");
    }
}
