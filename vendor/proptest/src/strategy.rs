//! Strategies: composable generators of test-case values.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;
use rand::RngExt;

/// A generator of values for one test-case binding.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the case RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.0.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing uniformly distributed values of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::FromRandom + fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.random()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        assert!(size.lo < size.hi, "empty size range for vec strategy");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.0.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Regex-literal strategies
// ---------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = Pattern::parse(self);
        let mut out = String::new();
        pattern.generate(rng, &mut out);
        out
    }
}

/// Parsed form of the regex subset: a sequence of repeated atoms.
#[derive(Debug, Clone)]
struct Pattern {
    atoms: Vec<Repeated>,
}

#[derive(Debug, Clone)]
struct Repeated {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// Alternatives, each a full sub-pattern.
    Group(Vec<Pattern>),
}

/// Repetition cap for the unbounded `*` and `+` quantifiers.
const UNBOUNDED_MAX: usize = 8;

impl Pattern {
    fn parse(text: &str) -> Pattern {
        let mut chars = text.chars().peekable();
        let pattern = Self::parse_alternatives(&mut chars, text);
        assert!(
            chars.next().is_none(),
            "unbalanced ')' in regex strategy {text:?}"
        );
        match pattern.len() {
            1 => pattern.into_iter().next().unwrap(),
            _ => Pattern {
                atoms: vec![Repeated {
                    atom: Atom::Group(pattern),
                    min: 1,
                    max: 1,
                }],
            },
        }
    }

    /// Parses `a|b|c` up to an unconsumed `)` or end of input.
    fn parse_alternatives(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        full: &str,
    ) -> Vec<Pattern> {
        let mut alternatives = vec![Pattern { atoms: Vec::new() }];
        while let Some(&c) = chars.peek() {
            match c {
                ')' => break,
                '|' => {
                    chars.next();
                    alternatives.push(Pattern { atoms: Vec::new() });
                }
                _ => {
                    let atom = Self::parse_atom(chars, full);
                    let (min, max) = Self::parse_quantifier(chars, full);
                    alternatives
                        .last_mut()
                        .unwrap()
                        .atoms
                        .push(Repeated { atom, min, max });
                }
            }
        }
        alternatives
    }

    fn parse_atom(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, full: &str) -> Atom {
        match chars.next().expect("atom") {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {full:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let esc = chars.next().expect("escape");
                            ranges.push((esc, esc));
                        }
                        _ => {
                            // A range `a-z` unless the '-' is trailing.
                            if chars.peek() == Some(&'-') {
                                let mut ahead = chars.clone();
                                ahead.next();
                                match ahead.peek() {
                                    Some(&']') | None => ranges.push((c, c)),
                                    Some(&hi) => {
                                        chars.next();
                                        chars.next();
                                        assert!(c <= hi, "bad range {c}-{hi} in {full:?}");
                                        ranges.push((c, hi));
                                    }
                                }
                            } else {
                                ranges.push((c, c));
                            }
                        }
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {full:?}");
                Atom::Class(ranges)
            }
            '(' => {
                let alternatives = Self::parse_alternatives(chars, full);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unterminated group in {full:?}"
                );
                Atom::Group(alternatives)
            }
            '\\' => {
                let esc = chars.next().expect("escape");
                match esc {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Atom::Literal(' '),
                    _ => Atom::Literal(esc),
                }
            }
            '.' => Atom::Class(vec![(' ', '~')]),
            c => Atom::Literal(c),
        }
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        full: &str,
    ) -> (usize, usize) {
        match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_MAX)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => panic!("unterminated quantifier in {full:?}"),
                    }
                }
                match spec.split_once(',') {
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("quantifier lower bound");
                        let hi = if hi.trim().is_empty() {
                            lo + UNBOUNDED_MAX
                        } else {
                            hi.trim().parse().expect("quantifier upper bound")
                        };
                        (lo, hi)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        for repeated in &self.atoms {
            let count = rng.0.random_range(repeated.min..=repeated.max);
            for _ in 0..count {
                match &repeated.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.0.random_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.0.random_range(lo as u32..=hi as u32))
                                .expect("class range yields valid chars"),
                        );
                    }
                    Atom::Group(alternatives) => {
                        let idx = rng.0.random_range(0..alternatives.len());
                        alternatives[idx].generate(rng, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        TestRunner::new(ProptestConfig::default(), "strategy-tests")
            .rng()
            .clone()
    }

    #[test]
    fn workspace_patterns_parse_and_generate() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-zA-Z0-9]([a-zA-Z0-9 ,.!?-]{0,38}[a-zA-Z0-9,.!?-])?".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 41, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphanumeric());

            let t = "[a-zA-Z0-9/?=&._ -]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60);

            let u = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&u.len()));
            assert!(u.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn alternation_and_quantifiers_generate() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "(ab|cd)+x?".generate(&mut rng);
            assert!(s.starts_with("ab") || s.starts_with("cd"), "{s:?}");
            let stripped = s.strip_suffix('x').unwrap_or(&s);
            assert_eq!(stripped.len() % 2, 0, "{s:?}");
        }
    }

    #[test]
    fn class_with_trailing_dash_includes_dash() {
        let mut rng = rng();
        let seen_dash = (0..300).any(|_| "[a-]".generate(&mut rng) == "-");
        assert!(seen_dash);
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = rng();
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
