#![warn(missing_docs)]
//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `proptest` its test-suites use: the [`proptest!`]
//! macro (with `proptest_config` and `pat in strategy` bindings),
//! [`Strategy`] with `prop_map`, [`Just`], [`any`], range and
//! regex-literal strategies, tuples, [`collection::vec`], `prop_oneof!`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** On failure the generated input is printed verbatim
//!   (it is usually small here; every strategy in this workspace bounds
//!   its sizes).
//! * **Deterministic seeding.** Each test function derives its RNG from
//!   its own name, so a failure reproduces on every run and across
//!   machines. `PROPTEST_CASES` is honoured to scale case counts.
//! * **Regex strategies** support the subset the suites use: literals,
//!   character classes with ranges, groups with alternation, and the
//!   `?`, `*`, `+`, `{n}`, `{m,n}` quantifiers.
//! * `*.proptest-regressions` files are ignored.

use std::fmt;

pub mod strategy;

pub use strategy::{any, Any, BoxedStrategy, Just, Map, Strategy, Union, VecStrategy};

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The RNG handed to strategies while generating one test case.
#[derive(Debug, Clone)]
pub struct TestRng(pub rand::rngs::StdRng);

impl TestRng {
    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngExt::next_u64(&mut self.0)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives the cases of one property-test function.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// A runner for the test named `name` (the seed derives from the
    /// name, so each test has an independent, reproducible stream).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        TestRunner {
            rng: TestRng(rand::SeedableRng::seed_from_u64(fnv1a(name.as_bytes()))),
            cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Prints the failing case's input when the test body panics (the
/// poor-man's replacement for shrink reporting).
#[derive(Debug)]
pub struct FailureReporter<'a> {
    test: &'a str,
    case: u32,
    input: &'a str,
}

impl<'a> FailureReporter<'a> {
    /// Arms the reporter for one case.
    pub fn new(test: &'a str, case: u32, input: &'a str) -> Self {
        FailureReporter { test, case, input }
    }
}

impl Drop for FailureReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} with input: {}",
                self.test, self.case, self.input
            );
        }
    }
}

/// Defines property-test functions: `proptest! { #[test] fn f(x in s) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let mut __runner = $crate::TestRunner::new($cfg, stringify!($name));
                let __strategy = ($($strat,)+);
                for __case in 0..__runner.cases() {
                    let __value = $crate::Strategy::generate(&__strategy, __runner.rng());
                    let __input = format!("{:?}", __value);
                    let __guard =
                        $crate::FailureReporter::new(stringify!($name), __case, &__input);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            let ($($pat,)+) = __value;
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    ::std::mem::drop(__guard);
                    if let Err(e) = __outcome {
                        panic!(
                            "proptest: {} failed at case {}: {}\n    input: {}",
                            stringify!($name), __case, e, __input
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Picks uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3u64..17,
            (lo, hi) in (0i64..50, 50i64..100),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(lo < hi, "{lo} vs {hi}");
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u32..10) {
            if n > 100 { return Ok(()); }
            prop_assert!(n < 10);
        }

        #[test]
        fn regex_strings_match_their_shape(s in "[a-z]{2,5}", t in "x[0-9]?(ab|cd)") {
            prop_assert!((2..=5).contains(&s.len()), "{s:?}");
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.starts_with('x'));
            prop_assert!(t.ends_with("ab") || t.ends_with("cd"), "{t:?}");
        }

        #[test]
        fn oneof_just_and_vec_compose(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(9u8)], 1..6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 9));
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }
    }

    #[test]
    fn same_test_name_reproduces_the_same_stream() {
        let mut a = crate::TestRunner::new(crate::ProptestConfig::default(), "t");
        let mut b = crate::TestRunner::new(crate::ProptestConfig::default(), "t");
        for _ in 0..16 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }

    #[test]
    // The `proptest!` expansion places a `#[test]` fn inside this test
    // body on purpose — it is invoked directly, never harvested.
    #[allow(unnameable_test_items)]
    fn failing_property_reports_instead_of_passing() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(n in 0u8..4) {
                    prop_assert!(n > 100, "n was {n}");
                }
            }
            always_fails();
        });
        assert!(result.is_err(), "failing property must panic");
    }
}
