#![warn(missing_docs)]
//! Offline drop-in subset of the `bytes` crate API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `bytes` it uses: an immutable, cheaply cloneable
//! byte buffer with zero-copy `slice`. Cloning shares the underlying
//! allocation through an `Arc`, which is all the transport simulation
//! needs (segments are cloned on retransmission).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// Panics if the range is out of bounds, mirroring `bytes::Bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
    }

    #[test]
    fn slices_share_and_nest() {
        let a = Bytes::from(b"hello world".to_vec());
        let hello = a.slice(0..5);
        let world = a.slice(6..);
        assert_eq!(hello.as_ref(), b"hello");
        assert_eq!(world.as_ref(), b"world");
        let ell = hello.slice(1..4);
        assert_eq!(ell.as_ref(), b"ell");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let _ = Bytes::from_static(b"abc").slice(0..4);
    }

    #[test]
    fn debug_is_byte_string_like() {
        let b = Bytes::from_static(b"a\n");
        assert_eq!(format!("{b:?}"), "b\"a\\n\"");
    }
}
