//! Property tests for the durable storage engine (DESIGN.md §2.18).
//!
//! The crash-point sweep: truncate the write-ahead log of a randomized
//! workload at *every* record boundary and recover from the prefix. Each
//! recovery must yield exactly the state the same prefix produces when
//! replayed through the public write API — rows, footprint, and
//! secondary indexes (rebuilt from base rows) all agree, and the
//! recovered journal is the prefix byte for byte. That is the definition
//! of prefix consistency: a crash can lose a suffix of commits, never
//! corrupt what was durable.

use proptest::prelude::*;

use mcommerce::hostsite::db::{Database, DurabilityPolicy, JournalEntry, Value};

/// One randomized operation over a small key domain. Invalid ops (dup
/// insert, update/delete of a missing key) are skipped at apply time,
/// so every journal entry is a committed, replayable write.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: i64, name: u8, qty: i64 },
    Update { key: i64, name: u8, qty: i64 },
    Delete { key: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8i64, 0..4u8, 0..100i64).prop_map(|(key, name, qty)| Op::Insert { key, name, qty }),
        (0..8i64, 0..4u8, 0..100i64).prop_map(|(key, name, qty)| Op::Update { key, name, qty }),
        (0..8i64,).prop_map(|(key,)| Op::Delete { key }),
    ]
}

fn name_of(tag: u8) -> &'static str {
    ["widget", "gadget", "sprocket", "gizmo"][tag as usize % 4]
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_table("items", &["id", "name", "qty"], &["name"])
        .unwrap();
    db
}

fn apply(db: &mut Database, op: &Op) {
    match *op {
        Op::Insert { key, name, qty } => {
            let _ = db.insert(
                "items",
                vec![key.into(), name_of(name).into(), qty.into()],
            );
        }
        Op::Update { key, name, qty } => {
            let _ = db.update(
                "items",
                vec![key.into(), name_of(name).into(), qty.into()],
            );
        }
        Op::Delete { key } => {
            let _ = db.delete("items", &key.into());
        }
    }
}

/// Replays one journal entry through the public write API — the
/// reference build every crash-point recovery is compared against.
fn replay_public(db: &mut Database, entry: &JournalEntry) {
    match entry {
        JournalEntry::CreateTable {
            name,
            columns,
            indexes,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            let idxs: Vec<&str> = indexes.iter().map(String::as_str).collect();
            db.create_table(name, &cols, &idxs).unwrap();
        }
        JournalEntry::Insert { table, row } => db.insert(table, row.clone()).unwrap(),
        JournalEntry::Update { table, row } => db.update(table, row.clone()).unwrap(),
        JournalEntry::Delete { table, key } => db.delete(table, key).unwrap(),
    }
}

/// Full observable state: every row (pk order) plus every index
/// projection, probed through the public query API. Index buckets are
/// compared as *sets* (normalized to pk order here): a rebuild
/// canonicalizes each bucket to primary-key order, while incremental
/// maintenance keeps historical update order — both are valid
/// projections of the same base rows.
type Rows = Vec<Vec<Value>>;

fn observe(db: &Database) -> (Rows, Vec<Rows>, usize) {
    let rows = db
        .select("items", |_| true)
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    let by_name = (0..4u8)
        .map(|tag| {
            let mut bucket: Rows = db
                .select_eq("items", "name", &name_of(tag).into())
                .unwrap()
                .iter()
                .map(|r| (**r).clone())
                .collect();
            bucket.sort_by_key(|row| match row[0] {
                Value::Int(pk) => pk,
                _ => i64::MAX,
            });
            bucket
        })
        .collect();
    (rows, by_name, db.footprint())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the WAL at every record boundary and recovering yields
    /// the prefix-consistent snapshot: identical to replaying the same
    /// prefix through the public API, with indexes rebuilt equal to a
    /// from-scratch build.
    #[test]
    fn crash_point_sweep_recovers_every_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut db = fresh_db();
        for op in &ops {
            apply(&mut db, op);
        }
        let journal = db.journal().to_vec();

        for cut in 0..=journal.len() {
            let prefix = &journal[..cut];
            let recovered = Database::recover(prefix).unwrap();
            // The recovered journal IS the prefix (idempotent recovery).
            prop_assert_eq!(recovered.journal(), prefix);

            // Reference: the same prefix replayed through the public
            // write API on a fresh engine (incremental index
            // maintenance, live counters, the works).
            let mut reference = Database::new();
            for entry in prefix {
                replay_public(&mut reference, entry);
            }
            if cut == 0 {
                prop_assert!(recovered.table_names().is_empty());
                continue;
            }
            prop_assert_eq!(recovered.table_names(), reference.table_names());
            prop_assert_eq!(observe(&recovered), observe(&reference));
        }
    }

    /// Group commit only ever loses a *suffix*: after any workload under
    /// any batch size, the durable journal is a prefix of the
    /// immediately-durable (batch=1) journal for the same ops, and the
    /// pending tail is exactly the rest.
    #[test]
    fn group_commit_loses_only_a_suffix(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        batch in 1..6u32,
    ) {
        let mut immediate = fresh_db();
        let mut batched = fresh_db();
        batched.set_durability(DurabilityPolicy::new(batch, 0));
        for op in &ops {
            apply(&mut immediate, op);
            apply(&mut batched, op);
        }
        let full = immediate.journal();
        let durable = batched.journal();
        prop_assert!(durable.len() <= full.len());
        prop_assert_eq!(durable, &full[..durable.len()]);
        prop_assert_eq!(
            durable.len() + batched.pending_journal_len(),
            full.len(),
            "durable prefix + pending tail account for every entry"
        );
        // Syncing drains the tail and converges the two logs.
        batched.sync_journal();
        prop_assert_eq!(batched.journal(), full);
    }
}
