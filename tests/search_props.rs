//! Property tests for full-text catalog search (DESIGN.md §2.19).
//!
//! Three contracts:
//!
//! 1. *Index = scan.* For any random catalog and edit history, the
//!    incrementally-maintained inverted index returns exactly the rows,
//!    in exactly the order, of a from-scratch brute-force projection
//!    built per query. The index is a derived view; it can never drift
//!    from the base rows it summarizes.
//! 2. *Crash sweep.* Truncate the WAL at every record boundary and
//!    recover: the postings rebuilt from the recovered base rows are
//!    identical (entry counts and every query's result list) to those
//!    of a reference database that replayed the same prefix through the
//!    public API. FTS registration is engine configuration — never
//!    journaled, always rebuilt.
//! 3. *Thread invariance.* A search-heavy fleet merges bit-identically
//!    on 1, 2, 4, and 8 shards, caches on or off — the seventh workload
//!    obeys the same determinism contract as the other six.

use proptest::prelude::*;

use mcommerce::core::{CachePolicy, Category, FleetRunner, Scenario};
use mcommerce::hostsite::db::{Database, Value};

/// Small vocabulary so random catalogs collide on terms (shared words
/// across rows are what make ranking interesting).
const ADJECTIVES: [&str; 4] = ["wireless", "leather", "spare", "travel"];
const NOUNS: [&str; 4] = ["earpiece", "case", "stylus", "charger"];

fn name_of(adj: u8, noun: u8) -> String {
    format!(
        "{} {}",
        ADJECTIVES[adj as usize % 4],
        NOUNS[noun as usize % 4]
    )
}

/// Every query worth asking of the vocabulary: single terms, pairs, and
/// a term that never occurs.
fn query_battery() -> Vec<String> {
    let mut queries: Vec<String> = ADJECTIVES
        .iter()
        .chain(NOUNS.iter())
        .map(|w| (*w).to_owned())
        .collect();
    for a in ADJECTIVES {
        for n in NOUNS {
            queries.push(format!("{a} {n}"));
        }
    }
    queries.push("unobtainium".to_owned());
    queries
}

#[derive(Debug, Clone)]
enum Op {
    Insert { key: i64, adj: u8, noun: u8 },
    Update { key: i64, adj: u8, noun: u8 },
    Delete { key: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8i64, any::<u8>(), any::<u8>())
            .prop_map(|(key, adj, noun)| Op::Insert { key, adj, noun }),
        (0..8i64, any::<u8>(), any::<u8>())
            .prop_map(|(key, adj, noun)| Op::Update { key, adj, noun }),
        (0..8i64,).prop_map(|(key,)| Op::Delete { key }),
    ]
}

fn fresh_catalog() -> Database {
    let mut db = Database::new();
    db.create_table("products", &["sku", "name", "price"], &["name"])
        .unwrap();
    db
}

fn apply(db: &mut Database, op: &Op) {
    match *op {
        Op::Insert { key, adj, noun } => {
            let _ = db.insert(
                "products",
                vec![key.into(), name_of(adj, noun).into(), Value::Int(100)],
            );
        }
        Op::Update { key, adj, noun } => {
            let _ = db.update(
                "products",
                vec![key.into(), name_of(adj, noun).into(), Value::Int(100)],
            );
        }
        Op::Delete { key } => {
            let _ = db.delete("products", &key.into());
        }
    }
}

/// Primary keys of a ranked result list — the comparable projection
/// (rows are `Arc`-shared, so keys pin both content and order).
fn keys(rows: &[std::sync::Arc<Vec<Value>>]) -> Vec<String> {
    rows.iter().map(|r| r[0].to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: after any edit history, indexed search equals the
    /// brute-force scan for every query in the battery.
    #[test]
    fn indexed_search_equals_brute_force_scan(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let mut db = fresh_catalog();
        db.create_fts("products", "name").unwrap();
        for op in &ops {
            apply(&mut db, op);
        }
        for q in query_battery() {
            let indexed = keys(&db.search("products", &q).unwrap());
            let scanned = keys(&db.search_scan("products", "name", &q).unwrap());
            prop_assert_eq!(indexed, scanned, "query {:?} diverged", q);
        }
    }

    /// Contract 2: recovery from every WAL prefix rebuilds postings
    /// identical to a reference that replayed the prefix live.
    #[test]
    fn crash_at_every_record_boundary_rebuilds_an_identical_index(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let mut db = fresh_catalog();
        db.create_fts("products", "name").unwrap();
        for op in &ops {
            apply(&mut db, op);
        }
        let journal = db.journal().to_vec();
        let queries = query_battery();
        for cut in 0..=journal.len() {
            let prefix = &journal[..cut];
            // Crash: the recovered engine has no FTS (registration is
            // not journaled); re-registering rebuilds from base rows.
            let mut recovered = Database::recover(prefix).unwrap();
            prop_assert!(!recovered.has_fts("products").unwrap_or(false));
            let rebuilt_entries = match recovered.create_fts("products", "name") {
                Ok(n) => n,
                // Prefix cut before the CreateTable record: nothing to
                // index, nothing to compare.
                Err(_) => continue,
            };
            // Reference: the same prefix replayed through recovery,
            // indexed independently.
            let mut reference = Database::recover(prefix).unwrap();
            let reference_entries = reference.create_fts("products", "name").unwrap();
            prop_assert_eq!(rebuilt_entries, reference_entries);
            for q in &queries {
                prop_assert_eq!(
                    keys(&recovered.search("products", q).unwrap()),
                    keys(&reference.search_scan("products", "name", q).unwrap()),
                    "cut {} query {:?} diverged", cut, q
                );
            }
        }
    }
}

/// Contract 3, cache off: fixed-seed search fleets are byte-identical
/// across shard counts.
#[test]
fn search_heavy_fleet_is_thread_count_invariant() {
    let scenario = Scenario::new("search-fleet")
        .app(Category::Commerce)
        .search_heavy(true)
        .users(6)
        .sessions_per_user(2)
        .seed(0xF12);
    let base = FleetRunner::new(scenario.clone()).threads(1).run().report.summary;
    assert!(
        base.workload.success_rate() > 0.99,
        "search sessions must succeed end to end"
    );
    for threads in [2, 4, 8] {
        let other = FleetRunner::new(scenario.clone()).threads(threads).run().report.summary;
        assert_eq!(base, other, "diverged at {threads} threads");
    }
}

/// Contract 3, caches on: the high-cardinality query key space flows
/// through every cache tier without breaking shard invariance.
#[test]
fn cached_search_heavy_fleet_is_thread_count_invariant() {
    let scenario = Scenario::new("search-fleet-cached")
        .app(Category::Commerce)
        .search_heavy(true)
        .users(6)
        .sessions_per_user(2)
        .cache(CachePolicy::standard())
        .seed(0xF12 + 1);
    let base = FleetRunner::new(scenario.clone()).threads(1).run().report.summary;
    assert!(base.workload.success_rate() > 0.99);
    for threads in [2, 4, 8] {
        let other = FleetRunner::new(scenario.clone()).threads(threads).run().report.summary;
        assert_eq!(base, other, "diverged at {threads} threads");
    }
}
