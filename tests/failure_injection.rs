//! Failure-injection integration tests: the paper's constraints (battery,
//! coverage, memory, loss bursts, crashes) made to bite, and the system's
//! responses verified.

use mcommerce::core::apps::{Application, PaymentsApp};
use mcommerce::core::{CommerceSystem, McSystem, SystemSpec, WiredPath, WirelessConfig};
use mcommerce::hostsite::db::{Database, Value};
use mcommerce::hostsite::HostComputer;
use mcommerce::middleware::MobileRequest;
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::WlanStandard;

fn payment_system(device: DeviceProfile, wireless: WirelessConfig, seed: u64) -> McSystem {
    let app = PaymentsApp::new();
    let mut host = HostComputer::new(Database::new(), seed);
    app.install(&mut host);
    SystemSpec::new()
        .device(device)
        .wireless(wireless)
        .wired(WiredPath::wan())
        .seed(seed)
        .build(host)
}

#[test]
fn battery_exhaustion_stops_service_and_recharge_restores_it() {
    let mut device = DeviceProfile::palm_i705();
    device.battery_j = 0.05;
    let mut system = payment_system(
        device,
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 20.0,
        },
        21,
    );
    let mut failures = 0;
    for _ in 0..500 {
        let r = system.execute(&MobileRequest::get("/shop"));
        if !r.success {
            assert!(r.failure.as_deref().unwrap().contains("battery"));
            failures += 1;
            break;
        }
    }
    assert!(failures > 0, "tiny battery must eventually die");
    // Dead battery fails instantly now.
    let r = system.execute(&MobileRequest::get("/shop"));
    assert!(!r.success);
    // Recharge brings the station back.
    system.station.battery.recharge();
    let r = system.execute(&MobileRequest::get("/shop"));
    assert!(r.success, "{:?}", r.failure);
}

#[test]
fn walking_out_of_coverage_fails_transactions_and_returning_recovers() {
    let mut system = payment_system(
        DeviceProfile::ipaq_h3870(),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 20.0,
        },
        22,
    );
    assert!(system.execute(&MobileRequest::get("/shop")).success);

    // Walk past the 100 m edge of 802.11b coverage.
    system.set_wireless(WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m: 250.0,
    });
    let r = system.execute(&MobileRequest::get("/shop"));
    assert!(!r.success);
    assert!(r.failure.as_deref().unwrap().contains("no coverage"));

    // Walk back in.
    system.set_wireless(WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m: 60.0,
    });
    assert!(system.execute(&MobileRequest::get("/shop")).success);
}

#[test]
fn oversized_content_fails_on_small_devices_but_not_large() {
    // A page too big for the Palm's content budget (8 KB).
    let build = |device: DeviceProfile| {
        let mut host = HostComputer::new(Database::new(), 23);
        let paragraphs: Vec<mcommerce::markup::Node> = (0..300)
            .map(|i| {
                mcommerce::markup::html::p(&format!(
                    "Row {i} of an enormous report page with plenty of text in it"
                ))
                .into()
            })
            .collect();
        let page = mcommerce::markup::html::page("Big", paragraphs);
        host.web.static_page("/big", page.to_markup());
        SystemSpec::new()
            .device(device)
            .wireless(WirelessConfig::Wlan {
                standard: WlanStandard::Dot11b,
                distance_m: 10.0,
            })
            .wired(WiredPath::wan())
            .seed(24)
            .build(host)
    };
    let mut palm = build(DeviceProfile::palm_i705());
    let r = palm.execute(&MobileRequest::get("/big"));
    assert!(!r.success);
    assert!(
        r.failure.as_deref().unwrap().contains("render failed"),
        "{:?}",
        r.failure
    );

    let mut toshiba = build(DeviceProfile::toshiba_e740());
    let r = toshiba.execute(&MobileRequest::get("/big"));
    assert!(r.success, "{:?}", r.failure);
}

#[test]
fn host_database_crash_recovery_preserves_committed_purchases() {
    // Run purchases, "crash" the host, recover the database from its
    // journal, and verify committed state (stock) survived exactly.
    let app = PaymentsApp::new();
    let mut host = HostComputer::new(Database::new(), 25);
    app.install(&mut host);
    let mut system = SystemSpec::new()
        .device(DeviceProfile::ipaq_h3870())
        .wireless(WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 20.0,
        })
        .wired(WiredPath::wan())
        .seed(26)
        .build(host);
    for nonce in 0..5 {
        let r = system.execute(&MobileRequest::post(
            "/shop/buy",
            vec![
                ("sku".into(), "2".into()),
                ("nonce".into(), nonce.to_string()),
            ],
        ));
        assert!(r.success, "{:?}", r.failure);
    }
    let stock_before = system
        .host
        .web
        .db()
        .get("products", &2.into())
        .unwrap()
        .unwrap()[3]
        .clone();
    assert_eq!(stock_before, Value::Int(55)); // 60 seeded − 5 sold

    // Crash: rebuild a fresh database purely from the journal.
    let journal = system.host.web.db().journal().to_vec();
    let recovered = Database::recover(&journal).expect("journal replays cleanly");
    assert_eq!(
        recovered.get("products", &2.into()).unwrap().unwrap()[3],
        Value::Int(55),
        "committed purchases survive the crash"
    );
    assert_eq!(recovered.len("products").unwrap(), 4);
}

#[test]
fn deep_fringe_coverage_degrades_latency_but_arq_keeps_success_up() {
    // At 95 m the 802.11b link runs at 1 Mbps with BER near 1e-4; ARQ
    // fragments and retransmits, so transactions succeed but cost more.
    let mut near = payment_system(
        DeviceProfile::ipaq_h3870(),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 10.0,
        },
        27,
    );
    let mut far = payment_system(
        DeviceProfile::ipaq_h3870(),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 95.0,
        },
        27,
    );
    let mut near_air = 0.0;
    let mut far_air = 0.0;
    let mut far_retx = 0u32;
    for i in 0..10 {
        let r1 = near.execute(&MobileRequest::get("/shop"));
        let r2 = far.execute(&MobileRequest::get("/shop"));
        assert!(r1.success && r2.success, "iteration {i}");
        near_air += r1.breakdown.wireless_secs;
        far_air += r2.breakdown.wireless_secs;
        far_retx += r2.retransmissions;
    }
    // 1 Mbps + heavy BER at the fringe vs 11 Mbps clean near the AP.
    assert!(
        far_air > near_air * 3.0,
        "fringe air {far_air} vs near {near_air}"
    );
    assert!(far_retx > 0, "fringe ARQ must be working");
}

#[test]
fn out_of_stock_failures_propagate_as_transaction_failures() {
    let mut system = payment_system(
        DeviceProfile::ipaq_h3870(),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 15.0,
        },
        28,
    );
    // SKU 1 has 40 units; the 41st purchase must fail cleanly.
    for nonce in 0..40 {
        let r = system.execute(&MobileRequest::post(
            "/shop/buy",
            vec![
                ("sku".into(), "1".into()),
                ("nonce".into(), nonce.to_string()),
            ],
        ));
        assert!(r.success, "purchase {nonce}: {:?}", r.failure);
    }
    let r = system.execute(&MobileRequest::post(
        "/shop/buy",
        vec![("sku".into(), "1".into()), ("nonce".into(), "4040".into())],
    ));
    assert!(!r.success);
    assert_eq!(
        system
            .host
            .web
            .db()
            .get("products", &1.into())
            .unwrap()
            .unwrap()[3],
        Value::Int(0),
        "stock never goes negative"
    );
}
