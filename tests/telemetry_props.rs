//! Property tests for the fleet telemetry layer (DESIGN.md §2.17):
//! thread-count invariance of the series exports byte-for-byte, the
//! observer property (telemetry on changes nothing the simulation
//! produces), export stability, and the shape of the recorded series.

use mcommerce::core::{CachePolicy, Category, FleetRun, FleetRunner, Scenario, Topology};
use mcommerce::obs::Telemetry;
use mcommerce::simnet::SimDuration;

fn crowd(users: u64) -> Scenario {
    Scenario::new("telemetry")
        .app(Category::Entertainment)
        .users(users)
        .sessions_per_user(2)
        .think_time(2.0)
        .seed(23)
        .cache(CachePolicy::standard().ttl(SimDuration::from_secs(3600)))
}

fn telemetry_run(scenario: &Scenario, topology: Topology, threads: usize) -> FleetRun {
    FleetRunner::new(scenario.clone())
        .topology(topology)
        .threads(threads)
        .telemetry(true)
        .run()
}

fn series(run: &FleetRun) -> &Telemetry {
    run.timeseries.as_ref().expect("telemetry was enabled")
}

#[test]
fn series_exports_are_byte_identical_across_thread_counts() {
    // Several islands so the thread sweep actually exercises the
    // canonical merge: 6 cells → 3 gateways → 3 hosts.
    let topo = Topology::shared().cells(6).gateways(3).hosts(3);
    let scenario = crowd(24);
    let runs: Vec<FleetRun> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| telemetry_run(&scenario, topo, t))
        .collect();
    let reference = series(&runs[0]);
    assert!(!reference.is_empty(), "the crowd must record some series");
    for run in &runs[1..] {
        assert_eq!(
            reference.to_jsonl(),
            series(run).to_jsonl(),
            "JSONL series must not depend on thread count"
        );
        assert_eq!(
            reference.chrome_counter_events(),
            series(run).chrome_counter_events(),
            "counter tracks must not depend on thread count"
        );
    }
}

#[test]
fn telemetry_is_a_pure_observer() {
    // The same traced world with telemetry off and on: summary,
    // contention stats and the full JSONL trace must be bit-identical —
    // instrumentation never feeds back into the simulation.
    let topo = Topology::shared().cells(4).gateways(2).hosts(2);
    let scenario = crowd(12);
    let off = FleetRunner::new(scenario.clone())
        .topology(topo)
        .threads(2)
        .traced(true)
        .run();
    let on = FleetRunner::new(scenario)
        .topology(topo)
        .threads(2)
        .traced(true)
        .telemetry(true)
        .run();
    assert_eq!(off.report.summary, on.report.summary);
    assert_eq!(off.contention, on.contention);
    assert_eq!(
        off.trace.expect("traced").to_jsonl(),
        on.trace.expect("traced").to_jsonl(),
        "the event trace must not see the telemetry layer"
    );
    assert!(off.timeseries.is_none());
    assert!(on.timeseries.is_some());
}

#[test]
fn exports_are_stable_and_reruns_are_identical() {
    let topo = Topology::shared();
    let scenario = crowd(8);
    let run = telemetry_run(&scenario, topo, 2);
    let again = telemetry_run(&scenario, topo, 2);
    let t = series(&run);
    // Pure functions of the bins: repeated calls are byte-identical.
    assert_eq!(t.to_jsonl(), t.to_jsonl());
    assert_eq!(t.chrome_counter_events(), t.chrome_counter_events());
    // And a rerun of the same seed reproduces them byte-for-byte.
    assert_eq!(t.to_jsonl(), series(&again).to_jsonl());
}

#[test]
fn every_shared_resource_registers_its_series() {
    let run = telemetry_run(&crowd(8), Topology::shared(), 2);
    let t = series(&run);
    let names: Vec<&str> = t.names().collect();
    for expected in [
        "cell0000.airtime_util",
        "gateway0000.cache_hit_rate",
        "gateway0000.cpu_util",
        "host0000.cpu_util",
        "host0000.queue_depth",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    // Canonical order is lexicographic — the merge contract.
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "names() must come out in canonical order");
    // The busy world actually moved the needle somewhere.
    assert!(t.peak_milli("cell0000.airtime_util").unwrap_or(0) > 0);
}

#[test]
fn jsonl_lines_parse_and_match_the_series_schema() {
    let run = telemetry_run(&crowd(8), Topology::shared(), 2);
    let jsonl = series(&run).to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"series\":\""), "bad line: {line}");
        for field in ["\"kind\":", "\"t_ns\":", "\"bin_ns\":", "\"sum\":", "\"weight\":", "\"max\":", "\"milli\":"] {
            assert!(line.contains(field), "line missing {field}: {line}");
        }
        assert!(line.ends_with('}'), "bad line: {line}");
    }
}

#[test]
fn chrome_counter_events_carry_counter_phase_and_values() {
    let run = telemetry_run(&crowd(8), Topology::shared(), 2);
    let events = series(&run).chrome_counter_events();
    assert!(!events.is_empty());
    for event in &events {
        assert!(event.contains("\"ph\":\"C\""), "not a counter: {event}");
        assert!(event.contains("\"args\":{\"value\":"), "no value: {event}");
    }
}
