//! Property tests for the caching hierarchy (DESIGN.md §2.14).
//!
//! Three contracts keep the caches safe to publish numbers from:
//!
//! 1. *Thread-count invariance.* Caches are per-user state inside each
//!    user's own [`McSystem`], so a cache-enabled fleet merges to the
//!    same bits on 1, 2, 4 or 8 shards.
//! 2. *Zero-TTL identity.* A policy whose TTLs are zero (even with the
//!    master switch on) executes the exact cache-free path — the query
//!    cache may run underneath, but it is sim-time transparent.
//! 3. *Table-scoped invalidation.* A write to table T flushes only T's
//!    cached queries; other tables' entries keep serving.
//!
//! [`McSystem`]: mcommerce::core::McSystem

use proptest::prelude::*;

use mcommerce::core::apps::healthcare::CLINICIAN;
use mcommerce::core::{
    CachePolicy, Category, CommerceSystem, FleetReport, FleetRunner, MiddlewareKind, Scenario,
};
use mcommerce::hostsite::db::Database;
use mcommerce::middleware::MobileRequest;
use mcommerce::simnet::SimDuration;

// The property bodies predate the FleetRunner API; this shim keeps them
// readable while exercising the replacement entry point.
fn run_on(scenario: &Scenario, threads: usize) -> FleetReport {
    FleetRunner::new(scenario.clone()).threads(threads).run().report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_fleets_are_shard_count_invariant(
        users in 1..8u64,
        sessions in 2..4u64,
        category in (0..8usize).prop_map(|i| Category::ALL[i]),
        middleware in (0..3usize).prop_map(|i| MiddlewareKind::ALL[i]),
        ttl_secs in 1..120u64,
        seed in any::<u64>(),
    ) {
        let scenario = Scenario::new("cache-prop")
            .app(category)
            .middleware(middleware)
            .users(users)
            .sessions_per_user(sessions)
            .seed(seed)
            .cache(CachePolicy::standard().ttl(SimDuration::from_secs(ttl_secs)));
        let one = run_on(&scenario, 1).summary;
        let two = run_on(&scenario, 2).summary;
        let four = run_on(&scenario, 4).summary;
        let eight = run_on(&scenario, 8).summary;
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &eight);
        prop_assert!(one.transactions() >= users);
    }

    #[test]
    fn zero_ttl_policies_are_byte_identical_to_disabled(
        users in 1..6u64,
        category in (0..8usize).prop_map(|i| Category::ALL[i]),
        seed in any::<u64>(),
    ) {
        let base = Scenario::new("ttl0")
            .app(category)
            .users(users)
            .sessions_per_user(2)
            .seed(seed);
        let plain = run_on(&base.clone(), 2).summary;
        let disabled = run_on(&base.clone().cache(CachePolicy::disabled()), 2).summary;
        // Master switch on, both TTLs zero: the db query cache runs but
        // is sim-time transparent, so the summary must not move a bit.
        let zero_ttl = CachePolicy {
            enabled: true,
            ..CachePolicy::disabled()
        };
        let armed = run_on(&base.cache(zero_ttl), 2).summary;
        prop_assert_eq!(&plain, &disabled);
        prop_assert_eq!(&plain, &armed);
    }
}

/// Neither cache layer may answer for the host's auth realms: after a
/// correctly-authenticated request renders a protected page, a repeat
/// with the wrong password — or none — must still be refused, caches on.
#[test]
fn caches_never_serve_protected_pages_past_the_auth_realm() {
    let scenario = Scenario::new("cache-auth")
        .app(Category::HealthCare)
        .seed(42)
        .cache(CachePolicy::standard());
    let mut system = scenario.system_for_user(0);
    let url = "/ward/patient?id=1";

    // Correct credentials succeed — twice, so any cache that wrongly
    // admitted the page would be warm by now.
    for _ in 0..2 {
        let report = system.execute(&MobileRequest::get(url).with_auth(CLINICIAN.0, CLINICIAN.1));
        assert!(report.success, "{:?}", report.failure);
    }
    // Wrong password: refused, not served the cached page.
    let wrong = system.execute(&MobileRequest::get(url).with_auth(CLINICIAN.0, "wrongpass"));
    assert!(!wrong.success, "wrong password must not hit a cache");
    assert!(
        wrong.failure.as_deref().is_some_and(|f| f.contains("401")),
        "expected a 401, got {:?}",
        wrong.failure
    );
    // Missing credentials entirely: same refusal.
    let anon = system.execute(&MobileRequest::get(url));
    assert!(!anon.success, "anonymous request must not hit a cache");
}

#[test]
fn writes_invalidate_only_the_touched_table() {
    let mut db = Database::new();
    db.create_table("wards", &["id", "name"], &[]).unwrap();
    db.create_table("drugs", &["id", "name"], &[]).unwrap();
    db.insert("wards", vec![1.into(), "icu".into()]).unwrap();
    db.insert("drugs", vec![1.into(), "aspirin".into()]).unwrap();
    db.set_query_cache(true);

    let guard = obs::metrics::enable();
    // Warm both tables' query caches.
    db.select_eq("wards", "id", &1.into()).unwrap();
    db.select_eq("drugs", "id", &1.into()).unwrap();
    // Write to drugs only.
    db.insert("drugs", vec![2.into(), "ibuprofen".into()]).unwrap();
    // wards re-reads from cache; drugs recomputes.
    db.select_eq("wards", "id", &1.into()).unwrap();
    let drugs = db.select_eq("drugs", "id", &1.into()).unwrap();
    drop(guard);
    let metrics = obs::metrics::take();

    assert_eq!(metrics.counter("host.db_cache.hits"), 1, "wards stayed cached");
    assert_eq!(metrics.counter("host.db_cache.misses"), 3, "drugs recomputed");
    assert_eq!(metrics.counter("host.db_cache.invalidations"), 1);
    assert_eq!(drugs.len(), 1);
}
