//! The streaming-merge contract.
//!
//! The fleet engines now fold shard counters and per-user traces
//! *as they arrive* through [`FleetMerger`] / [`TraceMerger`] reorder
//! buffers, instead of collecting everything and sorting. These
//! properties pin what that refactor must preserve:
//!
//! 1. Engine level: summaries **and** traces are byte-identical at
//!    1, 2, 4 and 8 threads (arrival order differs wildly; canonical
//!    order must not).
//! 2. Merger level: for *any* arrival order of shard chunks — proptest
//!    drives randomised permutations and chunkings — the streamed
//!    result is identical to the batch in-order merge.

use mcommerce_core::{Category, FleetMerger, FleetRunner, Scenario, TraceMerger};
use mcommerce_core::fleet::FleetTrace;
use mcommerce_core::report::WorkloadCounters;
use proptest::prelude::*;

fn scenario() -> Scenario {
    Scenario::new("merge-props")
        .app(Category::Commerce)
        .users(8)
        .sessions_per_user(2)
        .seed(23)
}

/// A permutation of `0..keys.len()` sampled via random sort keys (the
/// vendored proptest shim has no shuffle strategy; argsort over random
/// keys with index tie-breaks is an unbiased substitute).
fn permutation_from(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

/// One traced fleet run at `threads`, returning `(summary, trace)`.
fn traced(threads: usize) -> (mcommerce_core::FleetSummary, FleetTrace) {
    let run = FleetRunner::new(scenario()).threads(threads).traced(true).run();
    (run.report.summary, run.trace.expect("traced run carries a trace"))
}

#[test]
fn streaming_engines_are_identical_at_1_2_4_8_threads() {
    let (summary, trace) = traced(1);
    assert!(!trace.events.is_empty());
    for threads in [2, 4, 8] {
        let (s, t) = traced(threads);
        assert_eq!(summary, s, "summary diverged at {threads} threads");
        assert_eq!(
            trace.to_jsonl(),
            t.to_jsonl(),
            "trace diverged at {threads} threads"
        );
        assert_eq!(
            trace.metrics.to_json(),
            t.metrics.to_json(),
            "metrics diverged at {threads} threads"
        );
    }
}

/// Per-user counters of the fixed scenario, one entry per user.
fn per_user_counters() -> Vec<WorkloadCounters> {
    let scenario = scenario();
    (0..scenario.users)
        .map(|user| {
            let mut counters = WorkloadCounters::default();
            scenario.run_user(user, &mut counters);
            counters
        })
        .collect()
}

/// Per-user traces of the fixed scenario, with each user's counters.
fn per_user_traces() -> Vec<(u64, mcommerce_core::fleet::UserTrace)> {
    let scenario = scenario();
    (0..scenario.users)
        .map(|user| {
            let mut counters = WorkloadCounters::default();
            (user, scenario.run_user_traced(user, &mut counters))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any arrival permutation of the shard stream folds to the same
    /// counters as the in-order batch merge.
    #[test]
    fn counter_streams_merge_identically_in_any_arrival_order(
        keys in proptest::collection::vec(any::<u64>(), 8usize),
    ) {
        let arrival = permutation_from(&keys);
        let users = per_user_counters();
        let mut batch = WorkloadCounters::default();
        for counters in &users {
            batch.merge(counters);
        }
        let mut merger = FleetMerger::new();
        for &user in &arrival {
            merger.push_counters(user as u64, users[user].clone());
        }
        prop_assert_eq!(batch, merger.finish());
    }

    /// Any arrival permutation of per-user traces streams to the same
    /// fleet trace as the in-order batch concatenation — events, dumps
    /// and metrics all byte-identical.
    #[test]
    fn trace_streams_merge_identically_in_any_arrival_order(
        keys in proptest::collection::vec(any::<u64>(), 8usize),
    ) {
        let arrival = permutation_from(&keys);
        // Batch reference: user-index order.
        let mut batch = FleetTrace::default();
        for (_, user) in per_user_traces() {
            batch.events.extend(user.events);
            batch.dumps.extend(user.dumps);
            batch.metrics.merge(&user.metrics);
        }
        // Streamed: the same traces in the sampled arrival order.
        let mut arrived = per_user_traces();
        let mut merger = TraceMerger::new();
        for &slot in &arrival {
            // Re-runs are deterministic, so taking by index is exact.
            let (user, trace) = std::mem::take(&mut arrived[slot]);
            let _ = user;
            merger.push(slot as u64, trace);
        }
        let streamed = merger.finish();
        prop_assert_eq!(batch.to_jsonl(), streamed.to_jsonl());
        prop_assert_eq!(batch.dumps.len(), streamed.dumps.len());
        prop_assert_eq!(batch.metrics.to_json(), streamed.metrics.to_json());
    }
}
