//! The observability determinism contract, end to end:
//!
//! 1. A fixed-seed traced fleet produces **byte-identical** JSONL and
//!    Chrome-trace exports at any thread count — the recorder inherits
//!    the fleet engine's canonical user-order merge.
//! 2. Tracing only observes: the workload summary matches the untraced
//!    run exactly.
//! 3. Every failed transaction leaves a flight-recorder dump naming the
//!    layer that failed it.

use mcommerce_core::{Category, FleetReport, FleetRunner, FleetTrace, Scenario};
use wireless::WlanStandard;

// These shims keep the assertions readable while exercising the
// FleetRunner entry point that replaced fleet::run_traced_on.
fn run_on(scenario: &Scenario, threads: usize) -> FleetReport {
    FleetRunner::new(scenario.clone()).threads(threads).run().report
}

fn run_traced_on(scenario: &Scenario, threads: usize) -> (FleetReport, FleetTrace) {
    let run = FleetRunner::new(scenario.clone())
        .threads(threads)
        .traced(true)
        .run();
    (run.report, run.trace.expect("traced run carries a trace"))
}

fn scenario() -> Scenario {
    Scenario::new("trace-props")
        .app(Category::Commerce)
        .users(12)
        .sessions_per_user(2)
        .seed(2003)
}

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts() {
    let scenario = scenario();
    let (_, t1) = run_traced_on(&scenario, 1);
    let (_, t2) = run_traced_on(&scenario, 2);
    let (_, t8) = run_traced_on(&scenario, 8);

    assert!(!t1.events.is_empty(), "traced fleet must produce events");
    let jsonl = t1.to_jsonl();
    assert_eq!(jsonl, t2.to_jsonl(), "JSONL must not depend on threads");
    assert_eq!(jsonl, t8.to_jsonl(), "JSONL must not depend on threads");

    let chrome = t1.to_chrome_json();
    assert_eq!(chrome, t2.to_chrome_json());
    assert_eq!(chrome, t8.to_chrome_json());

    // The merged metrics registry obeys the same contract.
    assert_eq!(t1.metrics.to_json(), t2.metrics.to_json());
    assert_eq!(t1.metrics.to_json(), t8.metrics.to_json());
}

#[test]
fn tracing_does_not_perturb_the_fleet() {
    let scenario = scenario();
    let untraced = run_on(&scenario, 4).summary;
    let (traced, trace) = run_traced_on(&scenario, 4);
    assert_eq!(traced.summary, untraced);
    assert_eq!(
        trace.metrics.counter("station.transactions"),
        untraced.transactions()
    );
}

#[test]
fn failed_transactions_dump_the_flight_recorder() {
    // Out of WLAN range: every transaction fails with "no coverage", and
    // each failure must leave a dump attributed to the wireless layer.
    let dead_zone = scenario().users(3).wireless(
        mcommerce_core::netpath::WirelessConfig::Wlan {
            standard: WlanStandard::Bluetooth,
            distance_m: 50.0,
        },
    );
    let (report, trace) = run_traced_on(&dead_zone, 2);
    let failed = report.summary.workload.attempted - report.summary.workload.succeeded;
    assert!(failed > 0, "dead zone must fail transactions");
    assert_eq!(
        trace.dumps.len(),
        failed,
        "one flight dump per failed transaction"
    );
    for dump in &trace.dumps {
        assert_eq!(dump.layer, obs::Layer::Wireless, "{}", dump.reason);
        assert!(dump.reason.contains("no coverage"), "{}", dump.reason);
    }
}
