//! Property tests for the shared-world contention engine (DESIGN.md
//! §2.15): thread-count invariance of summaries *and* traces, exact
//! equivalence between a one-user shared world and the legacy per-user
//! world, correlated faults behind a shared gateway, and the knee — p99
//! latency rising with population on fixed infrastructure.

use mcommerce::core::{
    Category, FleetRun, FleetRunner, Placement, RecorderKind, Scenario, Topology,
};
use mcommerce::faults::{FaultKind, FaultPlan};
use mcommerce::simnet::SimDuration;

fn shared_run(scenario: &Scenario, topology: Topology, threads: usize) -> FleetRun {
    FleetRunner::new(scenario.clone())
        .topology(topology)
        .threads(threads)
        .run()
}

fn crowd(users: u64) -> Scenario {
    Scenario::new("shared")
        .app(Category::Entertainment)
        .users(users)
        .sessions_per_user(2)
        .think_time(2.0)
        .seed(23)
}

#[test]
fn shared_world_is_byte_identical_across_thread_counts() {
    // Several islands so the thread sweep actually exercises sharding:
    // 6 cells → 3 gateways → 3 hosts.
    let topo = Topology::shared().cells(6).gateways(3).hosts(3);
    let scenario = crowd(24);
    let runs: Vec<FleetRun> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| shared_run(&scenario, topo, t))
        .collect();
    for run in &runs[1..] {
        assert_eq!(
            runs[0].report.summary, run.report.summary,
            "summary must not depend on thread count"
        );
        assert_eq!(
            runs[0].contention, run.contention,
            "contention stats must not depend on thread count"
        );
    }
}

#[test]
fn shared_world_traces_are_byte_identical_across_thread_counts() {
    let topo = Topology::shared().cells(4).gateways(2).hosts(2);
    let scenario = crowd(12);
    let traces: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            FleetRunner::new(scenario.clone())
                .topology(topo)
                .threads(t)
                .traced(true)
                .run()
                .trace
                .expect("traced run carries a trace")
                .to_jsonl()
        })
        .collect();
    for trace in &traces[1..] {
        assert_eq!(&traces[0], trace, "JSONL trace must be thread-invariant");
    }
}

#[test]
fn one_user_shared_world_reproduces_the_legacy_world_exactly() {
    // One user on shared infrastructure never queues, so every wait is
    // exactly zero and the engines must agree bit for bit — summaries
    // and traces alike.
    for category in [Category::Commerce, Category::Entertainment] {
        let scenario = Scenario::new("degenerate")
            .app(category)
            .users(1)
            .sessions_per_user(3)
            .think_time(1.5)
            .seed(47);
        let legacy = FleetRunner::new(scenario.clone()).traced(true).run();
        let shared = FleetRunner::new(scenario)
            .topology(Topology::shared())
            .traced(true)
            .run();
        assert_eq!(
            legacy.report.summary, shared.report.summary,
            "{category}: 1-user shared summary must equal legacy"
        );
        assert_eq!(
            legacy.trace.unwrap().to_jsonl(),
            shared.trace.unwrap().to_jsonl(),
            "{category}: 1-user shared trace must equal legacy"
        );
        let stats = shared.contention.expect("shared run reports contention");
        assert_eq!(stats.total_wait_ns(), 0, "one user never waits");
        assert_eq!(stats.contended_transactions, 0);
    }
}

#[test]
fn shared_gateway_outage_strikes_the_whole_population_at_once() {
    // All users think in lockstep from t = 0, so a plan window covers
    // every user's transaction attempts in the same sim-time interval —
    // the correlated-failure story a shared gateway implies.
    let outage = FaultPlan::none().window(
        SimDuration::from_secs(1),
        SimDuration::from_secs(3600),
        FaultKind::GatewayOutage,
    );
    let scenario = crowd(8).sessions_per_user(2).think_time(5.0).faults(outage);
    let run = shared_run(&scenario, Topology::shared(), 2);
    let workload = &run.report.summary.workload;
    // First session starts before the window opens; the second (after
    // 5 s of think time) lands inside it for every single user.
    assert!(
        workload.succeeded < workload.attempted,
        "the outage must fail transactions"
    );
    let failed = workload.attempted - workload.succeeded;
    assert_eq!(
        failed % 8,
        0,
        "a shared outage is correlated: it fails the same steps for all \
         8 users, so failures come in population-sized multiples (got {failed})"
    );
}

#[test]
fn contention_waits_grow_with_population_on_fixed_infrastructure() {
    // The paper's heavy-traffic concern, as a property: more stations
    // behind one cell + gateway + host ⇒ more queueing, higher p99.
    let topo = Topology::shared();
    let mut last_wait = 0u64;
    let mut last_p99 = 0.0f64;
    for users in [1u64, 8, 32] {
        let run = shared_run(&crowd(users), topo, 2);
        let stats = run.contention.expect("contention stats");
        let p99 = run
            .report
            .summary
            .workload
            .counters
            .latency_percentile(99.0);
        assert!(
            stats.total_wait_ns() >= last_wait,
            "{users} users: total wait {} must not drop below {}",
            stats.total_wait_ns(),
            last_wait
        );
        assert!(
            p99 >= last_p99,
            "{users} users: p99 {p99} must not drop below {last_p99}"
        );
        last_wait = stats.total_wait_ns();
        last_p99 = p99;
    }
    assert!(last_wait > 0, "32 users on one cell must actually contend");
}

#[test]
fn placement_changes_the_load_split_but_not_the_totals_shape() {
    // Round-robin and blocked placement both run the same population to
    // completion; only which cell/island each user lands in differs.
    let topo = Topology::shared().cells(4).gateways(2).hosts(2);
    let scenario = crowd(16);
    let rr = shared_run(&scenario, topo, 2);
    let blocked = shared_run(&scenario, topo.placement(Placement::Blocked), 2);
    assert_eq!(
        rr.report.summary.workload.attempted,
        blocked.report.summary.workload.attempted
    );
    assert_eq!(rr.report.summary.workload.success_rate(), 1.0);
    assert_eq!(blocked.report.summary.workload.success_rate(), 1.0);
}

#[test]
fn disabled_recorder_matches_ring_summary_in_shared_worlds() {
    let topo = Topology::shared().cells(2).gateways(2).hosts(2);
    let scenario = crowd(8);
    let ring = FleetRunner::new(scenario.clone())
        .topology(topo)
        .traced(true)
        .run();
    let metrics_only = FleetRunner::new(scenario)
        .topology(topo)
        .traced(true)
        .recorder(RecorderKind::Disabled)
        .run();
    assert_eq!(ring.report.summary, metrics_only.report.summary);
    let quiet = metrics_only.trace.expect("traced");
    assert!(quiet.events.is_empty());
    assert!(quiet.metrics.counter("station.transactions") > 0);
}
