//! Property tests for the fleet engine's determinism contract (DESIGN.md
//! §2.10): for any scenario, the merged [`FleetSummary`] is bit-for-bit
//! identical whether the users run on 1, 2, or 8 shards.
//!
//! This is the load-bearing invariant behind running experiments in
//! parallel at all — if it held only for hand-picked configurations, no
//! published number could be trusted across machines.

use proptest::prelude::*;

use mcommerce::core::{Category, FleetReport, FleetRunner, MiddlewareKind, Scenario};

// The property bodies predate the FleetRunner API; this shim keeps them
// readable while exercising the replacement entry point.
fn run_on(scenario: &Scenario, threads: usize) -> FleetReport {
    FleetRunner::new(scenario.clone()).threads(threads).run().report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fleet_summary_is_shard_count_invariant(
        users in 1..10u64,
        sessions in 1..3u64,
        category in (0..8usize).prop_map(|i| Category::ALL[i]),
        middleware in (0..3usize).prop_map(|i| MiddlewareKind::ALL[i]),
        secure in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let scenario = Scenario::new("prop")
            .app(category)
            .middleware(middleware)
            .users(users)
            .sessions_per_user(sessions)
            .secure(secure)
            .seed(seed);
        let one = run_on(&scenario, 1).summary;
        let two = run_on(&scenario, 2).summary;
        let eight = run_on(&scenario, 8).summary;
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
        // Sanity: the fleet actually did work.
        prop_assert!(one.transactions() >= users);
    }

    #[test]
    fn single_user_fleet_matches_a_hand_built_system(
        seed in any::<u64>(),
        secure in any::<bool>(),
    ) {
        // The Scenario's one-user convenience `system()` and the fleet
        // path must describe the same world: running user 0 by hand
        // produces exactly the counters the 1-user fleet reports.
        use mcommerce::core::WorkloadCounters;
        let scenario = Scenario::new("solo").secure(secure).seed(seed);
        let fleet_counters = run_on(&scenario, 1)
            .summary
            .workload
            .counters;
        let mut by_hand = WorkloadCounters::default();
        scenario.run_user(0, &mut by_hand);
        prop_assert_eq!(fleet_counters, by_hand);
    }
}
