//! Integration tests spanning the whole workspace: full six-component
//! transactions across middleware × device × network matrices, secure
//! payment flows, and EC/MC parity.

use mcommerce::core::apps::{all_apps, Application, PaymentsApp, TravelApp};
use mcommerce::core::workload::{run_session, run_workload};
use mcommerce::core::{
    Category, CommerceSystem, EcSystem, FleetRunner, MiddlewareKind, Scenario, SystemSpec,
    WiredPath, WirelessConfig,
};
use mcommerce::hostsite::db::Database;
use mcommerce::hostsite::HostComputer;
use mcommerce::middleware::{IModeService, MobileRequest};
use mcommerce::station::DeviceProfile;
use mcommerce::wireless::{CellularStandard, WlanStandard};

fn host_with(apps: &[&dyn Application], seed: u64) -> HostComputer {
    let mut host = HostComputer::new(Database::new(), seed);
    for app in apps {
        app.install(&mut host);
    }
    host
}

fn wifi(distance: f64) -> WirelessConfig {
    WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m: distance,
    }
}

#[test]
fn full_matrix_of_middleware_devices_and_networks() {
    // Every combination must complete the payment workflow — the paper's
    // interoperability requirement across its own technology survey.
    let devices = [
        DeviceProfile::ipaq_h3870(),
        DeviceProfile::nokia_9290(),
        DeviceProfile::palm_i705(),
        DeviceProfile::sony_clie_nr70v(),
        DeviceProfile::toshiba_e740(),
    ];
    let networks = [
        wifi(10.0),
        wifi(90.0),
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11g,
            distance_m: 40.0,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Edge,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        },
    ];
    let mut combo = 0u64;
    for device in &devices {
        for network in &networks {
            for kind in [MiddlewareKind::Wap, MiddlewareKind::IMode] {
                combo += 1;
                let scenario = Scenario::new("matrix")
                    .app(Category::Commerce)
                    .middleware(kind)
                    .device(device.clone())
                    .wireless(*network)
                    .sessions_per_user(2)
                    .seed(1000 + combo);
                let summary = FleetRunner::new(scenario).run().report.summary.workload;
                assert_eq!(
                    summary.succeeded,
                    summary.attempted,
                    "{} × {} × {} failed",
                    kind,
                    device.name,
                    network.name()
                );
            }
        }
    }
    assert_eq!(combo, 60);
}

#[test]
fn all_eight_applications_share_one_host_database() {
    let apps = all_apps();
    let mut host = HostComputer::new(Database::new(), 5);
    for app in &apps {
        app.install(&mut host);
    }
    // Eight applications provisioned 14+ tables side by side.
    assert!(host.web.db().table_names().len() >= 12);

    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::Wap)
        .device(DeviceProfile::toshiba_e740())
        .wireless(wifi(15.0))
        .wired(WiredPath::wan())
        .seed(6)
        .build(host);
    for app in &apps {
        let summary = run_workload(&mut system, app.as_ref(), 3, 7);
        assert!(
            summary.success_rate() > 0.95,
            "{} failed: {:.0}%",
            app.category(),
            summary.success_rate() * 100.0
        );
    }
}

#[test]
fn ec_and_mc_run_the_identical_application_code() {
    // Program independence across *system* variants: the same installed
    // application serves desktop EC clients and mobile MC clients.
    let app = TravelApp;
    let mut ec = EcSystem::new(host_with(&[&app], 8), WiredPath::wan());
    let mut mc = SystemSpec::new()
        .middleware(MiddlewareKind::IMode)
        .device(DeviceProfile::nokia_9290())
        .wireless(wifi(30.0))
        .wired(WiredPath::wan())
        .seed(9)
        .build(host_with(&[&app], 8));
    let ec_summary = run_workload(&mut ec, &app, 6, 10);
    let mc_summary = run_workload(&mut mc, &app, 6, 10);
    assert_eq!(ec_summary.succeeded, ec_summary.attempted);
    assert_eq!(mc_summary.succeeded, mc_summary.attempted);
    // Mobile pays for mobility with latency and battery.
    assert!(mc_summary.latency_mean > ec_summary.latency_mean);
    assert!(mc_summary.energy_mean_j > 0.0);
    assert_eq!(ec_summary.energy_mean_j, 0.0);
}

#[test]
fn secure_payment_rejects_replay_through_the_whole_stack() {
    let mut system = Scenario::new("replay")
        .app(Category::Commerce)
        .wireless(wifi(20.0))
        .seed(12)
        .system_for_user(0);
    let buy = |nonce: &str| {
        MobileRequest::post(
            "/shop/buy",
            vec![("sku".into(), "1".into()), ("nonce".into(), nonce.into())],
        )
    };
    let first = system.execute(&buy("555"));
    assert!(first.success, "{:?}", first.failure);
    let replay = system.execute(&buy("555"));
    assert!(
        !replay.success,
        "replayed payment must be refused end to end"
    );
    let fresh = system.execute(&buy("556"));
    assert!(fresh.success);
}

#[test]
fn session_state_survives_across_the_wap_gateway() {
    // Cookies set by the host travel through the gateway, live in the
    // station's jar, and return on subsequent requests.
    let mut host = HostComputer::new(Database::new(), 13);
    host.web.route_get(
        "/counter",
        |_req: &mcommerce::hostsite::HttpRequest, ctx: &mut mcommerce::hostsite::ServerCtx<'_>| {
            let n: i64 = ctx
                .session
                .get("n")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
                + 1;
            ctx.session.insert("n".into(), n.to_string());
            mcommerce::hostsite::HttpResponse::ok(
                mcommerce::markup::html::page(
                    "Counter",
                    vec![mcommerce::markup::html::p(&format!("visit number {n}")).into()],
                )
                .to_markup(),
            )
        },
    );
    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::Wap)
        .device(DeviceProfile::sony_clie_nr70v())
        .wireless(wifi(10.0))
        .wired(WiredPath::lan())
        .seed(14)
        .build(host);
    for expected in 1..=4 {
        let report = system.execute(&MobileRequest::get("/counter"));
        assert!(report.success);
        let outcome = report.outcome.expect("successful render carries an outcome");
        assert_eq!(outcome.title, "Counter");
        assert!(
            outcome
                .page_text
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
                .contains(&format!("visit number {expected}")),
            "visit {expected}: {:?}",
            outcome.page_text
        );
    }
}

#[test]
fn workload_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let app = PaymentsApp::new();
        let mut system = SystemSpec::new()
            .middleware(MiddlewareKind::Wap)
            .device(DeviceProfile::palm_i705())
            .wireless(wifi(97.0)) // lossy enough that the RNG matters
            .wired(WiredPath::wan())
            .seed(seed)
            .build(host_with(&[&app], 15));
        let mut timings = Vec::new();
        for index in 0..6 {
            let steps = app.session(3, index);
            let reports = run_session(&mut system, &steps);
            timings.extend(reports.iter().map(|r| (r.total * 1e9) as u64));
        }
        timings
    };
    assert_eq!(run(1), run(1), "same seed, same virtual timings");
    assert_ne!(run(1), run(2), "different seed, different loss pattern");
}

#[test]
fn devices_rank_consistently_on_the_same_workload() {
    // Table 2 made executable: the 33 MHz Palm is slower end-to-end than
    // the 400 MHz Toshiba on identical content and network.
    let mut latencies = Vec::new();
    for device in [
        DeviceProfile::palm_i705(),
        DeviceProfile::ipaq_h3870(),
        DeviceProfile::toshiba_e740(),
    ] {
        let scenario = Scenario::new("rank")
            .app(Category::Travel)
            .device(device)
            .wireless(wifi(15.0))
            .wired(WiredPath::lan())
            .sessions_per_user(6)
            .seed(18);
        let summary = FleetRunner::new(scenario).run().report.summary.workload;
        assert_eq!(summary.succeeded, summary.attempted);
        latencies.push(summary.latency_mean);
    }
    assert!(latencies[0] > latencies[1], "Palm i705 slower than iPAQ");
    assert!(latencies[1] > latencies[2], "iPAQ slower than Toshiba E740");
}

#[test]
fn content_negotiation_lets_imode_pass_native_chtml_through() {
    // §7's content negotiation: the travel search page is authored in
    // cHTML when the client asks for it, so the i-mode service ships it
    // without running its filter.
    use mcommerce::middleware::Middleware;
    let app = TravelApp;
    let mut host = host_with(&[&app], 91);
    let mut imode = IModeService::new();
    let ex = imode.exchange(&mut host, &MobileRequest::get("/travel/search?from=ATL"));
    assert_eq!(
        imode.filtered_pages.get(),
        0,
        "native cHTML needs no filtering"
    );
    let doc = mcommerce::markup::parse::parse(std::str::from_utf8(&ex.content).unwrap()).unwrap();
    mcommerce::markup::chtml::validate(&doc).unwrap();
    // A page with no negotiation (the booking confirmation) still gets
    // filtered on demand.
    let _ = imode.exchange(
        &mut host,
        &MobileRequest::post(
            "/travel/book",
            vec![
                ("flight".into(), "100".into()),
                ("passenger".into(), "neg".into()),
            ],
        ),
    );
    assert_eq!(
        imode.filtered_pages.get(),
        0,
        "plain pages are already compact"
    );
}
