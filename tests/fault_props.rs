//! Property tests for the fault-injection subsystem (DESIGN.md §2.13):
//! injected storms and the retry policy must preserve the fleet
//! engine's determinism contract, and the log-linear histogram the
//! percentiles ride on must agree with an exact sampler.
//!
//! The load-bearing invariants:
//!
//! 1. A faulted fleet (storm + retry + fallback) merges to bit-identical
//!    summaries at any thread count, and across reruns — faults are part
//!    of each user's sim-time world, not wall-clock noise.
//! 2. An *empty* fault plan plus the no-retry policy is byte-identical
//!    to a fleet that never heard of faults: the subsystem is provably
//!    free when unused.
//! 3. The retry policy never lowers availability, and strictly raises it
//!    once a storm actually injects faults into the timeline.
//! 4. `obs::Histogram::percentile` tracks the exact nearest-rank value
//!    within its documented 1/32 bucket error, and lands close to the
//!    `simnet` Sampler's interpolated quantiles on dense data.

use proptest::prelude::*;

use mcommerce::core::{Category, FleetReport, FleetRunner, FleetTrace, MiddlewareKind, Scenario};
use mcommerce::faults::{FaultPlan, RetryPolicy};
use mcommerce::obs::Histogram;
use mcommerce::simnet::stats::Sampler;
use mcommerce::simnet::SimDuration;

// The property bodies predate the FleetRunner API; these shims keep them
// readable while exercising the replacement entry point.
fn run_on(scenario: &Scenario, threads: usize) -> FleetReport {
    FleetRunner::new(scenario.clone()).threads(threads).run().report
}

fn run_traced_on(scenario: &Scenario, threads: usize) -> (FleetReport, FleetTrace) {
    let run = FleetRunner::new(scenario.clone())
        .threads(threads)
        .traced(true)
        .run();
    (run.report, run.trace.expect("traced run carries a trace"))
}

const HORIZON: SimDuration = SimDuration::from_secs(30);

/// A fleet whose users' sim-time sessions overlap a fixed-seed storm.
fn stormy_scenario(users: u64, fleet_seed: u64, storm_seed: u64, intensity: f64) -> Scenario {
    Scenario::new("fault-prop")
        .app(Category::Commerce)
        .users(users)
        .sessions_per_user(4)
        .think_time(3.0)
        .seed(fleet_seed)
        .faults(FaultPlan::storm(storm_seed, HORIZON, intensity))
        .retry(RetryPolicy::standard())
        .fallback_middleware(MiddlewareKind::WapTextual)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn faulted_fleet_summary_is_thread_count_invariant(
        users in 2..6u64,
        fleet_seed in any::<u64>(),
        storm_seed in any::<u64>(),
        intensity in 0.5..2.0f64,
    ) {
        let scenario = stormy_scenario(users, fleet_seed, storm_seed, intensity);
        let one = run_on(&scenario, 1).summary;
        let two = run_on(&scenario, 2).summary;
        let four = run_on(&scenario, 4).summary;
        let eight = run_on(&scenario, 8).summary;
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &eight);
        // Rerun at the same thread count: no hidden wall-clock state.
        let again = run_on(&scenario, 4).summary;
        prop_assert_eq!(&one, &again);
    }

    #[test]
    fn faulted_fleet_trace_is_thread_count_invariant(
        fleet_seed in any::<u64>(),
        storm_seed in any::<u64>(),
    ) {
        let scenario = stormy_scenario(3, fleet_seed, storm_seed, 1.5);
        let (report_1, trace_1) = run_traced_on(&scenario, 1);
        let (report_4, trace_4) = run_traced_on(&scenario, 4);
        prop_assert_eq!(&report_1.summary, &report_4.summary);
        // The exported artefacts must be byte-identical, not just
        // semantically equal — CI diffs them.
        prop_assert_eq!(trace_1.to_jsonl(), trace_4.to_jsonl());
    }

    #[test]
    fn empty_fault_plan_and_no_retry_are_free(
        users in 1..6u64,
        sessions in 1..3u64,
        seed in any::<u64>(),
    ) {
        let plain = Scenario::new("fault-prop")
            .users(users)
            .sessions_per_user(sessions)
            .seed(seed);
        let armed = plain
            .clone()
            .faults(FaultPlan::none())
            .retry(RetryPolicy::none());
        let baseline = run_on(&plain, 2).summary;
        let with_machinery = run_on(&armed, 4).summary;
        prop_assert_eq!(baseline, with_machinery);
    }

    #[test]
    fn histogram_percentile_tracks_nearest_rank_within_bucket_error(
        mut values in proptest::collection::vec(1u64..5_000_000_000, 1..200),
        p in 1.0..100.0f64,
    ) {
        let mut hist = Histogram::default();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
        let exact = values[rank - 1];
        let reported = hist.percentile(p);
        prop_assert!(reported <= exact, "{reported} > exact {exact}");
        prop_assert!(
            reported >= exact.saturating_sub(exact / 32 + 1),
            "{reported} more than one sub-bucket below exact {exact}"
        );
    }
}

/// With a fixed storm, the hardened fleet must strictly beat the bare
/// one — and never do worse at any intensity, including zero.
#[test]
fn retry_policy_never_lowers_and_eventually_raises_availability() {
    for &intensity in &[0.0, 0.75, 1.5] {
        let storm = FaultPlan::storm(99, HORIZON, intensity);
        let bare = Scenario::new("fault-prop")
            .app(Category::Commerce)
            .users(6)
            .sessions_per_user(6)
            .think_time(3.0)
            .seed(17)
            .faults(storm.clone());
        let hardened = bare
            .clone()
            .retry(RetryPolicy::standard())
            .fallback_middleware(MiddlewareKind::WapTextual);
        let bare_rate = run_on(&bare, 2).summary.workload.success_rate();
        let hard_rate = run_on(&hardened, 2).summary.workload.success_rate();
        assert!(
            hard_rate >= bare_rate,
            "intensity {intensity}: hardened {hard_rate} < bare {bare_rate}"
        );
        if intensity > 1.0 {
            assert!(
                hard_rate > bare_rate,
                "intensity {intensity}: retry bought nothing ({hard_rate} vs {bare_rate})"
            );
        }
    }
}

/// On dense data the bucketed histogram and the exact interpolating
/// sampler must tell the same story, within the histogram's ~3%
/// quantisation (plus the interpolation gap at small strides).
#[test]
fn histogram_and_sampler_quantiles_agree_on_dense_data() {
    let sampler = Sampler::new();
    let mut hist = Histogram::default();
    for v in 1_000u64..=2_000 {
        sampler.record(v as f64);
        hist.record(v);
    }
    let summary = sampler.summary();
    for (p, exact) in [(50.0, summary.p50), (90.0, summary.p90), (99.0, summary.p99)] {
        let bucketed = hist.percentile(p) as f64;
        let rel = (exact - bucketed).abs() / exact;
        assert!(
            rel < 0.04,
            "p{p}: histogram {bucketed} vs sampler {exact} ({:.1}% apart)",
            rel * 100.0
        );
    }
}
