//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use mcommerce::hostsite::db::{Database, DbError, Value};
use mcommerce::markup::transcode::{html_to_chtml, html_to_wml, WmlOptions};
use mcommerce::markup::{chtml, html, parse, wbxml, wml, Element, Node};
use mcommerce::security::{Mac, PaymentGateway, PaymentRequest};

// ---------------------------------------------------------------------
// Markup strategies
// ---------------------------------------------------------------------

/// Text without markup-significant characters (the parser decodes
/// entities, so round-trips normalise them; plain text is the invariant).
fn text_strategy() -> impl Strategy<Value = String> {
    // Pre-collapsed text: the parser collapses whitespace runs (HTML
    // semantics), so cosmetic spacing is not a round-trip invariant.
    "[a-zA-Z0-9]([a-zA-Z0-9 ,.!?-]{0,38}[a-zA-Z0-9,.!?-])?"
        .prop_map(|s: String| s.split_whitespace().collect::<Vec<_>>().join(" "))
}

/// A small HTML body tree of bounded depth.
fn html_body_strategy() -> impl Strategy<Value = Element> {
    let leaf = prop_oneof![
        text_strategy().prop_map(|t| Element::new("p").with_text(t)),
        (text_strategy(), "[a-z]{1,10}").prop_map(|(t, href)| {
            Element::new("p").with_child(
                Element::new("a")
                    .with_attr("href", format!("/{href}"))
                    .with_text(t),
            )
        }),
        text_strategy().prop_map(|t| Element::new("h2").with_text(t)),
        proptest::collection::vec(text_strategy(), 1..4).prop_map(html::ul),
    ];
    proptest::collection::vec(leaf, 1..8).prop_map(|children| {
        let mut body = Element::new("body");
        for c in children {
            body.push_child(c);
        }
        Element::new("html")
            .with_child(Element::new("head").with_child(Element::new("title").with_text("T")))
            .with_child(body)
    })
}

fn normalise(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn markup_serialise_parse_round_trips(doc in html_body_strategy()) {
        let text = doc.to_markup();
        let reparsed = parse::parse(&text).unwrap();
        prop_assert_eq!(doc, reparsed);
    }

    #[test]
    fn wml_translation_is_always_valid_and_preserves_text(doc in html_body_strategy()) {
        let deck = html_to_wml(&doc, &WmlOptions::default());
        wml::validate(&deck).unwrap();
        // Every individual text run in the body survives translation
        // (title is carried as a card attribute, so it is excluded).
        let deck_text = normalise(&deck.text_content());
        let mut stack = vec![doc.find("body").unwrap()];
        while let Some(e) = stack.pop() {
            for child in e.children() {
                match child {
                    Node::Text(t) => {
                        let t = normalise(t);
                        prop_assert!(
                            deck_text.contains(&t),
                            "lost {:?} from {:?}", t, deck_text
                        );
                    }
                    Node::Element(inner) => stack.push(inner),
                }
            }
        }
    }

    #[test]
    fn chtml_simplification_is_always_valid(doc in html_body_strategy()) {
        let compact = html_to_chtml(&doc);
        chtml::validate(&compact).unwrap();
        let before = normalise(&doc.text_content());
        let after = normalise(&compact.text_content());
        prop_assert_eq!(before, after, "filtering must not drop text");
    }

    #[test]
    fn wbxml_round_trips_every_translated_deck(doc in html_body_strategy()) {
        let deck = html_to_wml(&doc, &WmlOptions::default());
        let binary = wbxml::encode(&deck);
        let back = wbxml::decode(&binary).unwrap();
        prop_assert_eq!(deck, back);
    }

    #[test]
    fn pagination_never_loses_paragraphs(
        paragraphs in proptest::collection::vec(text_strategy(), 1..40),
        budget in 300usize..2000,
    ) {
        let body: Vec<Node> = paragraphs.iter().map(|t| html::p(t).into()).collect();
        let doc = html::page("Long", body);
        let deck = html_to_wml(&doc, &WmlOptions { max_card_bytes: budget, ..Default::default() });
        wml::validate(&deck).unwrap();
        let text = normalise(&deck.text_content());
        for p in &paragraphs {
            prop_assert!(text.contains(&normalise(p)));
        }
    }
}

// ---------------------------------------------------------------------
// Database invariants
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DbOp {
    Insert(i64, String),
    Update(i64, String),
    Delete(i64),
}

fn db_ops_strategy() -> impl Strategy<Value = Vec<DbOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0i64..30, "[a-z]{1,12}").prop_map(|(k, v)| DbOp::Insert(k, v)),
            (0i64..30, "[a-z]{1,12}").prop_map(|(k, v)| DbOp::Update(k, v)),
            (0i64..30).prop_map(DbOp::Delete),
        ],
        0..40,
    )
}

fn apply(db: &mut Database, op: &DbOp) -> Result<(), DbError> {
    match op {
        DbOp::Insert(k, v) => db.insert("t", vec![(*k).into(), v.as_str().into()]),
        DbOp::Update(k, v) => db.update("t", vec![(*k).into(), v.as_str().into()]),
        DbOp::Delete(k) => db.delete("t", &(*k).into()),
    }
}

fn snapshot(db: &Database) -> Vec<(String, String)> {
    db.select("t", |_| true)
        .unwrap()
        .into_iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rolled_back_transactions_leave_no_trace(ops in db_ops_strategy(), tx_ops in db_ops_strategy()) {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &["v"]).unwrap();
        for op in &ops {
            let _ = apply(&mut db, op);
        }
        let before = snapshot(&db);
        let journal_before = db.journal().len();

        // A transaction that does arbitrary work and then fails.
        let _ = db.transaction(|tx| -> Result<(), DbError> {
            for op in &tx_ops {
                let _ = apply(tx, op);
            }
            Err(DbError::NotFound)
        });

        prop_assert_eq!(snapshot(&db), before.clone());
        prop_assert_eq!(db.journal().len(), journal_before);
        // Index stays consistent with the table after rollback.
        for (k, v) in &before {
            let rows = db.select_eq("t", "v", &v.as_str().into()).unwrap();
            prop_assert!(rows.iter().any(|r| &r[0].to_string() == k));
        }
    }

    #[test]
    fn journal_recovery_always_reproduces_live_state(ops in db_ops_strategy()) {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &["v"]).unwrap();
        for op in &ops {
            let _ = apply(&mut db, op);
        }
        let recovered = Database::recover(db.journal()).unwrap();
        prop_assert_eq!(snapshot(&recovered), snapshot(&db));
        prop_assert_eq!(recovered.footprint(), db.footprint());
    }

    #[test]
    fn footprint_is_exactly_the_sum_of_live_rows(ops in db_ops_strategy()) {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &[]).unwrap();
        for op in &ops {
            let _ = apply(&mut db, op);
        }
        let expected: usize = db
            .select("t", |_| true)
            .unwrap()
            .iter()
            .map(|r| r.iter().map(Value::footprint).sum::<usize>())
            .sum();
        prop_assert_eq!(db.footprint(), expected);
    }
}

// ---------------------------------------------------------------------
// Security invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn macs_reject_any_bitflip(msg in proptest::collection::vec(any::<u8>(), 1..128), byte in 0usize..128, bit in 0u8..8) {
        let mac = Mac::new(b"property-key");
        let tag = mac.compute(&msg);
        let mut tampered = msg.clone();
        let idx = byte % tampered.len();
        tampered[idx] ^= 1 << bit;
        if tampered != msg {
            prop_assert!(!mac.verify(&tampered, &tag));
        }
        prop_assert!(mac.verify(&msg, &tag));
    }

    #[test]
    fn payment_totals_balance_exactly(amounts in proptest::collection::vec(1u64..5_000, 1..20)) {
        let client = Mac::new(b"c");
        let mut gw = PaymentGateway::new(client, Mac::new(b"g"));
        let opening = 1_000_000u64;
        gw.open_account("acct", opening);
        let mut settled = 0u64;
        for (i, &amount) in amounts.iter().enumerate() {
            let req = PaymentRequest::signed(&client, i as u64, amount, "acct", i as u64 + 1);
            if gw.authorize(&req).is_ok() {
                let receipt = gw.capture(i as u64).unwrap();
                prop_assert!(receipt.verify(gw.receipt_mac()));
                settled += amount;
            }
        }
        prop_assert_eq!(gw.balance("acct"), Some(opening - settled));
    }

    #[test]
    fn wtls_records_round_trip_and_reject_truncation(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut in 1usize..16,
    ) {
        let (mut client, mut s2) = mcommerce::security::wtls::handshake(123, 456);
        let record = client.seal(&payload);
        // Truncated copies never verify...
        if record.len() > cut {
            let short = &record[..record.len() - cut];
            prop_assert!(s2.open(short).is_err());
        }
        // ...while the intact record opens to the exact payload.
        prop_assert_eq!(s2.open(&record).unwrap(), payload);
    }
}

// ---------------------------------------------------------------------
// Transport invariant: exact stream delivery under arbitrary loss
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tcp_delivers_the_exact_stream_under_random_loss(
        len in 1usize..60_000,
        loss_pct in 0u32..12,
        seed in 0u64..1_000,
    ) {
        use mcommerce::netstack::node::Network;
        use mcommerce::netstack::{Ip, Subnet};
        use mcommerce::simnet::link::{LinkParams, LossModel};
        use mcommerce::simnet::rng::rng_for;
        use mcommerce::simnet::trace::Trace;
        use mcommerce::simnet::{SimDuration, Simulator};
        use mcommerce::transport::{SocketAddr, Tcp};
        use std::cell::RefCell;
        use std::rc::Rc;

        const A: Ip = Ip::new(10, 0, 0, 1);
        const B: Ip = Ip::new(10, 0, 0, 2);

        let mut sim = Simulator::new();
        let mut net = Network::new();
        let a = net.add_node("a", A);
        let b = net.add_node("b", B);
        let mut params = LinkParams::reliable(5_000_000, SimDuration::from_millis(8));
        params.queue_capacity = 4096;
        if loss_pct > 0 {
            params.loss = LossModel::Bernoulli { p: loss_pct as f64 / 100.0 };
        }
        let (ab, ba) = Network::connect(&a, A, &b, B, params);
        ab.set_rng(rng_for(seed, "prop.ab"));
        ba.set_rng(rng_for(seed, "prop.ba"));
        a.add_route(Subnet::DEFAULT, B);
        b.add_route(Subnet::DEFAULT, A);

        let tcp_a = Tcp::install(a, Trace::bounded(16));
        let tcp_b = Tcp::install(b, Trace::bounded(16));
        let got: Rc<RefCell<Vec<u8>>> = Rc::default();
        {
            let got = Rc::clone(&got);
            tcp_b.listen(80, move |_sim, conn| {
                let got = Rc::clone(&got);
                conn.on_data(move |_sim, data| got.borrow_mut().extend_from_slice(&data));
            });
        }
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let conn = tcp_a.connect(&mut sim, A, SocketAddr::new(B, 80));
        conn.send(&mut sim, &payload);
        sim.run();
        prop_assert_eq!(&*got.borrow(), &payload, "stream corrupted (loss {}%)", loss_pct);
    }
}
