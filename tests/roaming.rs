//! Integration: Mobile IP keeps a live TCP connection working across a
//! network move — §5.2's transparency claim, asserted.

use std::cell::RefCell;
use std::rc::Rc;

use mcommerce::netstack::mobileip::{ForeignAgent, HomeAgent, MipState, MobileIpClient};
use mcommerce::netstack::node::Network;
use mcommerce::netstack::{Ip, Subnet};
use mcommerce::simnet::link::LinkParams;
use mcommerce::simnet::trace::Trace;
use mcommerce::simnet::{SimDuration, SimTime, Simulator};
use mcommerce::transport::{SocketAddr, Tcp};

const HOST: Ip = Ip::new(20, 0, 0, 9);
const ROUTER: Ip = Ip::new(30, 0, 0, 1);
const HA: Ip = Ip::new(10, 0, 0, 1);
const FA: Ip = Ip::new(11, 0, 0, 1);
const MOBILE: Ip = Ip::new(10, 0, 0, 5);

#[test]
fn tcp_stream_survives_a_mobile_ip_move() {
    let mut sim = Simulator::new();
    let trace = Trace::bounded(4096);

    let mut net = Network::new();
    let host = net.add_node("host", HOST);
    let router = net.add_node("router", ROUTER);
    let ha_node = net.add_node("ha", HA);
    let fa_node = net.add_node("fa", FA);
    let mobile = net.add_node("mobile", MOBILE);

    let wired = LinkParams::wired_wan();
    Network::connect(&host, HOST, &router, ROUTER, wired.clone());
    Network::connect(&router, ROUTER, &ha_node, HA, wired.clone());
    Network::connect(&router, ROUTER, &fa_node, FA, wired);
    host.add_route(Subnet::DEFAULT, ROUTER);
    router.add_route("10.0.0.0/8".parse().unwrap(), HA);
    router.add_route("11.0.0.0/8".parse().unwrap(), FA);
    ha_node.add_route(Subnet::DEFAULT, ROUTER);
    fa_node.add_route(Subnet::DEFAULT, ROUTER);

    let ha = HomeAgent::install(Rc::clone(&ha_node), HA, trace.clone());
    let fa = ForeignAgent::install(Rc::clone(&fa_node), FA, HA, trace.clone());
    let mip = MobileIpClient::install(Rc::clone(&mobile), MOBILE, HA, trace.clone());

    let wireless = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
    Network::connect(&ha_node, HA, &mobile, MOBILE, wireless);
    mobile.add_route(Subnet::DEFAULT, HA);

    let tcp_host = Tcp::install(Rc::clone(&host), trace.clone());
    let tcp_mobile = Tcp::install(Rc::clone(&mobile), trace.clone());
    let received: Rc<RefCell<Vec<u8>>> = Rc::default();
    {
        let received = Rc::clone(&received);
        tcp_mobile.listen(4000, move |_sim, conn| {
            let received = Rc::clone(&received);
            conn.on_data(move |_sim, data| received.borrow_mut().extend_from_slice(&data));
        });
    }

    let statement: Vec<u8> = (0..65_536u32).map(|i| (i % 251) as u8).collect();
    let conn = tcp_host.connect(&mut sim, HOST, SocketAddr::new(MOBILE, 4000));
    conn.send(&mut sim, &statement);

    // Mid-transfer: leave home, attach at the foreign agent, register.
    {
        let mobile = Rc::clone(&mobile);
        let ha_node = Rc::clone(&ha_node);
        let fa_node = Rc::clone(&fa_node);
        let mip = Rc::clone(&mip);
        sim.schedule_at(SimTime::from_millis(120), move |sim| {
            mobile.disconnect(HA);
            ha_node.disconnect(MOBILE);
            mobile.remove_route(Subnet::DEFAULT);
            let wireless = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
            Network::connect(&fa_node, FA, &mobile, MOBILE, wireless);
            mobile.add_route(Subnet::DEFAULT, FA);
            mip.register_via(sim, FA);
        });
    }
    {
        let conn = Rc::clone(&conn);
        mip.on_registered(move |sim| conn.handoff_complete(sim));
    }

    sim.run_until(SimTime::from_secs(60));

    assert_eq!(
        received.borrow().as_slice(),
        statement.as_slice(),
        "stream corrupted by the move"
    );
    assert_eq!(mip.state(), MipState::Registered);
    assert_eq!(ha.binding(MOBILE), Some(FA), "HA holds the care-of binding");
    assert!(ha.tunneled.get() > 0, "post-move segments were tunneled");
    assert!(
        fa.decapsulated.get() > 0,
        "FA delivered decapsulated segments"
    );
    assert!(trace.contains("mip", "HA bound"));
    // The sender recovered with fast retransmit, not only RTOs.
    assert!(conn.stats.retransmits.get() > 0);
}
