//! The assembled host computer.
//!
//! §7's three major parts — web server, database server, application
//! programs — wired together, plus a CPU cost model so the end-to-end
//! system can charge processing latency per request: a fixed dispatch
//! cost, a per-database-operation cost and a per-body-byte generation
//! cost. These shares are what make the Figure 1/Figure 2 per-component
//! latency breakdowns meaningful.

use simnet::SimDuration;

use crate::db::Database;
use crate::http::{HttpRequest, HttpResponse};
use crate::server::WebServer;

/// CPU cost model for request processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Fixed cost per request (parsing, dispatch, logging).
    pub per_request: SimDuration,
    /// Cost per kilobyte of response body generated.
    pub per_body_kb: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        // A turn-of-the-century server: ~2 ms dispatch, ~0.5 ms per KB of
        // dynamic page generation.
        CpuModel {
            per_request: SimDuration::from_micros(2_000),
            per_body_kb: SimDuration::from_micros(500),
        }
    }
}

impl CpuModel {
    /// Processing time for a request that produced `body_bytes` of output.
    pub fn cost(&self, body_bytes: usize) -> SimDuration {
        self.per_request + self.per_body_kb * (body_bytes as u32).div_ceil(1024)
    }
}

/// A host computer: web server + database server + application programs,
/// with a processing-latency model.
#[derive(Debug)]
pub struct HostComputer {
    /// The web server (which owns the database server).
    pub web: WebServer,
    /// The CPU model used to price each request.
    pub cpu: CpuModel,
    /// WAL fsync time charged to requests since the last
    /// [`HostComputer::take_commit_ns`] — zero under the default
    /// (free-durability) policy.
    commit_ns: u64,
}

impl HostComputer {
    /// Builds a host around a database, with default CPU costs.
    pub fn new(db: Database, seed: u64) -> Self {
        HostComputer {
            web: WebServer::new(db, seed),
            cpu: CpuModel::default(),
            commit_ns: 0,
        }
    }

    /// Handles a request, returning the response and the simulated CPU
    /// time it took the host to produce it. A page-cache hit skips the
    /// application program, so it is charged only the fixed dispatch
    /// cost, not per-body generation. WAL fsyncs the request triggered
    /// are charged on top — durability is priced at the request that
    /// paid for it.
    pub fn process(&mut self, req: HttpRequest) -> (HttpResponse, SimDuration) {
        let (resp, from_cache) = self.web.handle_cached(req);
        let mut cost = if from_cache {
            self.cpu.per_request
        } else {
            self.cpu.cost(resp.body.len())
        };
        let wal_ns = self.web.db_mut().drain_commit_cost_ns();
        if wal_ns > 0 {
            cost += SimDuration::from_nanos(wal_ns);
            self.commit_ns += wal_ns;
            obs::metrics::add("host.db.commit_ns", wal_ns);
        }
        // Full-text searches the request ran are priced like WAL fsyncs:
        // drained from the engine and charged to the request.
        let search_ns = self.web.db_mut().drain_search_cost_ns();
        if search_ns > 0 {
            cost += SimDuration::from_nanos(search_ns);
            obs::metrics::add("host.db.search_ns", search_ns);
        }
        obs::metrics::incr("host.requests");
        obs::metrics::observe("host.cpu_ns", cost.as_nanos());
        (resp, cost)
    }

    /// Returns and resets the WAL fsync share of recent request costs,
    /// letting the system split it out of the host-CPU contention lane.
    pub fn take_commit_ns(&mut self) -> u64 {
        std::mem::take(&mut self.commit_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;

    #[test]
    fn processing_cost_scales_with_body() {
        let mut host = HostComputer::new(Database::new(), 1);
        host.web.static_page("/small", "x");
        host.web.static_page("/big", "y".repeat(64 * 1024));
        let (r1, c1) = host.process(HttpRequest::get("/small"));
        let (r2, c2) = host.process(HttpRequest::get("/big"));
        assert_eq!(r1.status, Status::Ok);
        assert_eq!(r2.status, Status::Ok);
        assert!(c2 > c1);
        assert_eq!(c1, SimDuration::from_micros(2_500)); // 2 ms + 1 KB tier
        assert_eq!(c2, SimDuration::from_micros(2_000 + 64 * 500));
    }

    #[test]
    fn errors_still_cost_dispatch_time() {
        let mut host = HostComputer::new(Database::new(), 1);
        let (resp, cost) = host.process(HttpRequest::get("/missing"));
        assert_eq!(resp.status, Status::NotFound);
        assert!(cost >= CpuModel::default().per_request);
    }
}
