//! The database server: an embedded storage engine.
//!
//! §7: "Other than the server-side database servers, a growing trend is to
//! provide a mobile database or an embedded database … Embedded databases
//! have very small footprints, and must be able to run without the
//! services of a database administrator."
//!
//! This engine serves both roles: unconstrained as the host computer's
//! database server, or capped via [`Database::with_memory_limit`] as the
//! small-footprint embedded variant. It provides typed tables, a primary
//! key, optional secondary indexes, ACID transactions with undo-log
//! rollback, and a write-ahead journal from which a fresh instance can be
//! recovered after a crash.
//!
//! Rows are stored and returned as [`Arc<Row>`], so reads hand out shared
//! handles instead of deep copies. An optional query cache (see
//! [`Database::set_query_cache`]) memoizes [`Database::select_eq`] result
//! sets per table and is invalidated transactionally: any `insert`,
//! `update`, or `delete` against a table drops that table's cached
//! queries — and only that table's.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash as _, Hasher as _};
use std::sync::Arc;

use crate::intern::{probe_hasher, KeyInterner};

/// A typed cell value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// 64-bit float (totally ordered by its bits being non-NaN; NaN is
    /// rejected at the API boundary).
    Float(f64),
}

impl Value {
    /// The value's type name, for error messages and schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Bool(_) => "bool",
            Value::Float(_) => "float",
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(t) => 24 + t.len(),
        }
    }

    fn ord_key(&self) -> OrdKey {
        match self {
            Value::Int(i) => OrdKey::Int(*i),
            Value::Text(t) => OrdKey::Text(t.clone()),
            Value::Bool(b) => OrdKey::Int(i64::from(*b)),
            Value::Float(f) => OrdKey::Float(float_key_bits(*f)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

/// Monotone bit mapping for float keys: negatives flip all bits,
/// positives flip the sign bit, so u64 order equals float order.
/// (-0.0 is normalised to 0.0 first.)
fn float_key_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Totally ordered key derived from a [`Value`] for index storage.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum OrdKey {
    Int(i64),
    Text(String),
    Float(u64),
}

impl OrdKey {
    /// True when `value.ord_key()` would equal `self` — compared without
    /// building the key (no `Text` clone).
    fn matches_value(&self, value: &Value) -> bool {
        match (self, value) {
            (OrdKey::Int(a), Value::Int(b)) => a == b,
            (OrdKey::Int(a), Value::Bool(b)) => *a == i64::from(*b),
            (OrdKey::Text(a), Value::Text(b)) => a == b,
            (OrdKey::Float(a), Value::Float(b)) => *a == float_key_bits(*b),
            _ => false,
        }
    }
}

/// A row: one value per column, in schema order.
pub type Row = Vec<Value>;

/// Errors produced by the database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The named table does not exist.
    NoSuchTable(String),
    /// The named column does not exist on the table.
    NoSuchColumn {
        /// The table the lookup targeted.
        table: String,
        /// The column that does not exist on it.
        column: String,
    },
    /// A row's arity or a value's type does not match the schema.
    SchemaMismatch(String),
    /// Primary-key uniqueness violated.
    DuplicateKey(String),
    /// No row with the given primary key.
    NotFound,
    /// The memory cap would be exceeded.
    OutOfMemory {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// A table with that name already exists.
    TableExists(String),
    /// NaN floats cannot be stored (they have no total order).
    NanRejected,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} on table {table:?}")
            }
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            DbError::NotFound => write!(f, "row not found"),
            DbError::OutOfMemory { limit } => write!(f, "memory limit of {limit} bytes exceeded"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NanRejected => write!(f, "NaN values cannot be stored"),
        }
    }
}

impl std::error::Error for DbError {}

/// One durable operation, as recorded in the write-ahead journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// Table creation.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names; column 0 is the primary key.
        columns: Vec<String>,
        /// Secondary index columns.
        indexes: Vec<String>,
    },
    /// Row insertion.
    Insert {
        /// Table name.
        table: String,
        /// The inserted row.
        row: Row,
    },
    /// Row update (full-row image).
    Update {
        /// Table name.
        table: String,
        /// The new row image.
        row: Row,
    },
    /// Row deletion by primary key.
    Delete {
        /// Table name.
        table: String,
        /// Primary key of the removed row.
        key: Value,
    },
}

#[derive(Debug, Clone)]
struct Table {
    columns: Vec<String>,
    rows: BTreeMap<OrdKey, Arc<Row>>,
    /// column name → (value key → primary keys)
    indexes: HashMap<String, BTreeMap<OrdKey, Vec<OrdKey>>>,
}

impl Table {
    fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    fn index_insert(&mut self, row: &Row) {
        let pk = row[0].ord_key();
        // Split-borrow the schema next to the mutable index maps so index
        // maintenance never has to clone the column list per write.
        let Table {
            columns, indexes, ..
        } = self;
        for (col, index) in indexes.iter_mut() {
            let ci = columns
                .iter()
                .position(|c| c == col)
                .expect("index column exists");
            index.entry(row[ci].ord_key()).or_default().push(pk.clone());
        }
    }

    fn index_remove(&mut self, row: &Row) {
        let pk = row[0].ord_key();
        let Table {
            columns, indexes, ..
        } = self;
        for (col, index) in indexes.iter_mut() {
            let ci = columns
                .iter()
                .position(|c| c == col)
                .expect("index column exists");
            let key = row[ci].ord_key();
            if let Some(pks) = index.get_mut(&key) {
                pks.retain(|p| *p != pk);
                if pks.is_empty() {
                    index.remove(&key);
                }
            }
        }
    }
}

/// Inverse operations for transaction rollback.
#[derive(Debug)]
enum Undo {
    RemoveRow { table: String, key: OrdKey },
    RestoreRow { table: String, row: Arc<Row> },
    DropTable { name: String },
}

/// A distinct `select_eq` query shape, interned once.
#[derive(Debug, Clone)]
struct QueryShape {
    table: String,
    column: String,
    key: OrdKey,
}

/// Memoized `select_eq` result sets over interned query ids.
///
/// The old layout keyed a nested map by `(column.to_owned(),
/// value.ord_key())` — two allocations per lookup before a single hash
/// probe could run. Queries are drawn from a small set of distinct
/// shapes, so each shape is interned to a dense `u64` id (hashing the
/// *borrowed* table/column/value, building the owned shape only on
/// first sight) and results live in one flat id-keyed map.
/// Invalidation stays table-scoped through `by_table`, the ids ever
/// minted under each table; ids survive invalidation, so re-memoizing
/// a shape after a write is alloc-free too.
#[derive(Debug, Default)]
struct QueryCache {
    ids: KeyInterner<QueryShape>,
    results: HashMap<u64, Vec<Arc<Row>>>,
    by_table: HashMap<String, Vec<u64>>,
}

impl QueryCache {
    /// Interns the shape `(table, column, value)` and returns its id.
    fn intern(&mut self, table: &str, column: &str, value: &Value) -> u64 {
        let mut h = probe_hasher();
        table.hash(&mut h);
        column.hash(&mut h);
        // Mirror `Value::ord_key`'s normalisation (Bool → Int, floats →
        // monotone bits) so e.g. `Bool(true)` and `Int(1)` probes agree
        // with `OrdKey::matches_value`.
        match value {
            Value::Int(i) => (0u8, i).hash(&mut h),
            Value::Bool(b) => (0u8, i64::from(*b)).hash(&mut h),
            Value::Text(t) => (1u8, t.as_str()).hash(&mut h),
            Value::Float(f) => (2u8, float_key_bits(*f)).hash(&mut h),
        }
        let before = self.ids.len();
        let id = self.ids.intern_with(
            h.finish(),
            |s| s.table == table && s.column == column && s.key.matches_value(value),
            || QueryShape {
                table: table.to_owned(),
                column: column.to_owned(),
                key: value.ord_key(),
            },
        );
        if self.ids.len() > before {
            self.by_table.entry(table.to_owned()).or_default().push(id);
        }
        id
    }

    /// Drops memoized results for every shape under `table`; returns
    /// whether anything was actually cached.
    fn invalidate_table(&mut self, table: &str) -> bool {
        let mut any = false;
        if let Some(ids) = self.by_table.get(table) {
            for id in ids {
                any |= self.results.remove(id).is_some();
            }
        }
        any
    }

    /// Drops every memoized result (ids survive).
    fn clear(&mut self) {
        self.results.clear();
    }
}

/// The embedded database engine.
///
/// ```
/// use hostsite::db::{Database, Value};
///
/// let mut db = Database::new();
/// db.create_table("products", &["sku", "name", "price"], &["name"])?;
/// db.insert("products", vec![1.into(), "widget".into(), Value::Float(4.99)])?;
/// let row = db.get("products", &1.into())?.unwrap();
/// assert_eq!(row[1], Value::Text("widget".into()));
/// # Ok::<(), hostsite::db::DbError>(())
/// ```
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    journal: Vec<JournalEntry>,
    memory_limit: Option<usize>,
    footprint: usize,
    tx_depth: u32,
    undo: Vec<Undo>,
    tx_journal: Vec<JournalEntry>,
    /// Memoized `select_eq` result sets; interior mutability because the
    /// read path takes `&self`. Off by default so uncached behaviour is
    /// untouched.
    query_cache: RefCell<QueryCache>,
    query_cache_enabled: bool,
}

impl Database {
    /// Creates an unconstrained (server-side) database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an embedded database capped at `limit` bytes of row data —
    /// the small-footprint configuration for handheld devices (§7).
    pub fn with_memory_limit(limit: usize) -> Self {
        Database {
            memory_limit: Some(limit),
            ..Self::default()
        }
    }

    /// Approximate bytes of row data currently stored.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// The write-ahead journal accumulated so far.
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// Enables or disables the `select_eq` query cache. Disabling also
    /// flushes it. The cache changes no observable query results — writes
    /// invalidate the touched table's entries before they land in the
    /// journal — so flipping this knob never changes simulation numbers.
    pub fn set_query_cache(&mut self, enabled: bool) {
        self.query_cache_enabled = enabled;
        if !enabled {
            self.query_cache.borrow_mut().clear();
        }
    }

    /// True when the query cache is on.
    pub fn query_cache_enabled(&self) -> bool {
        self.query_cache_enabled
    }

    /// Drops every cached query result (all tables).
    pub fn flush_query_cache(&mut self) {
        self.query_cache.borrow_mut().clear();
    }

    /// Drops cached query results for one table — the transactional
    /// invalidation hook called by every successful write.
    fn invalidate_table(&self, table_name: &str) {
        if !self.query_cache_enabled {
            return;
        }
        if self.query_cache.borrow_mut().invalidate_table(table_name) {
            obs::metrics::incr("host.db_cache.invalidations");
        }
    }

    /// Rebuilds a database by replaying a journal — crash recovery.
    ///
    /// # Errors
    ///
    /// Propagates any error the replayed operations raise (a corrupt
    /// journal).
    pub fn recover(journal: &[JournalEntry]) -> Result<Database, DbError> {
        let mut db = Database::new();
        for entry in journal {
            match entry {
                JournalEntry::CreateTable {
                    name,
                    columns,
                    indexes,
                } => {
                    let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                    let idx: Vec<&str> = indexes.iter().map(String::as_str).collect();
                    db.create_table(name, &cols, &idx)?;
                }
                JournalEntry::Insert { table, row } => {
                    db.insert(table, row.clone())?;
                }
                JournalEntry::Update { table, row } => {
                    db.update(table, row.clone())?;
                }
                JournalEntry::Delete { table, key } => {
                    db.delete(table, key)?;
                }
            }
        }
        Ok(db)
    }

    /// Creates a table. Column 0 is the primary key; `indexes` lists
    /// columns to maintain secondary indexes on.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on duplicate name, [`DbError::SchemaMismatch`]
    /// on an empty column list, [`DbError::NoSuchColumn`] for unknown index
    /// columns.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[&str],
        indexes: &[&str],
    ) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        if columns.is_empty() {
            return Err(DbError::SchemaMismatch(
                "a table needs at least one column".into(),
            ));
        }
        for idx in indexes {
            if !columns.contains(idx) {
                return Err(DbError::NoSuchColumn {
                    table: name.to_owned(),
                    column: (*idx).to_owned(),
                });
            }
        }
        self.tables.insert(
            name.to_owned(),
            Table {
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                rows: BTreeMap::new(),
                indexes: indexes
                    .iter()
                    .map(|s| ((*s).to_owned(), BTreeMap::new()))
                    .collect(),
            },
        );
        self.record(JournalEntry::CreateTable {
            name: name.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            indexes: indexes.iter().map(|s| (*s).to_owned()).collect(),
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::DropTable {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Lists table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of rows in `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn len(&self, table: &str) -> Result<usize, DbError> {
        Ok(self.table(table)?.rows.len())
    }

    /// True when `table` has no rows.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn is_empty(&self, table: &str) -> Result<bool, DbError> {
        Ok(self.len(table)? == 0)
    }

    fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    fn validate_row(table: &Table, table_name: &str, row: &Row) -> Result<(), DbError> {
        if row.len() != table.columns.len() {
            return Err(DbError::SchemaMismatch(format!(
                "table {table_name:?} has {} columns, row has {}",
                table.columns.len(),
                row.len()
            )));
        }
        for v in row {
            if let Value::Float(f) = v {
                if f.is_nan() {
                    return Err(DbError::NanRejected);
                }
            }
        }
        Ok(())
    }

    fn charge(&mut self, bytes: usize) -> Result<(), DbError> {
        if let Some(limit) = self.memory_limit {
            if self.footprint + bytes > limit {
                return Err(DbError::OutOfMemory { limit });
            }
        }
        self.footprint += bytes;
        Ok(())
    }

    fn row_footprint(row: &Row) -> usize {
        row.iter().map(Value::footprint).sum()
    }

    fn record(&mut self, entry: JournalEntry) {
        if self.tx_depth > 0 {
            self.tx_journal.push(entry);
        } else {
            self.journal.push(entry);
        }
    }

    /// Inserts a row (column 0 is the primary key).
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateKey`] if the key exists, plus schema/memory
    /// errors.
    pub fn insert(&mut self, table_name: &str, row: Row) -> Result<(), DbError> {
        {
            let table = self.table(table_name)?;
            Self::validate_row(table, table_name, &row)?;
            let key = row[0].ord_key();
            if table.rows.contains_key(&key) {
                return Err(DbError::DuplicateKey(row[0].to_string()));
            }
        }
        self.charge(Self::row_footprint(&row))?;
        let key = row[0].ord_key();
        let table = self.tables.get_mut(table_name).expect("checked above");
        table.index_insert(&row);
        table.rows.insert(key.clone(), Arc::new(row.clone()));
        self.invalidate_table(table_name);
        self.record(JournalEntry::Insert {
            table: table_name.to_owned(),
            row,
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RemoveRow {
                table: table_name.to_owned(),
                key,
            });
        }
        Ok(())
    }

    /// Fetches a row by primary key. The returned [`Arc`] is a shared
    /// handle into the row store — cloning it is a refcount bump, not a
    /// deep copy; callers that want to mutate clone the inner `Row`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn get(&self, table_name: &str, key: &Value) -> Result<Option<Arc<Row>>, DbError> {
        Ok(self.table(table_name)?.rows.get(&key.ord_key()).cloned())
    }

    /// Replaces the row whose primary key equals `row[0]`.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when no such row exists, plus schema/memory
    /// errors.
    pub fn update(&mut self, table_name: &str, row: Row) -> Result<(), DbError> {
        let old = {
            let table = self.table(table_name)?;
            Self::validate_row(table, table_name, &row)?;
            table
                .rows
                .get(&row[0].ord_key())
                .cloned()
                .ok_or(DbError::NotFound)?
        };
        let old_bytes = Self::row_footprint(&old);
        let new_bytes = Self::row_footprint(&row);
        self.footprint = self.footprint.saturating_sub(old_bytes);
        if let Err(e) = self.charge(new_bytes) {
            self.footprint += old_bytes; // restore accounting
            return Err(e);
        }
        let key = row[0].ord_key();
        let table = self.tables.get_mut(table_name).expect("checked above");
        table.index_remove(&old);
        table.index_insert(&row);
        table.rows.insert(key, Arc::new(row.clone()));
        self.invalidate_table(table_name);
        self.record(JournalEntry::Update {
            table: table_name.to_owned(),
            row,
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RestoreRow {
                table: table_name.to_owned(),
                row: old,
            });
        }
        Ok(())
    }

    /// Deletes a row by primary key.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when no such row exists.
    pub fn delete(&mut self, table_name: &str, key: &Value) -> Result<(), DbError> {
        let old = {
            let table = self.table(table_name)?;
            table
                .rows
                .get(&key.ord_key())
                .cloned()
                .ok_or(DbError::NotFound)?
        };
        self.footprint = self.footprint.saturating_sub(Self::row_footprint(&old));
        let table = self.tables.get_mut(table_name).expect("checked above");
        table.index_remove(&old);
        table.rows.remove(&key.ord_key());
        self.invalidate_table(table_name);
        self.record(JournalEntry::Delete {
            table: table_name.to_owned(),
            key: key.clone(),
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RestoreRow {
                table: table_name.to_owned(),
                row: old,
            });
        }
        Ok(())
    }

    /// Full scan returning rows matching `predicate`, in primary-key order.
    /// Rows come back as shared handles ([`Arc<Row>`]), not copies.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn select(
        &self,
        table_name: &str,
        predicate: impl Fn(&Row) -> bool,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        Ok(self
            .table(table_name)?
            .rows
            .values()
            .filter(|r| predicate(r.as_ref()))
            .cloned()
            .collect())
    }

    /// Index lookup: rows whose `column` equals `value`. Uses the
    /// secondary index when one exists, otherwise falls back to a scan
    /// (the trivial query planner). When the query cache is enabled the
    /// result set is memoized per table and served until the next write
    /// to that table invalidates it.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for unknown columns.
    pub fn select_eq(
        &self,
        table_name: &str,
        column: &str,
        value: &Value,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        let table = self.table(table_name)?;
        let ci = table
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table_name.to_owned(),
                column: column.to_owned(),
            })?;
        // The id is interned once per distinct query shape; when the
        // cache is disabled no key is built at all.
        let cache_id = if self.query_cache_enabled {
            let mut cache = self.query_cache.borrow_mut();
            let id = cache.intern(table_name, column, value);
            if let Some(rows) = cache.results.get(&id) {
                obs::metrics::incr("host.db_cache.hits");
                return Ok(rows.clone());
            }
            Some(id)
        } else {
            None
        };
        let rows: Vec<Arc<Row>> = if let Some(index) = table.indexes.get(column) {
            index
                .get(&value.ord_key())
                .map(|pks| {
                    pks.iter()
                        .filter_map(|pk| table.rows.get(pk))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        } else {
            table
                .rows
                .values()
                .filter(|r| r[ci] == *value)
                .cloned()
                .collect()
        };
        if let Some(id) = cache_id {
            obs::metrics::incr("host.db_cache.misses");
            self.query_cache.borrow_mut().results.insert(id, rows.clone());
        }
        Ok(rows)
    }

    /// True when `column` has a secondary index on `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn has_index(&self, table: &str, column: &str) -> Result<bool, DbError> {
        Ok(self.table(table)?.indexes.contains_key(column))
    }

    /// Runs `body` atomically: all of its writes commit together, or — if
    /// it returns `Err` — none of them apply and the journal is untouched.
    ///
    /// # Errors
    ///
    /// Returns the body's error after rolling back.
    ///
    /// # Panics
    ///
    /// Panics on nested transactions (single-writer engine).
    pub fn transaction<T, E>(
        &mut self,
        body: impl FnOnce(&mut Database) -> Result<T, E>,
    ) -> Result<T, E> {
        assert_eq!(self.tx_depth, 0, "nested transactions are not supported");
        self.tx_depth = 1;
        self.undo.clear();
        self.tx_journal.clear();
        let result = body(self);
        self.tx_depth = 0;
        match result {
            Ok(v) => {
                let mut entries = std::mem::take(&mut self.tx_journal);
                self.journal.append(&mut entries);
                self.undo.clear();
                Ok(v)
            }
            Err(e) => {
                let undo = std::mem::take(&mut self.undo);
                // Rolling back mutates tables again, so any query results
                // cached *inside* the failed transaction are stale too —
                // re-invalidate every touched table after the replay.
                let touched: Vec<String> = undo
                    .iter()
                    .map(|op| match op {
                        Undo::RemoveRow { table, .. } | Undo::RestoreRow { table, .. } => {
                            table.clone()
                        }
                        Undo::DropTable { name } => name.clone(),
                    })
                    .collect();
                for op in undo.into_iter().rev() {
                    match op {
                        Undo::RemoveRow { table, key } => {
                            if let Some(t) = self.tables.get_mut(&table) {
                                if let Some(row) = t.rows.remove(&key) {
                                    t.index_remove(&row);
                                    self.footprint =
                                        self.footprint.saturating_sub(Self::row_footprint(&row));
                                }
                            }
                        }
                        Undo::RestoreRow { table, row } => {
                            if let Some(t) = self.tables.get_mut(&table) {
                                let key = row[0].ord_key();
                                if let Some(current) = t.rows.remove(&key) {
                                    t.index_remove(&current);
                                    self.footprint = self
                                        .footprint
                                        .saturating_sub(Self::row_footprint(&current));
                                }
                                self.footprint += Self::row_footprint(&row);
                                t.index_insert(&row);
                                t.rows.insert(key, row);
                            }
                        }
                        Undo::DropTable { name } => {
                            self.tables.remove(&name);
                        }
                    }
                }
                for table in touched {
                    self.invalidate_table(&table);
                }
                self.tx_journal.clear();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn products() -> Database {
        let mut db = Database::new();
        db.create_table("products", &["sku", "name", "price", "stock"], &["name"])
            .unwrap();
        db.insert(
            "products",
            vec![1.into(), "widget".into(), Value::Float(4.99), 10.into()],
        )
        .unwrap();
        db.insert(
            "products",
            vec![2.into(), "gadget".into(), Value::Float(9.99), 3.into()],
        )
        .unwrap();
        db
    }

    #[test]
    fn crud_round_trip() {
        let mut db = products();
        assert_eq!(db.len("products").unwrap(), 2);
        let row = db.get("products", &1.into()).unwrap().unwrap();
        assert_eq!(row[1], Value::Text("widget".into()));

        db.update(
            "products",
            vec![1.into(), "widget".into(), Value::Float(3.99), 9.into()],
        )
        .unwrap();
        let row = db.get("products", &1.into()).unwrap().unwrap();
        assert_eq!(row[2], Value::Float(3.99));

        db.delete("products", &2.into()).unwrap();
        assert_eq!(db.get("products", &2.into()).unwrap(), None);
        assert_eq!(db.len("products").unwrap(), 1);
    }

    #[test]
    fn duplicate_keys_and_missing_rows_error() {
        let mut db = products();
        let dup = db.insert(
            "products",
            vec![1.into(), "x".into(), Value::Float(0.0), 0.into()],
        );
        assert_eq!(dup, Err(DbError::DuplicateKey("1".into())));
        assert_eq!(db.delete("products", &99.into()), Err(DbError::NotFound));
        assert_eq!(
            db.update(
                "products",
                vec![99.into(), "x".into(), Value::Float(0.0), 0.into()]
            ),
            Err(DbError::NotFound)
        );
    }

    #[test]
    fn schema_is_enforced() {
        let mut db = products();
        assert!(matches!(
            db.insert("products", vec![3.into()]),
            Err(DbError::SchemaMismatch(_))
        ));
        assert_eq!(
            db.insert("nope", vec![1.into()]),
            Err(DbError::NoSuchTable("nope".into()))
        );
        assert_eq!(
            db.insert(
                "products",
                vec![3.into(), "n".into(), Value::Float(f64::NAN), 0.into()]
            ),
            Err(DbError::NanRejected)
        );
    }

    #[test]
    fn secondary_index_lookup_matches_scan() {
        let mut db = products();
        db.insert(
            "products",
            vec![3.into(), "widget".into(), Value::Float(5.99), 7.into()],
        )
        .unwrap();
        assert!(db.has_index("products", "name").unwrap());
        let by_index = db.select_eq("products", "name", &"widget".into()).unwrap();
        let by_scan = db
            .select("products", |r| r[1] == Value::Text("widget".into()))
            .unwrap();
        assert_eq!(by_index.len(), 2);
        let mut a: Vec<i64> = by_index
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => 0,
            })
            .collect();
        let mut b: Vec<i64> = by_scan
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => 0,
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn index_tracks_updates_and_deletes() {
        let mut db = products();
        db.update(
            "products",
            vec![1.into(), "renamed".into(), Value::Float(4.99), 10.into()],
        )
        .unwrap();
        assert!(db
            .select_eq("products", "name", &"widget".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.select_eq("products", "name", &"renamed".into())
                .unwrap()
                .len(),
            1
        );
        db.delete("products", &1.into()).unwrap();
        assert!(db
            .select_eq("products", "name", &"renamed".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_equality_falls_back_to_scan() {
        let db = products();
        assert!(!db.has_index("products", "stock").unwrap());
        let rows = db.select_eq("products", "stock", &3.into()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Text("gadget".into()));
    }

    #[test]
    fn transaction_commits_atomically() {
        let mut db = products();
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.update(
                "products",
                vec![1.into(), "widget".into(), Value::Float(4.99), 9.into()],
            )?;
            tx.update(
                "products",
                vec![2.into(), "gadget".into(), Value::Float(9.99), 2.into()],
            )?;
            Ok(())
        });
        result.unwrap();
        assert_eq!(
            db.get("products", &1.into()).unwrap().unwrap()[3],
            Value::Int(9)
        );
        assert_eq!(
            db.get("products", &2.into()).unwrap().unwrap()[3],
            Value::Int(2)
        );
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut db = products();
        let journal_before = db.journal().len();
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.insert(
                "products",
                vec![7.into(), "new".into(), Value::Float(1.0), 1.into()],
            )?;
            tx.update(
                "products",
                vec![1.into(), "poked".into(), Value::Float(0.0), 0.into()],
            )?;
            tx.delete("products", &2.into())?;
            Err(DbError::NotFound) // simulate business-rule failure
        });
        assert!(result.is_err());
        // All three writes undone.
        assert_eq!(db.get("products", &7.into()).unwrap(), None);
        assert_eq!(
            db.get("products", &1.into()).unwrap().unwrap()[1],
            Value::Text("widget".into())
        );
        assert!(db.get("products", &2.into()).unwrap().is_some());
        // Journal untouched.
        assert_eq!(db.journal().len(), journal_before);
        // Indexes consistent after rollback.
        assert_eq!(
            db.select_eq("products", "name", &"widget".into())
                .unwrap()
                .len(),
            1
        );
        assert!(db
            .select_eq("products", "name", &"poked".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn journal_recovery_reproduces_state() {
        let mut db = products();
        db.update(
            "products",
            vec![1.into(), "widget".into(), Value::Float(2.49), 4.into()],
        )
        .unwrap();
        db.delete("products", &2.into()).unwrap();
        db.insert(
            "products",
            vec![5.into(), "sprocket".into(), Value::Float(7.0), 2.into()],
        )
        .unwrap();

        let recovered = Database::recover(db.journal()).unwrap();
        assert_eq!(
            recovered.len("products").unwrap(),
            db.len("products").unwrap()
        );
        for key in [1i64, 5] {
            assert_eq!(
                recovered.get("products", &key.into()).unwrap(),
                db.get("products", &key.into()).unwrap()
            );
        }
        assert_eq!(recovered.get("products", &2.into()).unwrap(), None);
        // Indexes also rebuilt.
        assert_eq!(
            recovered
                .select_eq("products", "name", &"sprocket".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn memory_cap_rejects_growth_but_stays_consistent() {
        let mut db = Database::with_memory_limit(200);
        db.create_table("kv", &["k", "v"], &[]).unwrap();
        db.insert("kv", vec![1.into(), "small".into()]).unwrap();
        let big = "x".repeat(500);
        assert!(matches!(
            db.insert("kv", vec![2.into(), big.clone().into()]),
            Err(DbError::OutOfMemory { limit: 200 })
        ));
        assert_eq!(db.len("kv").unwrap(), 1);
        // Updates that would blow the cap are rejected and leave the row.
        assert!(matches!(
            db.update("kv", vec![1.into(), big.into()]),
            Err(DbError::OutOfMemory { .. })
        ));
        assert_eq!(
            db.get("kv", &1.into()).unwrap().unwrap()[1],
            Value::Text("small".into())
        );
        // Deleting reclaims space.
        let before = db.footprint();
        db.delete("kv", &1.into()).unwrap();
        assert!(db.footprint() < before);
    }

    #[test]
    fn footprint_tracks_inserts_and_deletes() {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &[]).unwrap();
        assert_eq!(db.footprint(), 0);
        db.insert("t", vec![1.into(), "hello".into()]).unwrap();
        let after_one = db.footprint();
        assert!(after_one > 0);
        db.insert("t", vec![2.into(), "hello".into()]).unwrap();
        assert_eq!(db.footprint(), after_one * 2);
        db.delete("t", &1.into()).unwrap();
        assert_eq!(db.footprint(), after_one);
    }

    #[test]
    fn select_predicate_scans() {
        let db = products();
        let cheap = db
            .select("products", |r| matches!(r[2], Value::Float(p) if p < 5.0))
            .unwrap();
        assert_eq!(cheap.len(), 1);
        assert_eq!(cheap[0][1], Value::Text("widget".into()));
    }

    #[test]
    fn table_names_are_sorted() {
        let mut db = Database::new();
        db.create_table("zeta", &["k"], &[]).unwrap();
        db.create_table("alpha", &["k"], &[]).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
        assert!(matches!(
            db.create_table("alpha", &["k"], &[]),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn query_cache_is_transparent_and_invalidated_by_writes() {
        let mut cached = products();
        cached.set_query_cache(true);
        let plain = products();
        // Warm the cache, then re-read: both reads equal the uncached DB.
        for _ in 0..2 {
            assert_eq!(
                cached.select_eq("products", "name", &"widget".into()).unwrap(),
                plain.select_eq("products", "name", &"widget".into()).unwrap()
            );
        }
        // A write to the table invalidates the memoized result.
        cached
            .update(
                "products",
                vec![1.into(), "renamed".into(), Value::Float(4.99), 10.into()],
            )
            .unwrap();
        assert!(cached
            .select_eq("products", "name", &"widget".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            cached
                .select_eq("products", "name", &"renamed".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn query_cache_survives_rollback_without_staleness() {
        let mut db = products();
        db.set_query_cache(true);
        // Cache a result, mutate + re-cache inside a failing transaction,
        // then make sure the rollback did not leave the in-tx result
        // memoized.
        assert_eq!(
            db.select_eq("products", "name", &"widget".into()).unwrap().len(),
            1
        );
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.update(
                "products",
                vec![1.into(), "poked".into(), Value::Float(0.0), 0.into()],
            )?;
            assert_eq!(
                tx.select_eq("products", "name", &"poked".into())?.len(),
                1
            );
            Err(DbError::NotFound)
        });
        assert!(result.is_err());
        assert!(db
            .select_eq("products", "name", &"poked".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.select_eq("products", "name", &"widget".into()).unwrap().len(),
            1
        );
    }

    #[test]
    fn query_cache_invalidation_is_table_scoped() {
        let mut db = products();
        db.set_query_cache(true);
        db.create_table("orders", &["id", "sku"], &["sku"]).unwrap();
        db.insert("orders", vec![1.into(), 1.into()]).unwrap();
        // Warm both tables' caches.
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.select_eq("orders", "sku", &1.into()).unwrap();
        let _guard = obs::metrics::enable();
        // A write to `orders` must not disturb the `products` entry: the
        // next products read is a hit, the next orders read a miss.
        db.insert("orders", vec![2.into(), 2.into()]).unwrap();
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.select_eq("orders", "sku", &1.into()).unwrap();
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.misses"), 1);
        assert_eq!(metrics.counter("host.db_cache.invalidations"), 1);
    }

    #[test]
    fn reads_share_storage_instead_of_copying() {
        let db = products();
        let a = db.get("products", &1.into()).unwrap().unwrap();
        let b = db.get("products", &1.into()).unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "get must hand out shared row handles");
        let selected = db.select("products", |_| true).unwrap();
        assert!(selected.iter().any(|r| Arc::ptr_eq(r, &a)));
    }

    #[test]
    fn float_keys_order_correctly() {
        let mut db = Database::new();
        db.create_table("m", &["temp", "label"], &[]).unwrap();
        for (t, l) in [(-2.5, "cold"), (0.0, "zero"), (3.25, "warm")] {
            db.insert("m", vec![Value::Float(t), l.into()]).unwrap();
        }
        let all = db.select("m", |_| true).unwrap();
        let labels: Vec<String> = all.iter().map(|r| r[1].to_string()).collect();
        assert_eq!(labels, vec!["cold", "zero", "warm"]);
        assert!(db.get("m", &Value::Float(0.0)).unwrap().is_some());
    }
}
