//! The web server: routing, application programs, auth, sessions, logs.
//!
//! §7 models the web server on Apache and name-checks its features —
//! "highly configurable error messages, DBM-based authentication
//! databases, and content negotiation" — and puts "application programs
//! and support software" beside it, talking CGI. This server implements
//! those pieces: a route table dispatching to [`AppProgram`]s (the CGI
//! role), path-prefix auth realms backed by a user table, per-status
//! error pages, cookie sessions and an access log.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::RngExt;

use crate::cache::PageCache;
use crate::db::Database;
use crate::http::{Body, HttpRequest, HttpResponse, Method, Status};

/// Simulated cost of re-deriving one `(row, index)` entry when a crash
/// forces the secondary indexes to be rebuilt from base rows.
const INDEX_REBUILD_PER_ENTRY_NS: u64 = 2_000;

/// A server-side application program (the CGI contract): it sees the
/// request and the server context (database, session) and produces a
/// response.
pub trait AppProgram {
    /// Handles one request.
    fn handle(&self, req: &HttpRequest, ctx: &mut ServerCtx<'_>) -> HttpResponse;

    /// A short name for logs and diagnostics.
    fn name(&self) -> &str {
        "app"
    }
}

impl<F> AppProgram for F
where
    F: Fn(&HttpRequest, &mut ServerCtx<'_>) -> HttpResponse,
{
    fn handle(&self, req: &HttpRequest, ctx: &mut ServerCtx<'_>) -> HttpResponse {
        self(req, ctx)
    }
}

/// What the server hands an application program per request.
pub struct ServerCtx<'a> {
    /// The database server.
    pub db: &'a mut Database,
    /// The request's session key-value store (created on demand).
    pub session: &'a mut BTreeMap<String, String>,
    /// The session id backing `session`.
    pub session_id: String,
}

/// One access-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessLogEntry {
    /// Request method.
    pub method: Method,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Response body bytes.
    pub bytes: usize,
}

struct Route {
    method: Method,
    path: String,
    app: Box<dyn AppProgram>,
}

/// The web server.
///
/// ```
/// use hostsite::{WebServer, HttpRequest, HttpResponse, ServerCtx};
/// use hostsite::db::Database;
///
/// let mut server = WebServer::new(Database::new(), 7);
/// server.route_get("/hello", |_req: &HttpRequest, _ctx: &mut ServerCtx<'_>| {
///     HttpResponse::ok("<html><body>hi</body></html>")
/// });
/// let resp = server.handle(HttpRequest::get("/hello"));
/// assert!(resp.status.is_success());
/// ```
pub struct WebServer {
    db: Database,
    routes: Vec<Route>,
    static_pages: HashMap<String, Body>,
    error_pages: HashMap<u16, Body>,
    /// `(path prefix, realm name)` → user/password pairs.
    auth_realms: Vec<(String, HashMap<String, String>)>,
    sessions: RefCell<HashMap<String, BTreeMap<String, String>>>,
    access_log: RefCell<Vec<AccessLogEntry>>,
    rng: RefCell<StdRng>,
    /// Page cache (disabled unless configured); freshness is judged
    /// against `now_ns`, the simulation clock pushed down by the system.
    page_cache: Option<PageCache>,
    now_ns: u64,
}

impl std::fmt::Debug for WebServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebServer")
            .field("routes", &self.routes.len())
            .field("static_pages", &self.static_pages.len())
            .field("sessions", &self.sessions.borrow().len())
            .finish()
    }
}

impl WebServer {
    /// Creates a server owning `db`; `seed` drives session-id generation.
    pub fn new(db: Database, seed: u64) -> Self {
        WebServer {
            db,
            routes: Vec::new(),
            static_pages: HashMap::new(),
            error_pages: HashMap::new(),
            auth_realms: Vec::new(),
            sessions: RefCell::new(HashMap::new()),
            access_log: RefCell::new(Vec::new()),
            rng: RefCell::new(simnet::rng::rng_for(seed, "webserver.sessions")),
            page_cache: None,
            now_ns: 0,
        }
    }

    /// Enables the page cache with the given TTL (simulated nanoseconds)
    /// and byte budget. A zero TTL disables it — the cached path is
    /// bypassed entirely, leaving request handling byte-identical to an
    /// uncached server.
    pub fn configure_page_cache(&mut self, ttl_ns: u64, byte_budget: usize) {
        self.page_cache = if ttl_ns > 0 {
            Some(PageCache::new(ttl_ns, byte_budget))
        } else {
            None
        };
    }

    /// Drops the page cache and every entry in it.
    pub fn disable_page_cache(&mut self) {
        self.page_cache = None;
    }

    /// True when a page cache is configured.
    pub fn page_cache_enabled(&self) -> bool {
        self.page_cache.is_some()
    }

    /// Number of entries currently held by the page cache (zero when
    /// no cache is configured).
    pub fn page_cache_len(&self) -> usize {
        self.page_cache.as_ref().map_or(0, PageCache::len)
    }

    /// Number of request keys the page cache has interned. Bounded by
    /// the keys actually *stored*, not the keys merely looked up — the
    /// memory-flatness invariant under high-cardinality query spaces.
    pub fn page_cache_interned_keys(&self) -> usize {
        self.page_cache.as_ref().map_or(0, PageCache::interned_keys)
    }

    /// Advances the server's view of simulated time; cache freshness is
    /// judged against this clock.
    pub fn set_sim_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.db.set_now_ns(now_ns);
    }

    /// The database server (mutable — application setup uses this).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The database server.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Simulates a database-server crash and restart: the in-memory state
    /// is discarded and rebuilt by replaying the write-ahead journal.
    /// HTTP-level state (routes, static pages, sessions) lives in the web
    /// server and survives. Returns the number of journal entries
    /// replayed.
    ///
    /// # Errors
    ///
    /// Propagates a corrupt-journal error from [`Database::recover`]; the
    /// old database is left in place in that case.
    pub fn crash_and_recover_db(&mut self) -> Result<usize, crate::db::DbError> {
        // Only the durable prefix of the WAL survives: an un-fsynced tail
        // (group commit) is lost with the in-memory state.
        let journal = self.db.journal().to_vec();
        let replayed = journal.len();
        let cache_enabled = self.db.query_cache_enabled();
        let cache_ttl = self.db.query_cache_ttl_ns();
        let fts_regs = self.db.fts_registrations();
        let policy = self.db.durability();
        self.db = Database::recover_with_policy(&journal, policy)?;
        self.db.set_now_ns(self.now_ns);
        // Secondary indexes are derived projections: rebuilt from the
        // recovered base rows, at a per-entry price. Full-text
        // registrations are engine configuration (never journaled), so
        // the crash drops index and registration together; re-registering
        // rebuilds the postings from base rows at the same per-entry
        // price.
        let mut rebuilt = self.db.index_entries_rebuilt();
        for (table, column) in fts_regs {
            rebuilt += self
                .db
                .create_fts(&table, &column)
                .expect("pre-crash registration names valid columns");
        }
        if rebuilt > 0 {
            obs::metrics::add(
                "host.db.index_rebuild_ns",
                rebuilt * INDEX_REBUILD_PER_ENTRY_NS,
            );
        }
        // The crash flushes the query cache with the rest of the in-memory
        // state; the recovered instance starts cold but keeps the knobs.
        if cache_enabled {
            self.db.set_query_cache(true);
            self.db.set_query_cache_ttl(cache_ttl);
            obs::metrics::incr("host.db_cache.flushes");
        }
        Ok(replayed)
    }

    /// Registers an application program for `GET path`.
    pub fn route_get(&mut self, path: &str, app: impl AppProgram + 'static) {
        self.routes.push(Route {
            method: Method::Get,
            path: path.to_owned(),
            app: Box::new(app),
        });
    }

    /// Registers an application program for `POST path`.
    pub fn route_post(&mut self, path: &str, app: impl AppProgram + 'static) {
        self.routes.push(Route {
            method: Method::Post,
            path: path.to_owned(),
            app: Box::new(app),
        });
    }

    /// Serves `body` for `GET path` without involving an app program.
    pub fn static_page(&mut self, path: &str, body: impl Into<Body>) {
        self.static_pages.insert(path.to_owned(), body.into());
    }

    /// Overrides the body served with status `code` — §7's "highly
    /// configurable error messages".
    pub fn error_page(&mut self, code: u16, body: impl Into<Body>) {
        self.error_pages.insert(code, body.into());
    }

    /// Protects every path starting with `prefix` behind basic auth
    /// against the given user table — §7's "DBM-based authentication
    /// databases".
    pub fn protect(&mut self, prefix: &str, users: impl IntoIterator<Item = (String, String)>) {
        self.auth_realms
            .push((prefix.to_owned(), users.into_iter().collect()));
    }

    /// The access log so far.
    pub fn access_log(&self) -> Vec<AccessLogEntry> {
        self.access_log.borrow().clone()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.borrow().len()
    }

    /// Handles one request end to end: auth, routing, app dispatch,
    /// session cookie management, error pages, logging.
    pub fn handle(&mut self, req: HttpRequest) -> HttpResponse {
        self.handle_cached(req).0
    }

    /// Like [`WebServer::handle`], additionally reporting whether the
    /// response came from the page cache (so the host can charge lookup
    /// cost instead of page-generation cost).
    pub fn handle_cached(&mut self, req: HttpRequest) -> (HttpResponse, bool) {
        // Only credential-free GETs are cache candidates. POSTs mutate
        // database and session state, and authed requests must reach
        // dispatch's auth-realm password check every time — a cached
        // protected page keyed by username alone would be served to a
        // later request presenting the wrong password. The lookup
        // *probes* for an interned id; keys are interned only at store
        // time, so never-stored shapes (distinct search queries,
        // cookie-minting responses) don't grow the interner.
        let cache_candidate = self.page_cache.is_some()
            && req.method == Method::Get
            && req.auth.is_none();
        let cache_id = if cache_candidate {
            self.page_cache.as_ref().and_then(|cache| cache.probe(&req))
        } else {
            None
        };
        if cache_candidate {
            let cache = self.page_cache.as_mut().expect("candidate implies cache");
            match cache_id {
                Some(id) => {
                    if let Some(resp) = cache.lookup(id, self.now_ns) {
                        obs::metrics::incr("host.page_cache.hits");
                        obs::metrics::add("host.page_cache.bytes_saved", resp.body.len() as u64);
                        self.access_log.borrow_mut().push(AccessLogEntry {
                            method: req.method,
                            path: req.path.clone(),
                            status: resp.status.code(),
                            bytes: resp.body.len(),
                        });
                        return (resp, true);
                    }
                }
                None => cache.record_miss(),
            }
        }
        let mut resp = self.dispatch(&req);
        // Error-page substitution. The handler's tree (if any) no longer
        // describes the body, so drop it.
        if !resp.status.is_success() {
            if let Some(body) = self.error_pages.get(&resp.status.code()) {
                resp.body = body.clone();
                resp.page = None;
            }
        }
        if cache_candidate {
            obs::metrics::incr("host.page_cache.misses");
            // Responses that mint cookies are per-client, and `no_store`
            // responses (search results over a high-cardinality query
            // space) would churn the LRU without ever revisiting — both
            // bypass admission entirely.
            if resp.status.is_success() && resp.set_cookies.is_empty() && !resp.no_store {
                let cache = self.page_cache.as_mut().expect("candidate implies cache");
                let id = match cache_id {
                    Some(id) => id,
                    None => cache.intern(&req),
                };
                let now_ns = self.now_ns;
                let evicted = cache.store(id, &resp, now_ns);
                obs::metrics::add("host.page_cache.evictions", evicted as u64);
            }
        }
        self.access_log.borrow_mut().push(AccessLogEntry {
            method: req.method,
            path: req.path.clone(),
            status: resp.status.code(),
            bytes: resp.body.len(),
        });
        (resp, false)
    }

    fn dispatch(&mut self, req: &HttpRequest) -> HttpResponse {
        // Authentication. Prefixes match on path-segment boundaries:
        // "/ward" protects "/ward" and "/ward/…", not "/wardrobe".
        for (prefix, users) in &self.auth_realms {
            let in_realm = req.path == *prefix
                || req
                    .path
                    .strip_prefix(prefix.as_str())
                    .is_some_and(|rest| rest.starts_with('/'));
            if in_realm {
                let ok = req
                    .auth
                    .as_ref()
                    .map(|(u, p)| users.get(u).map(String::as_str) == Some(p.as_str()))
                    .unwrap_or(false);
                if !ok {
                    return HttpResponse::error(
                        Status::Unauthorized,
                        "<html><body>401 authorization required</body></html>",
                    );
                }
            }
        }

        // Static resources.
        if req.method == Method::Get {
            if let Some(body) = self.static_pages.get(&req.path) {
                return HttpResponse::ok(body.clone());
            }
        }

        // Session: reuse the client's cookie or mint a fresh id.
        let (session_id, is_new) = match req.cookies.get("sid") {
            Some(sid) if self.sessions.borrow().contains_key(sid) => (sid.clone(), false),
            _ => {
                let id: u64 = self.rng.borrow_mut().random();
                (format!("s{id:016x}"), true)
            }
        };
        let mut session = self
            .sessions
            .borrow_mut()
            .remove(&session_id)
            .unwrap_or_default();

        // Routing.
        let route_idx = self
            .routes
            .iter()
            .position(|r| r.method == req.method && r.path == req.path);
        let mut resp = match route_idx {
            Some(idx) => {
                // Split borrows: the route's app and the db are disjoint.
                let route = self.routes.swap_remove(idx);
                let mut ctx = ServerCtx {
                    db: &mut self.db,
                    session: &mut session,
                    session_id: session_id.clone(),
                };
                let resp = route.app.handle(req, &mut ctx);
                self.routes.push(route);
                resp
            }
            None => {
                HttpResponse::error(Status::NotFound, "<html><body>404 not found</body></html>")
            }
        };

        // Persist the session; set the cookie on first contact.
        let session_used = !session.is_empty();
        self.sessions
            .borrow_mut()
            .insert(session_id.clone(), session);
        if is_new && session_used {
            resp = resp.with_cookie("sid", &session_id);
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Value;

    fn server() -> WebServer {
        let mut db = Database::new();
        db.create_table("products", &["sku", "name", "stock"], &["name"])
            .unwrap();
        db.insert("products", vec![1.into(), "widget".into(), 10.into()])
            .unwrap();
        let mut server = WebServer::new(db, 99);
        server.route_get("/stock", |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
            let Some(sku) = req.param("sku").and_then(|s| s.parse::<i64>().ok()) else {
                return HttpResponse::error(Status::BadRequest, "bad sku");
            };
            match ctx.db.get("products", &sku.into()) {
                Ok(Some(row)) => HttpResponse::ok(format!(
                    "<html><body>{} in stock: {}</body></html>",
                    row[1], row[2]
                )),
                Ok(None) => HttpResponse::error(Status::NotFound, "no such product"),
                Err(_) => HttpResponse::error(Status::ServerError, "db error"),
            }
        });
        server.route_post("/buy", |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
            let sku: i64 = req.param("sku").and_then(|s| s.parse().ok()).unwrap_or(0);
            let result: Result<i64, crate::db::DbError> = ctx.db.transaction(|tx| {
                let mut row = (*tx
                    .get("products", &sku.into())?
                    .ok_or(crate::db::DbError::NotFound)?)
                .clone();
                let Value::Int(stock) = row[2] else {
                    return Err(crate::db::DbError::NotFound);
                };
                if stock == 0 {
                    return Err(crate::db::DbError::NotFound);
                }
                row[2] = (stock - 1).into();
                tx.update("products", row)?;
                Ok(stock - 1)
            });
            match result {
                Ok(left) => {
                    let n: i64 = ctx
                        .session
                        .get("bought")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    ctx.session.insert("bought".into(), (n + 1).to_string());
                    HttpResponse::ok(format!("<html><body>ok, {left} left</body></html>"))
                }
                Err(_) => HttpResponse::error(Status::BadRequest, "out of stock"),
            }
        });
        server
    }

    #[test]
    fn app_program_reads_the_database() {
        let mut s = server();
        let resp = s.handle(HttpRequest::get("/stock?sku=1"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("widget in stock: 10"));
    }

    #[test]
    fn unknown_route_is_404_with_custom_error_page() {
        let mut s = server();
        let resp = s.handle(HttpRequest::get("/nope"));
        assert_eq!(resp.status, Status::NotFound);
        s.error_page(404, "<html><body>custom not found</body></html>");
        let resp = s.handle(HttpRequest::get("/nope"));
        assert_eq!(resp.body, "<html><body>custom not found</body></html>");
    }

    #[test]
    fn post_mutates_through_a_transaction() {
        let mut s = server();
        for left in (0..10).rev() {
            let resp = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
            assert_eq!(resp.status, Status::Ok);
            assert!(resp.body.contains(&format!("{left} left")));
        }
        // Stock exhausted: the transaction rolls back, stock stays 0.
        let resp = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        assert_eq!(resp.status, Status::BadRequest);
        assert_eq!(
            s.db().get("products", &1.into()).unwrap().unwrap()[2],
            Value::Int(0)
        );
    }

    #[test]
    fn db_crash_recovery_preserves_committed_state_mid_workload() {
        let mut s = server();
        for _ in 0..3 {
            let resp = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
            assert_eq!(resp.status, Status::Ok);
        }
        let replayed = s.crash_and_recover_db().expect("journal replays clean");
        assert!(replayed > 0, "a non-trivial journal was replayed");
        // Committed purchases survived the crash...
        assert_eq!(
            s.db().get("products", &1.into()).unwrap().unwrap()[2],
            Value::Int(7)
        );
        // ...and the server keeps serving afterwards.
        let resp = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("6 left"));
    }

    #[test]
    fn sessions_persist_across_requests_via_cookie() {
        let mut s = server();
        let first = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        let sid = first
            .set_cookies
            .get("sid")
            .expect("session cookie set")
            .clone();
        let _ = s.handle(
            HttpRequest::post("/buy", vec![("sku".into(), "1".into())]).with_cookie("sid", &sid),
        );
        let sessions = s.sessions.borrow();
        let session = sessions.get(&sid).unwrap();
        assert_eq!(session.get("bought").map(String::as_str), Some("2"));
        assert_eq!(s.session_count(), 1);
    }

    #[test]
    fn auth_realm_gates_protected_paths() {
        let mut s = server();
        s.protect("/stock", vec![("admin".to_owned(), "secret".to_owned())]);
        let resp = s.handle(HttpRequest::get("/stock?sku=1"));
        assert_eq!(resp.status, Status::Unauthorized);
        let resp = s.handle(HttpRequest::get("/stock?sku=1").with_auth("admin", "wrong"));
        assert_eq!(resp.status, Status::Unauthorized);
        let resp = s.handle(HttpRequest::get("/stock?sku=1").with_auth("admin", "secret"));
        assert_eq!(resp.status, Status::Ok);
        // Unprotected paths unaffected.
        let resp = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn static_pages_win_over_404() {
        let mut s = server();
        s.static_page("/about", "<html><body>about us</body></html>");
        let resp = s.handle(HttpRequest::get("/about"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("about us"));
    }

    #[test]
    fn access_log_records_every_request() {
        let mut s = server();
        s.handle(HttpRequest::get("/stock?sku=1"));
        s.handle(HttpRequest::get("/missing"));
        let log = s.access_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].status, 200);
        assert_eq!(log[0].path, "/stock");
        assert_eq!(log[1].status, 404);
        assert!(log[0].bytes > 0);
    }

    #[test]
    fn method_mismatch_is_not_found() {
        let mut s = server();
        let resp = s.handle(HttpRequest::get("/buy?sku=1"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn page_cache_serves_stale_pages_until_the_ttl_expires() {
        let mut s = server();
        s.configure_page_cache(1_000, 64 * 1024);
        s.set_sim_now_ns(0);
        let (first, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
        assert!(!hit);
        assert!(first.body.contains("in stock: 10"));
        // Mutate the underlying row; the cached page stays stale while
        // fresh, then regenerates after expiry.
        s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        s.set_sim_now_ns(500);
        let (stale, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
        assert!(hit);
        assert!(stale.body.contains("in stock: 10"));
        s.set_sim_now_ns(2_000);
        let (fresh, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
        assert!(!hit);
        assert!(fresh.body.contains("in stock: 9"));
    }

    #[test]
    fn page_cache_never_captures_posts_or_cookie_minting_responses() {
        let mut s = server();
        s.configure_page_cache(u64::MAX / 2, 64 * 1024);
        // POSTs run the application program every time.
        let a = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        let b = s.handle(HttpRequest::post("/buy", vec![("sku".into(), "1".into())]));
        assert!(a.body.contains("9 left"));
        assert!(b.body.contains("8 left"));
        // The first POST minted a session cookie; nothing of it is cached.
        assert!(!a.set_cookies.is_empty());
    }

    #[test]
    fn zero_ttl_configuration_disables_the_cache() {
        let mut s = server();
        s.configure_page_cache(0, 64 * 1024);
        assert!(!s.page_cache_enabled());
        let (_, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
        assert!(!hit);
        let (_, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
        assert!(!hit);
    }

    #[test]
    fn page_cache_never_answers_for_an_auth_realm() {
        let mut s = server();
        s.static_page("/admin/panel", "<html><body>top secret</body></html>");
        s.protect(
            "/admin",
            vec![("admin".to_owned(), "secret".to_owned())],
        );
        s.configure_page_cache(u64::MAX / 2, 64 * 1024);
        // A correctly-authed GET succeeds but must not populate the
        // cache (and must not be served from it on repeat).
        let (ok, hit) = s.handle_cached(HttpRequest::get("/admin/panel").with_auth("admin", "secret"));
        assert_eq!(ok.status, Status::Ok);
        assert!(!hit);
        let (again, hit) =
            s.handle_cached(HttpRequest::get("/admin/panel").with_auth("admin", "secret"));
        assert_eq!(again.status, Status::Ok);
        assert!(!hit, "authed requests bypass the cache entirely");
        // Wrong password and missing credentials are both rejected —
        // not served the cached protected page.
        let (wrong, hit) =
            s.handle_cached(HttpRequest::get("/admin/panel").with_auth("admin", "wrongpass"));
        assert_eq!(wrong.status, Status::Unauthorized);
        assert!(!hit);
        assert!(!wrong.body.contains("top secret"));
        let (anon, hit) = s.handle_cached(HttpRequest::get("/admin/panel"));
        assert_eq!(anon.status, Status::Unauthorized);
        assert!(!hit);
        assert_eq!(s.page_cache_len(), 0, "no authed page was ever stored");
    }

    #[test]
    fn cache_hits_still_reach_the_access_log() {
        let mut s = server();
        s.configure_page_cache(u64::MAX / 2, 64 * 1024);
        s.handle(HttpRequest::get("/stock?sku=1"));
        s.handle(HttpRequest::get("/stock?sku=1"));
        assert_eq!(s.access_log().len(), 2);
    }

    /// Adds a search-shaped route: a credential-free GET whose response
    /// carries `no_store`, keyed by a query parameter of unbounded
    /// cardinality — the request shape the PR-10 bugfix sweep targets.
    fn add_search_route(s: &mut WebServer) {
        s.route_get("/search", |req: &HttpRequest, _ctx: &mut ServerCtx<'_>| {
            let q = req.param("q").unwrap_or_default();
            HttpResponse::ok(format!("<html><body>results for {q}</body></html>"))
                .with_no_store()
        });
    }

    #[test]
    fn hundred_k_distinct_queries_hold_interner_memory_flat() {
        // Regression test for the unbounded-interner bug: before the
        // probe-at-lookup fix, every distinct cache-candidate request
        // interned its key permanently, so a fleet issuing 100k distinct
        // search queries grew the interner by 100k entries it would
        // never revisit.
        let mut s = server();
        add_search_route(&mut s);
        s.configure_page_cache(u64::MAX / 2, 64 * 1024);
        for i in 0..100_000u64 {
            let (resp, hit) = s.handle_cached(HttpRequest::get(&format!("/search?q=term{i}")));
            assert!(!hit);
            assert!(resp.no_store);
        }
        assert_eq!(
            s.page_cache_interned_keys(),
            0,
            "never-stored request shapes must not intern keys"
        );
        assert_eq!(s.page_cache_len(), 0, "no_store responses are never admitted");
    }

    #[test]
    fn browse_hit_rate_is_unharmed_by_interleaved_searches() {
        // Regression test for LRU churn: search responses bypass
        // admission, so a browse page interleaved with one-off searches
        // keeps hitting exactly as it would in a search-free run.
        let mut s = server();
        add_search_route(&mut s);
        s.configure_page_cache(u64::MAX / 2, 64 * 1024);
        let rounds = 50u64;
        let mut browse_hits = 0u64;
        for i in 0..rounds {
            let (_, hit) = s.handle_cached(HttpRequest::get("/stock?sku=1"));
            if hit {
                browse_hits += 1;
            }
            let (_, hit) = s.handle_cached(HttpRequest::get(&format!("/search?q=one off {i}")));
            assert!(!hit, "distinct searches can never hit");
        }
        assert_eq!(browse_hits, rounds - 1, "every revisit after the first hits");
        assert_eq!(s.page_cache_len(), 1, "only the browse page is resident");
        assert_eq!(s.page_cache_interned_keys(), 1);
    }
}

#[cfg(test)]
mod realm_boundary_tests {
    use super::*;
    use crate::http::HttpRequest;

    #[test]
    fn auth_prefix_matches_segment_boundaries_only() {
        let mut s = WebServer::new(Database::new(), 1);
        s.static_page("/ward", "<html><body>w</body></html>");
        s.static_page("/ward/room", "<html><body>r</body></html>");
        s.static_page("/wardrobe", "<html><body>free</body></html>");
        s.protect("/ward", vec![("u".to_owned(), "p".to_owned())]);
        assert_eq!(
            s.handle(HttpRequest::get("/ward")).status,
            Status::Unauthorized
        );
        assert_eq!(
            s.handle(HttpRequest::get("/ward/room")).status,
            Status::Unauthorized
        );
        // Not in the realm: shares the prefix string but not the segment.
        assert_eq!(s.handle(HttpRequest::get("/wardrobe")).status, Status::Ok);
        assert_eq!(
            s.handle(HttpRequest::get("/ward/room").with_auth("u", "p"))
                .status,
            Status::Ok
        );
    }
}
