//! Tables and secondary indexes.
//!
//! A secondary index is a *derived projection* of the base rows — it is
//! maintained incrementally on the write path, dropped wholesale when a
//! crash discards the in-memory state, and rebuilt from the recovered
//! base rows (never replayed from the log). Index maintenance is
//! fallible: schema drift (an index naming a column the table does not
//! have, which only a corrupt journal can produce) surfaces as
//! [`DbError::NoSuchColumn`] instead of a panic, so recovery can abort
//! cleanly mid-replay.

use std::collections::{BTreeMap, HashMap};

use super::fts::FtsIndex;
use super::mvcc::VersionChain;
use super::{DbError, OrdKey, Row};

/// One table: schema, versioned rows, and the derived secondary indexes.
#[derive(Debug, Clone, Default)]
pub(crate) struct Table {
    pub(crate) columns: Vec<String>,
    pub(crate) rows: BTreeMap<OrdKey, VersionChain>,
    /// column name → (value key → primary keys)
    pub(crate) indexes: HashMap<String, BTreeMap<OrdKey, Vec<OrdKey>>>,
    /// Optional full-text index — a derived projection like `indexes`,
    /// maintained on the same write path and rebuilt, not replayed.
    pub(crate) fts: Option<FtsIndex>,
}

impl Table {
    pub(crate) fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The live image of `key`, if present.
    pub(crate) fn live(&self, key: &OrdKey) -> Option<&std::sync::Arc<Row>> {
        self.rows.get(key).and_then(VersionChain::live)
    }

    /// Adds `row` to every secondary index.
    ///
    /// On schema drift the earlier indexes keep their new entries — the
    /// caller (recovery) discards the whole database on error.
    pub(crate) fn index_insert(&mut self, table_name: &str, row: &Row) -> Result<(), DbError> {
        let pk = row[0].ord_key();
        // Split-borrow the schema next to the mutable index maps so index
        // maintenance never has to clone the column list per write.
        let Table {
            columns,
            indexes,
            fts,
            ..
        } = self;
        for (col, index) in indexes.iter_mut() {
            let ci = columns
                .iter()
                .position(|c| c == col)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: table_name.to_owned(),
                    column: col.clone(),
                })?;
            index.entry(row[ci].ord_key()).or_default().push(pk.clone());
        }
        if let Some(fts) = fts {
            fts.insert_row(table_name, columns, row)?;
        }
        Ok(())
    }

    /// Removes `row` from every secondary index.
    pub(crate) fn index_remove(&mut self, table_name: &str, row: &Row) -> Result<(), DbError> {
        let pk = row[0].ord_key();
        let Table {
            columns,
            indexes,
            fts,
            ..
        } = self;
        for (col, index) in indexes.iter_mut() {
            let ci = columns
                .iter()
                .position(|c| c == col)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: table_name.to_owned(),
                    column: col.clone(),
                })?;
            let key = row[ci].ord_key();
            if let Some(pks) = index.get_mut(&key) {
                pks.retain(|p| *p != pk);
                if pks.is_empty() {
                    index.remove(&key);
                }
            }
        }
        if let Some(fts) = fts {
            fts.remove_row(table_name, columns, row)?;
        }
        Ok(())
    }

    /// Rebuilds every secondary index from the live base rows — the
    /// recovery path's derived-projection rebuild. Buckets come out in
    /// primary-key order (the canonical from-scratch order). Returns the
    /// number of `(row, index)` entries written.
    pub(crate) fn rebuild_indexes(&mut self, table_name: &str) -> Result<u64, DbError> {
        let Table {
            columns,
            rows,
            indexes,
            fts,
        } = self;
        let mut entries = 0u64;
        for (col, index) in indexes.iter_mut() {
            let ci = columns
                .iter()
                .position(|c| c == col)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: table_name.to_owned(),
                    column: col.clone(),
                })?;
            index.clear();
            for (pk, chain) in rows.iter() {
                if let Some(row) = chain.live() {
                    index.entry(row[ci].ord_key()).or_default().push(pk.clone());
                    entries += 1;
                }
            }
        }
        if let Some(fts) = fts {
            fts.clear();
            for chain in rows.values() {
                if let Some(row) = chain.live() {
                    fts.insert_row(table_name, columns, row)?;
                }
            }
            entries += fts.entry_count();
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn table() -> Table {
        Table {
            columns: vec!["id".into(), "name".into()],
            rows: BTreeMap::new(),
            indexes: [("name".to_owned(), BTreeMap::new())].into(),
            fts: None,
        }
    }

    #[test]
    fn schema_drift_errors_instead_of_panicking() {
        let mut t = table();
        t.columns.truncate(1); // simulate a corrupt-journal schema
        let row: Row = vec![1i64.into(), "x".into()];
        assert_eq!(
            t.index_insert("t", &row),
            Err(DbError::NoSuchColumn {
                table: "t".into(),
                column: "name".into()
            })
        );
        assert_eq!(
            t.index_remove("t", &row),
            Err(DbError::NoSuchColumn {
                table: "t".into(),
                column: "name".into()
            })
        );
        assert!(t.rebuild_indexes("t").is_err());
    }

    #[test]
    fn rebuild_equals_a_from_scratch_projection() {
        let mut t = table();
        for (id, name) in [(2i64, "b"), (1, "a"), (3, "a")] {
            let row: Row = vec![id.into(), name.into()];
            t.index_insert("t", &row).unwrap();
            t.rows
                .entry(row[0].ord_key())
                .or_default()
                .install(Arc::new(row), 1);
        }
        let incremental = t.indexes.clone();
        let entries = t.rebuild_indexes("t").unwrap();
        assert_eq!(entries, 3);
        // Same keys and the same pk sets; rebuild order is pk order.
        assert_eq!(
            incremental["name"].keys().collect::<Vec<_>>(),
            t.indexes["name"].keys().collect::<Vec<_>>()
        );
        let a_key = super::super::Value::from("a").ord_key();
        let mut a: Vec<_> = incremental["name"][&a_key].clone();
        a.sort();
        assert_eq!(a, t.indexes["name"][&a_key]);
    }
}
