//! Full-text search: a deterministic inverted index over one text column.
//!
//! The index is a *derived projection* of the base rows, exactly like the
//! secondary indexes in `index.rs`: postings are maintained incrementally
//! on the committed write path, dropped wholesale when a crash discards
//! in-memory state, and rebuilt from the recovered base rows — never
//! replayed from the log. Registration itself (`Database::create_fts`) is
//! engine configuration, like the query-cache knobs, and is not journaled.
//!
//! Scoring is integer-only so results are bit-identical on every platform
//! and at every thread count: tf × idf in 16.16 fixed point,
//! `idf_fp = ((doc_count + 1) << 16) / (df + 1)`, summed over the distinct
//! query terms (OR semantics). Ties break on the primary key, ascending —
//! the same canonical order the from-scratch rebuild produces.

use std::collections::BTreeMap;

use super::{DbError, OrdKey, Row};

/// Fixed-point shift for tf·idf scores: 16.16.
pub(crate) const SCORE_FP_SHIFT: u32 = 16;

/// Splits `text` into lowercase ASCII-alphanumeric runs. Every
/// non-alphanumeric byte is a separator, so `"Travel+Charger, v2"`
/// tokenizes to `["travel", "charger", "v2"]`. Deterministic and
/// allocation-minimal; no stemming, no stop words.
pub(crate) fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizes a query and canonicalizes it: sorted, deduplicated terms.
/// Two queries with the same term set score identically regardless of
/// word order or repetition.
pub(crate) fn query_terms(query: &str) -> Vec<String> {
    let mut terms = tokenize(query);
    terms.sort();
    terms.dedup();
    terms
}

/// The inverted index for one table column: term → (primary key → term
/// frequency). Both maps are `BTreeMap` so iteration order — and thus
/// every derived count and score — is deterministic.
#[derive(Debug, Clone, Default)]
pub(crate) struct FtsIndex {
    /// The indexed column's name.
    pub(crate) column: String,
    postings: BTreeMap<String, BTreeMap<OrdKey, u32>>,
    doc_count: u64,
}

impl FtsIndex {
    pub(crate) fn new(column: &str) -> Self {
        FtsIndex {
            column: column.to_owned(),
            postings: BTreeMap::new(),
            doc_count: 0,
        }
    }

    fn column_index(&self, table_name: &str, columns: &[String]) -> Result<usize, DbError> {
        columns
            .iter()
            .position(|c| *c == self.column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table_name.to_owned(),
                column: self.column.clone(),
            })
    }

    /// Adds `row`'s terms to the postings. Mirrors
    /// `Table::index_insert`'s error contract on schema drift.
    pub(crate) fn insert_row(
        &mut self,
        table_name: &str,
        columns: &[String],
        row: &Row,
    ) -> Result<(), DbError> {
        let ci = self.column_index(table_name, columns)?;
        let pk = row[0].ord_key();
        for token in tokenize(&row[ci].to_string()) {
            *self.postings.entry(token).or_default().entry(pk.clone()).or_insert(0) += 1;
        }
        self.doc_count += 1;
        Ok(())
    }

    /// Removes `row`'s terms from the postings.
    pub(crate) fn remove_row(
        &mut self,
        table_name: &str,
        columns: &[String],
        row: &Row,
    ) -> Result<(), DbError> {
        let ci = self.column_index(table_name, columns)?;
        let pk = row[0].ord_key();
        for token in tokenize(&row[ci].to_string()) {
            if let Some(bucket) = self.postings.get_mut(&token) {
                if let Some(tf) = bucket.get_mut(&pk) {
                    *tf = tf.saturating_sub(1);
                    if *tf == 0 {
                        bucket.remove(&pk);
                    }
                }
                if bucket.is_empty() {
                    self.postings.remove(&token);
                }
            }
        }
        self.doc_count = self.doc_count.saturating_sub(1);
        Ok(())
    }

    /// Drops all postings (crash path: the projection is discarded with
    /// the rest of the in-memory state).
    pub(crate) fn clear(&mut self) {
        self.postings.clear();
        self.doc_count = 0;
    }

    /// Total `(term, primary key)` postings entries — the unit the
    /// recovery path prices rebuilds in.
    pub(crate) fn entry_count(&self) -> u64 {
        self.postings.values().map(|b| b.len() as u64).sum()
    }

    /// Number of indexed documents.
    #[cfg(test)]
    pub(crate) fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Scores every row matching at least one of `terms` (OR semantics).
    /// Returns `(pk → fixed-point score, postings entries visited)`; the
    /// visit count is the deterministic work unit the engine prices
    /// search CPU in.
    pub(crate) fn candidates(&self, terms: &[String]) -> (BTreeMap<OrdKey, u64>, u64) {
        let mut scores: BTreeMap<OrdKey, u64> = BTreeMap::new();
        let mut visited = 0u64;
        for term in terms {
            let Some(bucket) = self.postings.get(term) else {
                continue;
            };
            let df = bucket.len() as u64;
            let idf_fp = ((self.doc_count + 1) << SCORE_FP_SHIFT) / (df + 1);
            for (pk, tf) in bucket {
                *scores.entry(pk.clone()).or_insert(0) += u64::from(*tf) * idf_fp;
                visited += 1;
            }
        }
        (scores, visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: i64, name: &str) -> Row {
        vec![id.into(), name.into()]
    }

    fn columns() -> Vec<String> {
        vec!["id".into(), "name".into()]
    }

    #[test]
    fn tokenizer_lowercases_and_splits_on_non_alphanumerics() {
        assert_eq!(tokenize("Travel+Charger, v2"), vec!["travel", "charger", "v2"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a--b"), vec!["a", "b"]);
    }

    #[test]
    fn query_terms_are_sorted_and_deduplicated() {
        assert_eq!(query_terms("charger travel charger"), vec!["charger", "travel"]);
    }

    #[test]
    fn rarer_terms_score_higher_than_common_ones() {
        let cols = columns();
        let mut fts = FtsIndex::new("name");
        for (id, name) in [(1, "case case"), (2, "case"), (3, "stylus")] {
            fts.insert_row("t", &cols, &row(id, name)).unwrap();
        }
        let (common, _) = fts.candidates(&query_terms("case"));
        let (rare, _) = fts.candidates(&query_terms("stylus"));
        // df("case") = 2, df("stylus") = 1 → the rare term's idf is larger.
        assert!(rare[&OrdKey::Int(3)] > common[&OrdKey::Int(2)]);
        // tf weighting: row 1 holds "case" twice.
        assert_eq!(common[&OrdKey::Int(1)], 2 * common[&OrdKey::Int(2)]);
    }

    #[test]
    fn incremental_updates_match_a_from_scratch_build() {
        let cols = columns();
        let mut incremental = FtsIndex::new("name");
        let rows = [(1, "travel charger"), (2, "spare stylus"), (3, "charger")];
        for (id, name) in rows {
            incremental.insert_row("t", &cols, &row(id, name)).unwrap();
        }
        // Edit row 2, delete row 3.
        incremental.remove_row("t", &cols, &row(2, "spare stylus")).unwrap();
        incremental.insert_row("t", &cols, &row(2, "stylus pack")).unwrap();
        incremental.remove_row("t", &cols, &row(3, "charger")).unwrap();

        let mut scratch = FtsIndex::new("name");
        for (id, name) in [(1, "travel charger"), (2, "stylus pack")] {
            scratch.insert_row("t", &cols, &row(id, name)).unwrap();
        }
        assert_eq!(incremental.postings, scratch.postings);
        assert_eq!(incremental.doc_count(), scratch.doc_count());
        assert_eq!(incremental.entry_count(), scratch.entry_count());
    }

    #[test]
    fn schema_drift_errors_instead_of_panicking() {
        let mut fts = FtsIndex::new("name");
        let cols = vec!["id".to_owned()];
        assert_eq!(
            fts.insert_row("t", &cols, &row(1, "x")),
            Err(DbError::NoSuchColumn {
                table: "t".into(),
                column: "name".into()
            })
        );
    }

    #[test]
    fn unknown_terms_visit_no_postings() {
        let cols = columns();
        let mut fts = FtsIndex::new("name");
        fts.insert_row("t", &cols, &row(1, "travel charger")).unwrap();
        let (scores, visited) = fts.candidates(&query_terms("charger zq7u001"));
        assert_eq!(scores.len(), 1);
        assert_eq!(visited, 1);
    }
}
