//! The [`Database`] façade: transactions, recovery, the memory cap and
//! the query cache, tied over the WAL / MVCC / index layers.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash as _, Hasher as _};
use std::sync::Arc;

use crate::intern::{probe_hasher, KeyInterner};

use super::fts::{query_terms, FtsIndex};
use super::index::Table;
use super::mvcc::VersionChain;
use super::wal::Wal;
use super::{float_key_bits, DbError, DurabilityPolicy, JournalEntry, OrdKey, Row, Value};

/// Flat simulated cost of a cold full-text search: query parse, tf×idf
/// scoring and rank materialization on era-appropriate host hardware.
/// Milliseconds, not microseconds — searching is the most expensive
/// single DB operation the application programs run, which is exactly
/// why the memo exists.
const SEARCH_BASE_NS: u64 = 3_000_000;
/// Simulated cost per postings entry visited by a cold search.
const SEARCH_POSTING_NS: u64 = 50_000;
/// Simulated cost of serving a memoized search result.
const SEARCH_MEMO_HIT_NS: u64 = 100_000;
/// Maximum memoized search result sets. Query strings are a
/// high-cardinality key space (they mostly never revisit), so unlike the
/// `select_eq` cache the search memo must be capped: beyond the cap the
/// least-recently-used entry is evicted, deterministically.
const SEARCH_MEMO_CAP: usize = 64;

/// Inverse operations for transaction rollback.
#[derive(Debug)]
enum Undo {
    RemoveRow { table: String, key: OrdKey },
    RestoreRow { table: String, row: Arc<Row> },
    DropTable { name: String },
}

/// A distinct `select_eq` query shape, interned once.
#[derive(Debug, Clone)]
struct QueryShape {
    table: String,
    column: String,
    key: OrdKey,
}

/// One memoized result set and the sim instant it was stored at.
#[derive(Debug, Clone)]
struct CachedResult {
    rows: Vec<Arc<Row>>,
    stored_ns: u64,
}

/// Memoized `select_eq` result sets over interned query ids.
///
/// The old layout keyed a nested map by `(column.to_owned(),
/// value.ord_key())` — two allocations per lookup before a single hash
/// probe could run. Queries are drawn from a small set of distinct
/// shapes, so each shape is interned to a dense `u64` id (hashing the
/// *borrowed* table/column/value, building the owned shape only on
/// first sight) and results live in one flat id-keyed map.
/// Invalidation stays table-scoped through `by_table`, the ids ever
/// minted under each table; ids survive invalidation, so re-memoizing
/// a shape after a write is alloc-free too.
#[derive(Debug, Default)]
struct QueryCache {
    ids: KeyInterner<QueryShape>,
    results: HashMap<u64, CachedResult>,
    by_table: HashMap<String, Vec<u64>>,
}

impl QueryCache {
    /// Interns the shape `(table, column, value)` and returns its id.
    fn intern(&mut self, table: &str, column: &str, value: &Value) -> u64 {
        let mut h = probe_hasher();
        table.hash(&mut h);
        column.hash(&mut h);
        // Mirror `Value::ord_key`'s normalisation (Bool → Int, floats →
        // monotone bits) so e.g. `Bool(true)` and `Int(1)` probes agree
        // with `OrdKey::matches_value`.
        match value {
            Value::Int(i) => (0u8, i).hash(&mut h),
            Value::Bool(b) => (0u8, i64::from(*b)).hash(&mut h),
            Value::Text(t) => (1u8, t.as_str()).hash(&mut h),
            Value::Float(f) => (2u8, float_key_bits(*f)).hash(&mut h),
        }
        let before = self.ids.len();
        let id = self.ids.intern_with(
            h.finish(),
            |s| s.table == table && s.column == column && s.key.matches_value(value),
            || QueryShape {
                table: table.to_owned(),
                column: column.to_owned(),
                key: value.ord_key(),
            },
        );
        if self.ids.len() > before {
            self.by_table.entry(table.to_owned()).or_default().push(id);
        }
        id
    }

    /// Drops memoized results for every shape under `table`; returns
    /// whether anything was actually cached.
    fn invalidate_table(&mut self, table: &str) -> bool {
        let mut any = false;
        if let Some(ids) = self.by_table.get(table) {
            for id in ids {
                any |= self.results.remove(id).is_some();
            }
        }
        any
    }

    /// Drops every memoized result (ids survive).
    fn clear(&mut self) {
        self.results.clear();
    }
}

/// One memoized search result set.
#[derive(Debug, Clone)]
struct SearchEntry {
    rows: Vec<Arc<Row>>,
    stored_ns: u64,
    /// Logical access tick for LRU eviction — deterministic, never
    /// wall-clock.
    last_used: u64,
}

/// Memoized [`Database::search`] result sets, keyed by `(table, query)`.
///
/// Capped at [`SEARCH_MEMO_CAP`] entries because distinct query strings
/// form an unbounded key space; eviction is least-recently-used with the
/// key as a deterministic tie-break. Invalidation is table-scoped, like
/// the `select_eq` cache.
#[derive(Debug, Default)]
struct SearchMemo {
    entries: HashMap<(String, String), SearchEntry>,
    tick: u64,
}

impl SearchMemo {
    /// Drops memoized searches against `table`; returns whether anything
    /// was dropped.
    fn invalidate_table(&mut self, table: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(t, _), _| t != table);
        self.entries.len() != before
    }

    /// Inserts under the cap, evicting the least-recently-used entry
    /// (ties broken by key, so eviction is deterministic regardless of
    /// `HashMap` iteration order).
    fn insert(&mut self, key: (String, String), entry: SearchEntry) {
        if self.entries.len() >= SEARCH_MEMO_CAP && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by(|a, b| (a.1.last_used, a.0).cmp(&(b.1.last_used, b.0)))
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, entry);
    }
}

/// A pinned read snapshot (see [`Database::begin_snapshot`]).
///
/// The snapshot observes the database exactly as of the commit version
/// it was opened at; concurrent writers proceed without blocking it and
/// without becoming visible to it. Close it with
/// [`Database::end_snapshot`] so dead row versions can be pruned.
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
}

impl Snapshot {
    /// The commit version the snapshot is pinned at.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The embedded database engine.
///
/// ```
/// use hostsite::db::{Database, Value};
///
/// let mut db = Database::new();
/// db.create_table("products", &["sku", "name", "price"], &["name"])?;
/// db.insert("products", vec![1.into(), "widget".into(), Value::Float(4.99)])?;
/// let row = db.get("products", &1.into())?.unwrap();
/// assert_eq!(row[1], Value::Text("widget".into()));
/// # Ok::<(), hostsite::db::DbError>(())
/// ```
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    wal: Wal,
    memory_limit: Option<usize>,
    footprint: usize,
    tx_depth: u32,
    undo: Vec<Undo>,
    tx_journal: Vec<JournalEntry>,
    /// Memoized `select_eq` result sets; interior mutability because the
    /// read path takes `&self`. Off by default so uncached behaviour is
    /// untouched.
    query_cache: RefCell<QueryCache>,
    /// Memoized full-text search result sets; capped (see
    /// [`SearchMemo`]) and gated by the same enable/TTL knobs as the
    /// query cache.
    search_memo: RefCell<SearchMemo>,
    /// Simulated CPU accrued by [`Database::search`] since the last
    /// drain; interior mutability because the read path takes `&self`.
    search_cost_ns: Cell<u64>,
    query_cache_enabled: bool,
    /// Optional freshness window for cached query results; `None` (the
    /// default) keeps entries until a write invalidates them.
    query_cache_ttl_ns: Option<u64>,
    /// The engine's view of sim time, used only for TTL freshness.
    now_ns: u64,
    /// Monotone commit-version counter stamped onto row versions.
    commit_version: u64,
    /// Open snapshots: pinned commit version → open count.
    pinned: BTreeMap<u64, u32>,
    /// `(row, index)` entries rebuilt by the last recovery (derived
    /// projections are rebuilt from base rows, never replayed).
    index_entries_rebuilt: u64,
}

impl Database {
    /// Creates an unconstrained (server-side) database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an embedded database capped at `limit` bytes of row data —
    /// the small-footprint configuration for handheld devices (§7).
    pub fn with_memory_limit(limit: usize) -> Self {
        Database {
            memory_limit: Some(limit),
            ..Self::default()
        }
    }

    /// Approximate bytes of row data currently stored (live versions).
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// The durable prefix of the write-ahead log — exactly what survives
    /// a crash. Under the default [`DurabilityPolicy`] every commit is
    /// flushed immediately, so this is the full history; under group
    /// commit the un-fsynced tail (see
    /// [`pending_journal_len`](Database::pending_journal_len)) is absent.
    pub fn journal(&self) -> &[JournalEntry] {
        self.wal.durable()
    }

    /// Entries committed but not yet fsynced — the durability window a
    /// crash would lose.
    pub fn pending_journal_len(&self) -> usize {
        self.wal.pending_len()
    }

    /// Forces an fsync of the pending tail, pricing it like any other.
    pub fn sync_journal(&mut self) {
        self.wal.sync();
    }

    /// Replaces the durability policy. The pending tail is flushed first
    /// under the old policy.
    pub fn set_durability(&mut self, policy: DurabilityPolicy) {
        self.wal.set_policy(policy);
    }

    /// The durability policy in force.
    pub fn durability(&self) -> DurabilityPolicy {
        self.wal.policy()
    }

    /// Total fsyncs the WAL has performed.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Returns and resets the simulated fsync cost accrued since the
    /// last drain. The host computer charges this to the request that
    /// triggered the flushes, so durability shows up as host CPU time.
    pub fn drain_commit_cost_ns(&mut self) -> u64 {
        self.wal.drain_cost_ns()
    }

    /// `(row, index)` entries the last [`Database::recover`] rebuilt.
    pub fn index_entries_rebuilt(&self) -> u64 {
        self.index_entries_rebuilt
    }

    /// Enables or disables the `select_eq` query cache. Disabling also
    /// flushes it. The cache changes no observable query results — writes
    /// invalidate the touched table's entries before they land in the
    /// journal — so flipping this knob never changes simulation numbers.
    pub fn set_query_cache(&mut self, enabled: bool) {
        self.query_cache_enabled = enabled;
        if !enabled {
            self.query_cache.borrow_mut().clear();
            self.search_memo.borrow_mut().entries.clear();
        }
    }

    /// True when the query cache is on.
    pub fn query_cache_enabled(&self) -> bool {
        self.query_cache_enabled
    }

    /// Sets (or clears) the query-cache TTL. A cached result stored at
    /// `t` is fresh strictly before `t + ttl` and expired at exactly
    /// `t + ttl` — the same boundary rule as the page and content
    /// caches. `None` (the default) disables expiry.
    pub fn set_query_cache_ttl(&mut self, ttl_ns: Option<u64>) {
        self.query_cache_ttl_ns = ttl_ns;
    }

    /// The query-cache TTL in force.
    pub fn query_cache_ttl_ns(&self) -> Option<u64> {
        self.query_cache_ttl_ns
    }

    /// Advances the engine's view of simulated time (TTL freshness).
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Drops every cached query result and memoized search (all tables).
    pub fn flush_query_cache(&mut self) {
        self.query_cache.borrow_mut().clear();
        self.search_memo.borrow_mut().entries.clear();
    }

    /// Drops cached query results *and* memoized search results for one
    /// table — the transactional invalidation hook called by every
    /// successful write. A write to the catalog must take the
    /// `select_eq` entries and the search memo down together; both are
    /// projections of the same base rows.
    fn invalidate_table(&self, table_name: &str) {
        if !self.query_cache_enabled {
            return;
        }
        let mut any = self.query_cache.borrow_mut().invalidate_table(table_name);
        any |= self.search_memo.borrow_mut().invalidate_table(table_name);
        if any {
            obs::metrics::incr("host.db_cache.invalidations");
        }
    }

    /// True when a result stored at `stored_ns` is still fresh.
    fn cache_entry_fresh(&self, stored_ns: u64) -> bool {
        self.query_cache_ttl_ns
            .is_none_or(|ttl| self.now_ns.saturating_sub(stored_ns) < ttl)
    }

    /// Rebuilds a database by replaying a journal — crash recovery under
    /// the default durability policy.
    ///
    /// Replay goes through an internal, side-effect-free apply path: it
    /// records nothing to the new log (the input journal *is* the log),
    /// touches no query cache and bumps no observability counters —
    /// recovery is metrics-silent and idempotent. Secondary indexes are
    /// not replayed at all; they are rebuilt from the recovered base
    /// rows afterwards, as derived projections.
    ///
    /// # Errors
    ///
    /// Propagates any error the replayed operations raise (a corrupt
    /// journal) — as an `Err`, never a panic.
    pub fn recover(journal: &[JournalEntry]) -> Result<Database, DbError> {
        Self::recover_with_policy(journal, DurabilityPolicy::default())
    }

    /// [`Database::recover`], preserving a non-default durability policy
    /// across the crash.
    pub fn recover_with_policy(
        journal: &[JournalEntry],
        policy: DurabilityPolicy,
    ) -> Result<Database, DbError> {
        let mut db = Database::new();
        for entry in journal {
            db.apply_recovered(entry)?;
        }
        // Derived projections: rebuild every secondary index from the
        // recovered base rows.
        let mut rebuilt = 0u64;
        let names: Vec<String> = db.tables.keys().cloned().collect();
        for name in names {
            let table = db.tables.get_mut(&name).expect("own table");
            rebuilt += table.rebuild_indexes(&name)?;
        }
        db.index_entries_rebuilt = rebuilt;
        db.wal.install_durable(journal.to_vec());
        db.wal.set_policy(policy);
        Ok(db)
    }

    /// Applies one journal entry to base storage with no side effects:
    /// no log append, no undo, no cache invalidation, no metrics, no
    /// incremental index maintenance.
    fn apply_recovered(&mut self, entry: &JournalEntry) -> Result<(), DbError> {
        match entry {
            JournalEntry::CreateTable {
                name,
                columns,
                indexes,
            } => {
                if self.tables.contains_key(name) {
                    return Err(DbError::TableExists(name.clone()));
                }
                if columns.is_empty() {
                    return Err(DbError::SchemaMismatch(
                        "a table needs at least one column".into(),
                    ));
                }
                for idx in indexes {
                    if !columns.contains(idx) {
                        return Err(DbError::NoSuchColumn {
                            table: name.clone(),
                            column: idx.clone(),
                        });
                    }
                }
                self.tables.insert(
                    name.clone(),
                    Table {
                        columns: columns.clone(),
                        rows: BTreeMap::new(),
                        indexes: indexes
                            .iter()
                            .map(|s| (s.clone(), BTreeMap::new()))
                            .collect(),
                        fts: None,
                    },
                );
            }
            JournalEntry::Insert { table, row } => {
                {
                    let t = self.table(table)?;
                    Self::validate_row(t, table, row)?;
                    if t.live(&row[0].ord_key()).is_some() {
                        return Err(DbError::DuplicateKey(row[0].to_string()));
                    }
                }
                self.footprint += Self::row_footprint(row);
                let version = self.next_version();
                let t = self.tables.get_mut(table).expect("checked above");
                let chain = t.rows.entry(row[0].ord_key()).or_default();
                chain.install(Arc::new(row.clone()), version);
                chain.prune(None);
            }
            JournalEntry::Update { table, row } => {
                let old = {
                    let t = self.table(table)?;
                    Self::validate_row(t, table, row)?;
                    t.live(&row[0].ord_key()).cloned().ok_or(DbError::NotFound)?
                };
                self.footprint = self.footprint.saturating_sub(Self::row_footprint(&old));
                self.footprint += Self::row_footprint(row);
                let version = self.next_version();
                let t = self.tables.get_mut(table).expect("checked above");
                let chain = t.rows.get_mut(&row[0].ord_key()).expect("live row exists");
                chain.install(Arc::new(row.clone()), version);
                chain.prune(None);
            }
            JournalEntry::Delete { table, key } => {
                let old = {
                    let t = self.table(table)?;
                    t.live(&key.ord_key()).cloned().ok_or(DbError::NotFound)?
                };
                self.footprint = self.footprint.saturating_sub(Self::row_footprint(&old));
                let version = self.next_version();
                let t = self.tables.get_mut(table).expect("checked above");
                let ord = key.ord_key();
                if let Some(chain) = t.rows.get_mut(&ord) {
                    chain.remove_live(version);
                    chain.prune(None);
                    if chain.is_empty() {
                        t.rows.remove(&ord);
                    }
                }
            }
        }
        Ok(())
    }

    /// Creates a table. Column 0 is the primary key; `indexes` lists
    /// columns to maintain secondary indexes on.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on duplicate name, [`DbError::SchemaMismatch`]
    /// on an empty column list, [`DbError::NoSuchColumn`] for unknown index
    /// columns.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[&str],
        indexes: &[&str],
    ) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        if columns.is_empty() {
            return Err(DbError::SchemaMismatch(
                "a table needs at least one column".into(),
            ));
        }
        for idx in indexes {
            if !columns.contains(idx) {
                return Err(DbError::NoSuchColumn {
                    table: name.to_owned(),
                    column: (*idx).to_owned(),
                });
            }
        }
        self.tables.insert(
            name.to_owned(),
            Table {
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                rows: BTreeMap::new(),
                indexes: indexes
                    .iter()
                    .map(|s| ((*s).to_owned(), BTreeMap::new()))
                    .collect(),
                fts: None,
            },
        );
        self.record(JournalEntry::CreateTable {
            name: name.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            indexes: indexes.iter().map(|s| (*s).to_owned()).collect(),
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::DropTable {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Lists table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of (live) rows in `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn len(&self, table: &str) -> Result<usize, DbError> {
        Ok(self
            .table(table)?
            .rows
            .values()
            .filter(|c| c.live().is_some())
            .count())
    }

    /// True when `table` has no rows.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn is_empty(&self, table: &str) -> Result<bool, DbError> {
        Ok(self.len(table)? == 0)
    }

    fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    fn validate_row(table: &Table, table_name: &str, row: &Row) -> Result<(), DbError> {
        if row.len() != table.columns.len() {
            return Err(DbError::SchemaMismatch(format!(
                "table {table_name:?} has {} columns, row has {}",
                table.columns.len(),
                row.len()
            )));
        }
        for v in row {
            if let Value::Float(f) = v {
                if f.is_nan() {
                    return Err(DbError::NanRejected);
                }
            }
        }
        Ok(())
    }

    fn charge(&mut self, bytes: usize) -> Result<(), DbError> {
        if let Some(limit) = self.memory_limit {
            if self.footprint + bytes > limit {
                return Err(DbError::OutOfMemory { limit });
            }
        }
        self.footprint += bytes;
        Ok(())
    }

    fn row_footprint(row: &Row) -> usize {
        row.iter().map(Value::footprint).sum()
    }

    fn record(&mut self, entry: JournalEntry) {
        if self.tx_depth > 0 {
            self.tx_journal.push(entry);
        } else {
            self.wal.commit(std::iter::once(entry));
        }
    }

    /// The next commit version, stamped onto the row versions a write
    /// installs.
    fn next_version(&mut self) -> u64 {
        self.commit_version += 1;
        self.commit_version
    }

    /// The smallest pinned commit version, or `None` with no open
    /// snapshots (dead row versions are then unreachable).
    fn oldest_pin(&self) -> Option<u64> {
        self.pinned.keys().next().copied()
    }

    /// Opens a read snapshot pinned at the current commit version. Reads
    /// through it (see [`Database::snapshot_get`]) observe a frozen,
    /// consistent view; writers proceed without blocking it. Close with
    /// [`Database::end_snapshot`].
    pub fn begin_snapshot(&mut self) -> Snapshot {
        let version = self.commit_version;
        *self.pinned.entry(version).or_insert(0) += 1;
        Snapshot { version }
    }

    /// Closes a snapshot, allowing row versions only it could see to be
    /// pruned by later writes.
    pub fn end_snapshot(&mut self, snapshot: Snapshot) {
        if let Some(count) = self.pinned.get_mut(&snapshot.version) {
            *count -= 1;
            if *count == 0 {
                self.pinned.remove(&snapshot.version);
            }
        }
    }

    /// Number of snapshots currently open.
    pub fn open_snapshots(&self) -> usize {
        self.pinned.values().map(|&c| c as usize).sum()
    }

    /// [`Database::get`] as of `snapshot`: the row image the pinned
    /// version observes, regardless of later writes.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn snapshot_get(
        &self,
        snapshot: &Snapshot,
        table_name: &str,
        key: &Value,
    ) -> Result<Option<Arc<Row>>, DbError> {
        Ok(self
            .table(table_name)?
            .rows
            .get(&key.ord_key())
            .and_then(|chain| chain.visible_at(snapshot.version))
            .cloned())
    }

    /// [`Database::select`] as of `snapshot`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn snapshot_select(
        &self,
        snapshot: &Snapshot,
        table_name: &str,
        predicate: impl Fn(&Row) -> bool,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        Ok(self
            .table(table_name)?
            .rows
            .values()
            .filter_map(|chain| chain.visible_at(snapshot.version))
            .filter(|r| predicate(r.as_ref()))
            .cloned()
            .collect())
    }

    /// [`Database::select_eq`] as of `snapshot`. Always scans the version
    /// chains: secondary indexes are projections of the *live* state and
    /// cannot serve historical reads.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for unknown columns.
    pub fn snapshot_select_eq(
        &self,
        snapshot: &Snapshot,
        table_name: &str,
        column: &str,
        value: &Value,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        let table = self.table(table_name)?;
        let ci = table
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table_name.to_owned(),
                column: column.to_owned(),
            })?;
        Ok(table
            .rows
            .values()
            .filter_map(|chain| chain.visible_at(snapshot.version))
            .filter(|r| r[ci] == *value)
            .cloned()
            .collect())
    }

    /// Inserts a row (column 0 is the primary key).
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateKey`] if the key exists, plus schema/memory
    /// errors.
    pub fn insert(&mut self, table_name: &str, row: Row) -> Result<(), DbError> {
        {
            let table = self.table(table_name)?;
            Self::validate_row(table, table_name, &row)?;
            if table.live(&row[0].ord_key()).is_some() {
                return Err(DbError::DuplicateKey(row[0].to_string()));
            }
        }
        let bytes = Self::row_footprint(&row);
        self.charge(bytes)?;
        let version = self.next_version();
        let pin = self.oldest_pin();
        let key = row[0].ord_key();
        let table = self.tables.get_mut(table_name).expect("checked above");
        if let Err(e) = table.index_insert(table_name, &row) {
            self.footprint = self.footprint.saturating_sub(bytes);
            return Err(e);
        }
        let chain = table.rows.entry(key.clone()).or_default();
        chain.install(Arc::new(row.clone()), version);
        chain.prune(pin);
        self.invalidate_table(table_name);
        self.record(JournalEntry::Insert {
            table: table_name.to_owned(),
            row,
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RemoveRow {
                table: table_name.to_owned(),
                key,
            });
        }
        Ok(())
    }

    /// Fetches a row by primary key. The returned [`Arc`] is a shared
    /// handle into the row store — cloning it is a refcount bump, not a
    /// deep copy; callers that want to mutate clone the inner `Row`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn get(&self, table_name: &str, key: &Value) -> Result<Option<Arc<Row>>, DbError> {
        Ok(self.table(table_name)?.live(&key.ord_key()).cloned())
    }

    /// Replaces the row whose primary key equals `row[0]`.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when no such row exists, plus schema/memory
    /// errors.
    pub fn update(&mut self, table_name: &str, row: Row) -> Result<(), DbError> {
        let old = {
            let table = self.table(table_name)?;
            Self::validate_row(table, table_name, &row)?;
            table
                .live(&row[0].ord_key())
                .cloned()
                .ok_or(DbError::NotFound)?
        };
        let old_bytes = Self::row_footprint(&old);
        let new_bytes = Self::row_footprint(&row);
        self.footprint = self.footprint.saturating_sub(old_bytes);
        if let Err(e) = self.charge(new_bytes) {
            self.footprint += old_bytes; // restore accounting
            return Err(e);
        }
        let version = self.next_version();
        let pin = self.oldest_pin();
        let key = row[0].ord_key();
        let table = self.tables.get_mut(table_name).expect("checked above");
        let reindexed = table
            .index_remove(table_name, &old)
            .and_then(|()| table.index_insert(table_name, &row));
        if let Err(e) = reindexed {
            self.footprint = self.footprint.saturating_sub(new_bytes) + old_bytes;
            return Err(e);
        }
        let chain = table.rows.get_mut(&key).expect("live row exists");
        chain.install(Arc::new(row.clone()), version);
        chain.prune(pin);
        self.invalidate_table(table_name);
        self.record(JournalEntry::Update {
            table: table_name.to_owned(),
            row,
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RestoreRow {
                table: table_name.to_owned(),
                row: old,
            });
        }
        Ok(())
    }

    /// Deletes a row by primary key.
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] when no such row exists.
    pub fn delete(&mut self, table_name: &str, key: &Value) -> Result<(), DbError> {
        let old = {
            let table = self.table(table_name)?;
            table.live(&key.ord_key()).cloned().ok_or(DbError::NotFound)?
        };
        self.footprint = self.footprint.saturating_sub(Self::row_footprint(&old));
        let version = self.next_version();
        let pin = self.oldest_pin();
        let table = self.tables.get_mut(table_name).expect("checked above");
        if let Err(e) = table.index_remove(table_name, &old) {
            self.footprint += Self::row_footprint(&old);
            return Err(e);
        }
        let ord = key.ord_key();
        if let Some(chain) = table.rows.get_mut(&ord) {
            chain.remove_live(version);
            chain.prune(pin);
            if chain.is_empty() {
                table.rows.remove(&ord);
            }
        }
        self.invalidate_table(table_name);
        self.record(JournalEntry::Delete {
            table: table_name.to_owned(),
            key: key.clone(),
        });
        if self.tx_depth > 0 {
            self.undo.push(Undo::RestoreRow {
                table: table_name.to_owned(),
                row: old,
            });
        }
        Ok(())
    }

    /// Full scan returning rows matching `predicate`, in primary-key order.
    /// Rows come back as shared handles ([`Arc<Row>`]), not copies.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn select(
        &self,
        table_name: &str,
        predicate: impl Fn(&Row) -> bool,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        Ok(self
            .table(table_name)?
            .rows
            .values()
            .filter_map(VersionChain::live)
            .filter(|r| predicate(r.as_ref()))
            .cloned()
            .collect())
    }

    /// Index lookup: rows whose `column` equals `value`. Uses the
    /// secondary index when one exists, otherwise falls back to a scan
    /// (the trivial query planner). When the query cache is enabled the
    /// result set is memoized per table and served until the next write
    /// to that table invalidates it (or, with a TTL set, until it
    /// expires).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for unknown columns.
    pub fn select_eq(
        &self,
        table_name: &str,
        column: &str,
        value: &Value,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        let table = self.table(table_name)?;
        let ci = table
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table_name.to_owned(),
                column: column.to_owned(),
            })?;
        // The id is interned once per distinct query shape; when the
        // cache is disabled no key is built at all.
        let cache_id = if self.query_cache_enabled {
            let mut cache = self.query_cache.borrow_mut();
            let id = cache.intern(table_name, column, value);
            if let Some(entry) = cache.results.get(&id) {
                if self.cache_entry_fresh(entry.stored_ns) {
                    obs::metrics::incr("host.db_cache.hits");
                    return Ok(entry.rows.clone());
                }
            }
            Some(id)
        } else {
            None
        };
        let rows: Vec<Arc<Row>> = if let Some(index) = table.indexes.get(column) {
            index
                .get(&value.ord_key())
                .map(|pks| pks.iter().filter_map(|pk| table.live(pk)).cloned().collect())
                .unwrap_or_default()
        } else {
            table
                .rows
                .values()
                .filter_map(VersionChain::live)
                .filter(|r| r[ci] == *value)
                .cloned()
                .collect()
        };
        if let Some(id) = cache_id {
            obs::metrics::incr("host.db_cache.misses");
            self.query_cache.borrow_mut().results.insert(
                id,
                CachedResult {
                    rows: rows.clone(),
                    stored_ns: self.now_ns,
                },
            );
        }
        Ok(rows)
    }

    /// True when `column` has a secondary index on `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn has_index(&self, table: &str, column: &str) -> Result<bool, DbError> {
        Ok(self.table(table)?.indexes.contains_key(column))
    }

    /// Registers a full-text index over `column` and builds it from the
    /// live rows, replacing any existing registration. Returns the
    /// `(term, primary key)` postings entry count built.
    ///
    /// Registration is engine configuration, like the query-cache knobs:
    /// it is **not** journaled, so a crash drops both the postings and
    /// the registration — the recovery path re-registers and pays the
    /// rebuild (see `crash_and_recover_db` pricing the entry count into
    /// `host.db.index_rebuild_ns`).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] / [`DbError::NoSuchColumn`] for unknown
    /// names.
    pub fn create_fts(&mut self, table_name: &str, column: &str) -> Result<u64, DbError> {
        let table = self
            .tables
            .get_mut(table_name)
            .ok_or_else(|| DbError::NoSuchTable(table_name.to_owned()))?;
        if table.column_index(column).is_none() {
            return Err(DbError::NoSuchColumn {
                table: table_name.to_owned(),
                column: column.to_owned(),
            });
        }
        let mut fts = FtsIndex::new(column);
        for chain in table.rows.values() {
            if let Some(row) = chain.live() {
                fts.insert_row(table_name, &table.columns, row)?;
            }
        }
        let entries = fts.entry_count();
        table.fts = Some(fts);
        Ok(entries)
    }

    /// True when `table` has a full-text index registered.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] when the table does not exist.
    pub fn has_fts(&self, table: &str) -> Result<bool, DbError> {
        Ok(self.table(table)?.fts.is_some())
    }

    /// Every `(table, column)` full-text registration, sorted. The
    /// recovery path captures these before a crash and re-registers
    /// afterwards, since registrations are not journaled.
    pub fn fts_registrations(&self) -> Vec<(String, String)> {
        let mut regs: Vec<(String, String)> = self
            .tables
            .iter()
            .filter_map(|(name, t)| t.fts.as_ref().map(|f| (name.clone(), f.column.clone())))
            .collect();
        regs.sort();
        regs
    }

    /// Full-text search over `table`'s registered index: rows matching at
    /// least one query term, ranked by fixed-point tf × idf descending
    /// with ties broken by primary key ascending. When the query cache is
    /// enabled the result set is memoized per `(table, query)` — capped,
    /// TTL-checked and invalidated by writes exactly like `select_eq`
    /// entries — and simulated CPU accrues for the host to drain (see
    /// [`Database::drain_search_cost_ns`]).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables,
    /// [`DbError::SchemaMismatch`] when no full-text index is registered.
    pub fn search(&self, table_name: &str, query: &str) -> Result<Vec<Arc<Row>>, DbError> {
        let table = self.table(table_name)?;
        let Some(fts) = table.fts.as_ref() else {
            return Err(DbError::SchemaMismatch(format!(
                "no full-text index on table {table_name:?}"
            )));
        };
        if self.query_cache_enabled {
            let mut memo = self.search_memo.borrow_mut();
            memo.tick += 1;
            let tick = memo.tick;
            if let Some(entry) = memo
                .entries
                .get_mut(&(table_name.to_owned(), query.to_owned()))
            {
                if self.cache_entry_fresh(entry.stored_ns) {
                    entry.last_used = tick;
                    obs::metrics::incr("host.db_cache.search_hits");
                    self.search_cost_ns
                        .set(self.search_cost_ns.get() + SEARCH_MEMO_HIT_NS);
                    return Ok(entry.rows.clone());
                }
            }
        }
        let (scores, visited) = fts.candidates(&query_terms(query));
        let rows = Self::rank(table, scores);
        self.search_cost_ns
            .set(self.search_cost_ns.get() + SEARCH_BASE_NS + SEARCH_POSTING_NS * visited);
        if self.query_cache_enabled {
            obs::metrics::incr("host.db_cache.search_misses");
            let mut memo = self.search_memo.borrow_mut();
            let tick = memo.tick;
            memo.insert(
                (table_name.to_owned(), query.to_owned()),
                SearchEntry {
                    rows: rows.clone(),
                    stored_ns: self.now_ns,
                    last_used: tick,
                },
            );
        }
        Ok(rows)
    }

    /// Brute-force reference for [`Database::search`]: builds a fresh
    /// postings projection from the live rows on every call and ranks
    /// with the identical scorer. No index, no memo, no metrics, no
    /// simulated cost — this exists so tests and the F12 experiment can
    /// assert the incrementally-maintained index byte-equals a
    /// from-scratch scan.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] / [`DbError::NoSuchColumn`] for unknown
    /// names.
    pub fn search_scan(
        &self,
        table_name: &str,
        column: &str,
        query: &str,
    ) -> Result<Vec<Arc<Row>>, DbError> {
        let table = self.table(table_name)?;
        let mut scratch = FtsIndex::new(column);
        for chain in table.rows.values() {
            if let Some(row) = chain.live() {
                scratch.insert_row(table_name, &table.columns, row)?;
            }
        }
        let (scores, _) = scratch.candidates(&query_terms(query));
        Ok(Self::rank(table, scores))
    }

    /// Materializes scored primary keys in rank order: score descending,
    /// primary key ascending on ties — the deterministic total order.
    fn rank(table: &Table, scores: BTreeMap<OrdKey, u64>) -> Vec<Arc<Row>> {
        let mut ranked: Vec<(u64, OrdKey)> = scores.into_iter().map(|(pk, s)| (s, pk)).collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        ranked
            .iter()
            .filter_map(|(_, pk)| table.live(pk))
            .cloned()
            .collect()
    }

    /// Returns and resets the simulated search CPU accrued since the
    /// last drain — the search twin of
    /// [`Database::drain_commit_cost_ns`]; the host charges it to the
    /// request that ran the searches.
    pub fn drain_search_cost_ns(&mut self) -> u64 {
        self.search_cost_ns.replace(0)
    }

    /// Runs `body` atomically: all of its writes commit together (one
    /// group-commit unit in the WAL), or — if it returns `Err` — none of
    /// them apply and the log is untouched.
    ///
    /// # Errors
    ///
    /// Returns the body's error after rolling back.
    ///
    /// # Panics
    ///
    /// Panics on nested transactions (single-writer engine).
    pub fn transaction<T, E>(
        &mut self,
        body: impl FnOnce(&mut Database) -> Result<T, E>,
    ) -> Result<T, E> {
        assert_eq!(self.tx_depth, 0, "nested transactions are not supported");
        self.tx_depth = 1;
        self.undo.clear();
        self.tx_journal.clear();
        let result = body(self);
        self.tx_depth = 0;
        match result {
            Ok(v) => {
                let entries = std::mem::take(&mut self.tx_journal);
                self.wal.commit(entries);
                self.undo.clear();
                Ok(v)
            }
            Err(e) => {
                let undo = std::mem::take(&mut self.undo);
                // Rolling back mutates tables again, so any query results
                // cached *inside* the failed transaction are stale too —
                // re-invalidate every touched table after the replay.
                let touched: Vec<String> = undo
                    .iter()
                    .map(|op| match op {
                        Undo::RemoveRow { table, .. } | Undo::RestoreRow { table, .. } => {
                            table.clone()
                        }
                        Undo::DropTable { name } => name.clone(),
                    })
                    .collect();
                for op in undo.into_iter().rev() {
                    match op {
                        Undo::RemoveRow { table, key } => {
                            let version = self.next_version();
                            let pin = self.oldest_pin();
                            if let Some(t) = self.tables.get_mut(&table) {
                                let removed =
                                    t.rows.get_mut(&key).and_then(|c| c.remove_live(version));
                                if let Some(row) = removed {
                                    // Undo of an insert into a table that
                                    // passed create-time validation:
                                    // schema drift is impossible here.
                                    let _ = t.index_remove(&table, &row);
                                    self.footprint =
                                        self.footprint.saturating_sub(Self::row_footprint(&row));
                                }
                                if let Some(chain) = t.rows.get_mut(&key) {
                                    chain.prune(pin);
                                    if chain.is_empty() {
                                        t.rows.remove(&key);
                                    }
                                }
                            }
                        }
                        Undo::RestoreRow { table, row } => {
                            let version = self.next_version();
                            let pin = self.oldest_pin();
                            if let Some(t) = self.tables.get_mut(&table) {
                                let key = row[0].ord_key();
                                let current =
                                    t.rows.get_mut(&key).and_then(|c| c.remove_live(version));
                                if let Some(current) = current {
                                    let _ = t.index_remove(&table, &current);
                                    self.footprint = self
                                        .footprint
                                        .saturating_sub(Self::row_footprint(&current));
                                }
                                self.footprint += Self::row_footprint(&row);
                                let _ = t.index_insert(&table, &row);
                                let chain = t.rows.entry(key).or_default();
                                chain.install(row, version);
                                chain.prune(pin);
                            }
                        }
                        Undo::DropTable { name } => {
                            self.tables.remove(&name);
                        }
                    }
                }
                for table in touched {
                    self.invalidate_table(&table);
                }
                self.tx_journal.clear();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn products() -> Database {
        let mut db = Database::new();
        db.create_table("products", &["sku", "name", "price", "stock"], &["name"])
            .unwrap();
        db.insert(
            "products",
            vec![1.into(), "widget".into(), Value::Float(4.99), 10.into()],
        )
        .unwrap();
        db.insert(
            "products",
            vec![2.into(), "gadget".into(), Value::Float(9.99), 3.into()],
        )
        .unwrap();
        db
    }

    #[test]
    fn crud_round_trip() {
        let mut db = products();
        assert_eq!(db.len("products").unwrap(), 2);
        let row = db.get("products", &1.into()).unwrap().unwrap();
        assert_eq!(row[1], Value::Text("widget".into()));

        db.update(
            "products",
            vec![1.into(), "widget".into(), Value::Float(3.99), 9.into()],
        )
        .unwrap();
        let row = db.get("products", &1.into()).unwrap().unwrap();
        assert_eq!(row[2], Value::Float(3.99));

        db.delete("products", &2.into()).unwrap();
        assert_eq!(db.get("products", &2.into()).unwrap(), None);
        assert_eq!(db.len("products").unwrap(), 1);
    }

    #[test]
    fn duplicate_keys_and_missing_rows_error() {
        let mut db = products();
        let dup = db.insert(
            "products",
            vec![1.into(), "x".into(), Value::Float(0.0), 0.into()],
        );
        assert_eq!(dup, Err(DbError::DuplicateKey("1".into())));
        assert_eq!(db.delete("products", &99.into()), Err(DbError::NotFound));
        assert_eq!(
            db.update(
                "products",
                vec![99.into(), "x".into(), Value::Float(0.0), 0.into()]
            ),
            Err(DbError::NotFound)
        );
    }

    #[test]
    fn schema_is_enforced() {
        let mut db = products();
        assert!(matches!(
            db.insert("products", vec![3.into()]),
            Err(DbError::SchemaMismatch(_))
        ));
        assert_eq!(
            db.insert("nope", vec![1.into()]),
            Err(DbError::NoSuchTable("nope".into()))
        );
        assert_eq!(
            db.insert(
                "products",
                vec![3.into(), "n".into(), Value::Float(f64::NAN), 0.into()]
            ),
            Err(DbError::NanRejected)
        );
    }

    #[test]
    fn secondary_index_lookup_matches_scan() {
        let mut db = products();
        db.insert(
            "products",
            vec![3.into(), "widget".into(), Value::Float(5.99), 7.into()],
        )
        .unwrap();
        assert!(db.has_index("products", "name").unwrap());
        let by_index = db.select_eq("products", "name", &"widget".into()).unwrap();
        let by_scan = db
            .select("products", |r| r[1] == Value::Text("widget".into()))
            .unwrap();
        assert_eq!(by_index.len(), 2);
        let mut a: Vec<i64> = by_index
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => 0,
            })
            .collect();
        let mut b: Vec<i64> = by_scan
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => 0,
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn index_tracks_updates_and_deletes() {
        let mut db = products();
        db.update(
            "products",
            vec![1.into(), "renamed".into(), Value::Float(4.99), 10.into()],
        )
        .unwrap();
        assert!(db
            .select_eq("products", "name", &"widget".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.select_eq("products", "name", &"renamed".into())
                .unwrap()
                .len(),
            1
        );
        db.delete("products", &1.into()).unwrap();
        assert!(db
            .select_eq("products", "name", &"renamed".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_equality_falls_back_to_scan() {
        let db = products();
        assert!(!db.has_index("products", "stock").unwrap());
        let rows = db.select_eq("products", "stock", &3.into()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Text("gadget".into()));
    }

    #[test]
    fn transaction_commits_atomically() {
        let mut db = products();
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.update(
                "products",
                vec![1.into(), "widget".into(), Value::Float(4.99), 9.into()],
            )?;
            tx.update(
                "products",
                vec![2.into(), "gadget".into(), Value::Float(9.99), 2.into()],
            )?;
            Ok(())
        });
        result.unwrap();
        assert_eq!(
            db.get("products", &1.into()).unwrap().unwrap()[3],
            Value::Int(9)
        );
        assert_eq!(
            db.get("products", &2.into()).unwrap().unwrap()[3],
            Value::Int(2)
        );
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut db = products();
        let journal_before = db.journal().len();
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.insert(
                "products",
                vec![7.into(), "new".into(), Value::Float(1.0), 1.into()],
            )?;
            tx.update(
                "products",
                vec![1.into(), "poked".into(), Value::Float(0.0), 0.into()],
            )?;
            tx.delete("products", &2.into())?;
            Err(DbError::NotFound) // simulate business-rule failure
        });
        assert!(result.is_err());
        // All three writes undone.
        assert_eq!(db.get("products", &7.into()).unwrap(), None);
        assert_eq!(
            db.get("products", &1.into()).unwrap().unwrap()[1],
            Value::Text("widget".into())
        );
        assert!(db.get("products", &2.into()).unwrap().is_some());
        // Journal untouched.
        assert_eq!(db.journal().len(), journal_before);
        // Indexes consistent after rollback.
        assert_eq!(
            db.select_eq("products", "name", &"widget".into())
                .unwrap()
                .len(),
            1
        );
        assert!(db
            .select_eq("products", "name", &"poked".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn journal_recovery_reproduces_state() {
        let mut db = products();
        db.update(
            "products",
            vec![1.into(), "widget".into(), Value::Float(2.49), 4.into()],
        )
        .unwrap();
        db.delete("products", &2.into()).unwrap();
        db.insert(
            "products",
            vec![5.into(), "sprocket".into(), Value::Float(7.0), 2.into()],
        )
        .unwrap();

        let recovered = Database::recover(db.journal()).unwrap();
        assert_eq!(
            recovered.len("products").unwrap(),
            db.len("products").unwrap()
        );
        for key in [1i64, 5] {
            assert_eq!(
                recovered.get("products", &key.into()).unwrap(),
                db.get("products", &key.into()).unwrap()
            );
        }
        assert_eq!(recovered.get("products", &2.into()).unwrap(), None);
        // Indexes also rebuilt.
        assert_eq!(
            recovered
                .select_eq("products", "name", &"sprocket".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn memory_cap_rejects_growth_but_stays_consistent() {
        let mut db = Database::with_memory_limit(200);
        db.create_table("kv", &["k", "v"], &[]).unwrap();
        db.insert("kv", vec![1.into(), "small".into()]).unwrap();
        let big = "x".repeat(500);
        assert!(matches!(
            db.insert("kv", vec![2.into(), big.clone().into()]),
            Err(DbError::OutOfMemory { limit: 200 })
        ));
        assert_eq!(db.len("kv").unwrap(), 1);
        // Updates that would blow the cap are rejected and leave the row.
        assert!(matches!(
            db.update("kv", vec![1.into(), big.into()]),
            Err(DbError::OutOfMemory { .. })
        ));
        assert_eq!(
            db.get("kv", &1.into()).unwrap().unwrap()[1],
            Value::Text("small".into())
        );
        // Deleting reclaims space.
        let before = db.footprint();
        db.delete("kv", &1.into()).unwrap();
        assert!(db.footprint() < before);
    }

    #[test]
    fn footprint_tracks_inserts_and_deletes() {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &[]).unwrap();
        assert_eq!(db.footprint(), 0);
        db.insert("t", vec![1.into(), "hello".into()]).unwrap();
        let after_one = db.footprint();
        assert!(after_one > 0);
        db.insert("t", vec![2.into(), "hello".into()]).unwrap();
        assert_eq!(db.footprint(), after_one * 2);
        db.delete("t", &1.into()).unwrap();
        assert_eq!(db.footprint(), after_one);
    }

    #[test]
    fn select_predicate_scans() {
        let db = products();
        let cheap = db
            .select("products", |r| matches!(r[2], Value::Float(p) if p < 5.0))
            .unwrap();
        assert_eq!(cheap.len(), 1);
        assert_eq!(cheap[0][1], Value::Text("widget".into()));
    }

    #[test]
    fn table_names_are_sorted() {
        let mut db = Database::new();
        db.create_table("zeta", &["k"], &[]).unwrap();
        db.create_table("alpha", &["k"], &[]).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
        assert!(matches!(
            db.create_table("alpha", &["k"], &[]),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn query_cache_is_transparent_and_invalidated_by_writes() {
        let mut cached = products();
        cached.set_query_cache(true);
        let plain = products();
        // Warm the cache, then re-read: both reads equal the uncached DB.
        for _ in 0..2 {
            assert_eq!(
                cached
                    .select_eq("products", "name", &"widget".into())
                    .unwrap(),
                plain
                    .select_eq("products", "name", &"widget".into())
                    .unwrap()
            );
        }
        // A write to the table invalidates the memoized result.
        cached
            .update(
                "products",
                vec![1.into(), "renamed".into(), Value::Float(4.99), 10.into()],
            )
            .unwrap();
        assert!(cached
            .select_eq("products", "name", &"widget".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            cached
                .select_eq("products", "name", &"renamed".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn query_cache_survives_rollback_without_staleness() {
        let mut db = products();
        db.set_query_cache(true);
        // Cache a result, mutate + re-cache inside a failing transaction,
        // then make sure the rollback did not leave the in-tx result
        // memoized.
        assert_eq!(
            db.select_eq("products", "name", &"widget".into())
                .unwrap()
                .len(),
            1
        );
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.update(
                "products",
                vec![1.into(), "poked".into(), Value::Float(0.0), 0.into()],
            )?;
            assert_eq!(tx.select_eq("products", "name", &"poked".into())?.len(), 1);
            Err(DbError::NotFound)
        });
        assert!(result.is_err());
        assert!(db
            .select_eq("products", "name", &"poked".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.select_eq("products", "name", &"widget".into())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn query_cache_invalidation_is_table_scoped() {
        let mut db = products();
        db.set_query_cache(true);
        db.create_table("orders", &["id", "sku"], &["sku"]).unwrap();
        db.insert("orders", vec![1.into(), 1.into()]).unwrap();
        // Warm both tables' caches.
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.select_eq("orders", "sku", &1.into()).unwrap();
        let _guard = obs::metrics::enable();
        // A write to `orders` must not disturb the `products` entry: the
        // next products read is a hit, the next orders read a miss.
        db.insert("orders", vec![2.into(), 2.into()]).unwrap();
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.select_eq("orders", "sku", &1.into()).unwrap();
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.misses"), 1);
        assert_eq!(metrics.counter("host.db_cache.invalidations"), 1);
    }

    #[test]
    fn reads_share_storage_instead_of_copying() {
        let db = products();
        let a = db.get("products", &1.into()).unwrap().unwrap();
        let b = db.get("products", &1.into()).unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "get must hand out shared row handles");
        let selected = db.select("products", |_| true).unwrap();
        assert!(selected.iter().any(|r| Arc::ptr_eq(r, &a)));
    }

    #[test]
    fn float_keys_order_correctly() {
        let mut db = Database::new();
        db.create_table("m", &["temp", "label"], &[]).unwrap();
        for (t, l) in [(-2.5, "cold"), (0.0, "zero"), (3.25, "warm")] {
            db.insert("m", vec![Value::Float(t), l.into()]).unwrap();
        }
        let all = db.select("m", |_| true).unwrap();
        let labels: Vec<String> = all.iter().map(|r| r[1].to_string()).collect();
        assert_eq!(labels, vec!["cold", "zero", "warm"]);
        assert!(db.get("m", &Value::Float(0.0)).unwrap().is_some());
    }

    // --- WAL / durability ---

    #[test]
    fn group_commit_delays_durability_and_prices_fsyncs() {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &[]).unwrap();
        db.set_durability(DurabilityPolicy::new(3, 1_000));
        let durable_before = db.journal().len();
        db.insert("t", vec![1.into(), "a".into()]).unwrap();
        db.insert("t", vec![2.into(), "b".into()]).unwrap();
        // Window of 3 not full: the tail is committed but not durable.
        assert_eq!(db.journal().len(), durable_before);
        assert_eq!(db.pending_journal_len(), 2);
        assert_eq!(db.drain_commit_cost_ns(), 0, "no fsync yet");
        db.insert("t", vec![3.into(), "c".into()]).unwrap();
        assert_eq!(db.journal().len(), durable_before + 3);
        assert_eq!(db.pending_journal_len(), 0);
        assert_eq!(db.drain_commit_cost_ns(), 1_000);
        // A crash now recovers all three rows; a crash before the third
        // insert would have lost the tail.
        let recovered = Database::recover(db.journal()).unwrap();
        assert_eq!(recovered.len("t").unwrap(), 3);
    }

    #[test]
    fn transaction_is_one_commit_in_the_group_window() {
        let mut db = Database::new();
        db.create_table("t", &["k"], &[]).unwrap();
        db.set_durability(DurabilityPolicy::new(2, 10));
        let ok: Result<(), DbError> = db.transaction(|tx| {
            tx.insert("t", vec![1.into()])?;
            tx.insert("t", vec![2.into()])?;
            tx.insert("t", vec![3.into()])?;
            Ok(())
        });
        ok.unwrap();
        // Three entries, one commit: the window of 2 is not full.
        assert_eq!(db.pending_journal_len(), 3);
        db.sync_journal();
        assert_eq!(db.pending_journal_len(), 0);
        assert_eq!(db.drain_commit_cost_ns(), 10);
    }

    #[test]
    fn zero_cost_policy_is_indistinguishable_from_default() {
        let mut explicit = products();
        explicit.set_durability(DurabilityPolicy::new(1, 0));
        explicit.insert("products", vec![9.into(), "z".into(), Value::Float(1.0), 1.into()])
            .unwrap();
        let mut plain = products();
        plain.insert("products", vec![9.into(), "z".into(), Value::Float(1.0), 1.into()])
            .unwrap();
        assert_eq!(explicit.journal(), plain.journal());
        assert_eq!(explicit.pending_journal_len(), 0);
        assert_eq!(explicit.drain_commit_cost_ns(), 0);
    }

    // --- recovery path (bugfix sweep) ---

    #[test]
    fn recovery_is_metrics_silent() {
        let mut db = products();
        db.set_query_cache(true);
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.delete("products", &2.into()).unwrap();
        let journal = db.journal().to_vec();
        let _guard = obs::metrics::enable();
        let recovered = Database::recover(&journal).unwrap();
        assert_eq!(recovered.len("products").unwrap(), 1);
        let metrics = obs::metrics::take();
        assert!(
            metrics.is_empty(),
            "replay must not bump live counters: {metrics:?}"
        );
    }

    #[test]
    fn recovery_is_idempotent_and_preserves_the_journal() {
        let mut db = products();
        db.update(
            "products",
            vec![2.into(), "gadget".into(), Value::Float(8.88), 1.into()],
        )
        .unwrap();
        let journal = db.journal().to_vec();
        let once = Database::recover(&journal).unwrap();
        // The recovered journal is the input journal, byte for byte — not
        // a re-recorded copy.
        assert_eq!(once.journal(), &journal[..]);
        let twice = Database::recover(once.journal()).unwrap();
        assert_eq!(twice.journal(), once.journal());
        assert_eq!(twice.table_names(), once.table_names());
        for t in twice.table_names() {
            assert_eq!(
                twice.select(&t, |_| true).unwrap(),
                once.select(&t, |_| true).unwrap()
            );
        }
        assert_eq!(twice.footprint(), once.footprint());
    }

    #[test]
    fn corrupt_journal_surfaces_err_not_panic() {
        // An index column the schema does not have: the old engine
        // panicked via expect() mid-recovery.
        let corrupt = vec![JournalEntry::CreateTable {
            name: "t".into(),
            columns: vec!["k".into()],
            indexes: vec!["ghost".into()],
        }];
        assert_eq!(
            Database::recover(&corrupt).unwrap_err(),
            DbError::NoSuchColumn {
                table: "t".into(),
                column: "ghost".into()
            }
        );
        // An update against a row that was never inserted.
        let corrupt = vec![
            JournalEntry::CreateTable {
                name: "t".into(),
                columns: vec!["k".into()],
                indexes: vec![],
            },
            JournalEntry::Update {
                table: "t".into(),
                row: vec![1.into()],
            },
        ];
        assert_eq!(Database::recover(&corrupt).unwrap_err(), DbError::NotFound);
        // A truncated-then-replayed duplicate insert.
        let corrupt = vec![
            JournalEntry::CreateTable {
                name: "t".into(),
                columns: vec!["k".into()],
                indexes: vec![],
            },
            JournalEntry::Insert {
                table: "t".into(),
                row: vec![1.into()],
            },
            JournalEntry::Insert {
                table: "t".into(),
                row: vec![1.into()],
            },
        ];
        assert!(matches!(
            Database::recover(&corrupt),
            Err(DbError::DuplicateKey(_))
        ));
    }

    #[test]
    fn recovery_rebuilds_indexes_and_counts_entries() {
        let mut db = products(); // 2 rows, 1 index
        db.insert(
            "products",
            vec![3.into(), "widget".into(), Value::Float(1.0), 1.into()],
        )
        .unwrap();
        let recovered = Database::recover(db.journal()).unwrap();
        assert_eq!(recovered.index_entries_rebuilt(), 3);
        assert_eq!(
            recovered
                .select_eq("products", "name", &"widget".into())
                .unwrap()
                .len(),
            2
        );
    }

    // --- MVCC snapshots ---

    #[test]
    fn snapshot_reads_are_stable_across_writes() {
        let mut db = products();
        let snap = db.begin_snapshot();
        db.update(
            "products",
            vec![1.into(), "renamed".into(), Value::Float(9.99), 0.into()],
        )
        .unwrap();
        db.delete("products", &2.into()).unwrap();
        db.insert(
            "products",
            vec![3.into(), "new".into(), Value::Float(1.0), 1.into()],
        )
        .unwrap();
        // The snapshot still sees the world as of its pin.
        assert_eq!(
            db.snapshot_get(&snap, "products", &1.into()).unwrap().unwrap()[1],
            Value::Text("widget".into())
        );
        assert!(db
            .snapshot_get(&snap, "products", &2.into())
            .unwrap()
            .is_some());
        assert!(db
            .snapshot_get(&snap, "products", &3.into())
            .unwrap()
            .is_none());
        assert_eq!(
            db.snapshot_select(&snap, "products", |_| true).unwrap().len(),
            2
        );
        assert_eq!(
            db.snapshot_select_eq(&snap, "products", "name", &"widget".into())
                .unwrap()
                .len(),
            1
        );
        // Live reads see the new world.
        assert_eq!(
            db.get("products", &1.into()).unwrap().unwrap()[1],
            Value::Text("renamed".into())
        );
        // Closing the snapshot lets writes prune the old versions.
        db.end_snapshot(snap);
        assert_eq!(db.open_snapshots(), 0);
    }

    #[test]
    fn snapshot_versions_prune_once_released() {
        let mut db = Database::new();
        db.create_table("t", &["k", "v"], &[]).unwrap();
        db.insert("t", vec![1.into(), "v1".into()]).unwrap();
        let base = db.footprint();
        let snap = db.begin_snapshot();
        db.update("t", vec![1.into(), "v2-longer".into()]).unwrap();
        // Both versions are held while the snapshot is open.
        assert!(db.footprint() > base, "live footprint tracks the new row");
        assert_eq!(
            db.snapshot_get(&snap, "t", &1.into()).unwrap().unwrap()[1],
            Value::Text("v1".into())
        );
        db.end_snapshot(snap);
        // The next write prunes the now-unreachable v1 version.
        db.update("t", vec![1.into(), "v3".into()]).unwrap();
        let recovered = Database::recover(db.journal()).unwrap();
        assert_eq!(
            recovered.get("t", &1.into()).unwrap().unwrap()[1],
            Value::Text("v3".into())
        );
    }

    #[test]
    fn snapshots_survive_rolled_back_transactions() {
        let mut db = products();
        let snap = db.begin_snapshot();
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.delete("products", &1.into())?;
            Err(DbError::NotFound)
        });
        assert!(result.is_err());
        // Rollback restored the row; the snapshot still sees its image.
        assert!(db
            .snapshot_get(&snap, "products", &1.into())
            .unwrap()
            .is_some());
        assert!(db.get("products", &1.into()).unwrap().is_some());
        db.end_snapshot(snap);
    }

    // --- query-cache TTL (boundary audit) ---

    #[test]
    fn query_cache_entries_expire_at_exactly_the_ttl_boundary() {
        let mut db = products();
        db.set_query_cache(true);
        db.set_query_cache_ttl(Some(1_000));
        db.set_now_ns(0);
        let _guard = obs::metrics::enable();
        db.select_eq("products", "name", &"widget".into()).unwrap(); // miss
        db.set_now_ns(999);
        db.select_eq("products", "name", &"widget".into()).unwrap(); // hit
        db.set_now_ns(1_000); // exactly inserted_at + ttl: expired
        db.select_eq("products", "name", &"widget".into()).unwrap(); // miss
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.misses"), 2);
    }

    // --- full-text search (tentpole) + search memo (boundary audit) ---

    fn searchable_products() -> Database {
        let mut db = products();
        db.create_fts("products", "name").unwrap();
        db
    }

    #[test]
    fn search_requires_a_registered_index() {
        let db = products();
        assert!(matches!(
            db.search("products", "widget"),
            Err(DbError::SchemaMismatch(_))
        ));
        assert_eq!(
            db.search("nope", "widget"),
            Err(DbError::NoSuchTable("nope".into()))
        );
    }

    #[test]
    fn search_matches_brute_force_scan_and_stays_incremental() {
        let mut db = searchable_products();
        db.insert(
            "products",
            vec![3.into(), "widget deluxe".into(), Value::Float(7.99), 2.into()],
        )
        .unwrap();
        db.delete("products", &2.into()).unwrap();
        db.update(
            "products",
            vec![1.into(), "basic widget".into(), Value::Float(4.99), 10.into()],
        )
        .unwrap();
        for q in ["widget", "deluxe widget", "gadget", "nothing at all", ""] {
            let indexed = db.search("products", q).unwrap();
            let scanned = db.search_scan("products", "name", q).unwrap();
            assert_eq!(indexed.len(), scanned.len(), "query {q:?}");
            for (a, b) in indexed.iter().zip(scanned.iter()) {
                assert_eq!(a, b, "query {q:?}");
            }
        }
        // The deleted row's terms are gone from the incremental index.
        assert!(db.search("products", "gadget").unwrap().is_empty());
    }

    #[test]
    fn search_ranks_by_score_then_primary_key() {
        let mut db = searchable_products();
        // Row 3 mentions "widget" twice → higher tf than rows 1 and 4,
        // which tie and must come out in primary-key order.
        db.insert(
            "products",
            vec![
                3.into(),
                "widget widget carrier".into(),
                Value::Float(1.0),
                1.into(),
            ],
        )
        .unwrap();
        db.insert(
            "products",
            vec![4.into(), "widget strap".into(), Value::Float(1.0), 1.into()],
        )
        .unwrap();
        let hits = db.search("products", "widget").unwrap();
        let keys: Vec<String> = hits.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(keys, vec!["3", "1", "4"]);
    }

    #[test]
    fn search_cost_accrues_and_drains_like_commit_cost() {
        let mut db = searchable_products();
        let cold = db.search("products", "widget").unwrap();
        assert_eq!(cold.len(), 1);
        let cold_ns = db.drain_search_cost_ns();
        assert!(cold_ns >= SEARCH_BASE_NS, "cold search pays the base cost");
        assert_eq!(db.drain_search_cost_ns(), 0, "drain resets");
        // With the memo enabled a repeat query costs the flat hit price.
        db.set_query_cache(true);
        db.search("products", "widget").unwrap();
        db.drain_search_cost_ns();
        db.search("products", "widget").unwrap();
        assert_eq!(db.drain_search_cost_ns(), SEARCH_MEMO_HIT_NS);
    }

    #[test]
    fn search_memo_expires_at_exactly_the_ttl_boundary() {
        let mut db = searchable_products();
        db.set_query_cache(true);
        db.set_query_cache_ttl(Some(1_000));
        db.set_now_ns(0);
        let _guard = obs::metrics::enable();
        db.search("products", "widget").unwrap(); // miss
        db.set_now_ns(999);
        db.search("products", "widget").unwrap(); // hit
        db.set_now_ns(1_000); // exactly stored_at + ttl: expired
        db.search("products", "widget").unwrap(); // miss
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.search_hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.search_misses"), 2);
    }

    #[test]
    fn search_memo_invalidation_is_table_scoped() {
        let mut db = searchable_products();
        db.set_query_cache(true);
        db.create_table("orders", &["id", "sku"], &["sku"]).unwrap();
        db.insert("orders", vec![1.into(), 1.into()]).unwrap();
        // Warm a select_eq entry and a search entry on `products`, plus a
        // select_eq entry on `orders`.
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.search("products", "widget").unwrap();
        db.select_eq("orders", "sku", &1.into()).unwrap();
        let _guard = obs::metrics::enable();
        // A write to `orders` leaves both `products` entries warm…
        db.insert("orders", vec![2.into(), 2.into()]).unwrap();
        db.select_eq("products", "name", &"widget".into()).unwrap();
        db.search("products", "widget").unwrap();
        // …while a catalog write takes the select_eq entry *and* the
        // memoized search down together.
        db.insert(
            "products",
            vec![3.into(), "widget mini".into(), Value::Float(2.0), 5.into()],
        )
        .unwrap();
        assert_eq!(db.search("products", "widget").unwrap().len(), 2);
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.search_hits"), 1);
        assert_eq!(metrics.counter("host.db_cache.search_misses"), 1);
        assert_eq!(metrics.counter("host.db_cache.invalidations"), 2);
    }

    #[test]
    fn search_memo_survives_rollback_without_staleness() {
        let mut db = searchable_products();
        db.set_query_cache(true);
        assert_eq!(db.search("products", "widget").unwrap().len(), 1);
        let result: Result<(), DbError> = db.transaction(|tx| {
            tx.update(
                "products",
                vec![1.into(), "poked".into(), Value::Float(0.0), 0.into()],
            )?;
            assert_eq!(tx.search("products", "poked")?.len(), 1);
            Err(DbError::NotFound)
        });
        assert!(result.is_err());
        // The rollback re-invalidated: no memo of the in-tx result, and
        // the restored row is findable again.
        assert!(db.search("products", "poked").unwrap().is_empty());
        assert_eq!(db.search("products", "widget").unwrap().len(), 1);
    }

    #[test]
    fn search_memo_caps_and_evicts_least_recently_used_first() {
        let mut db = searchable_products();
        db.set_query_cache(true);
        let _guard = obs::metrics::enable();
        // Fill the memo past its cap with distinct queries, touching the
        // first entry along the way so it stays recently used.
        db.search("products", "widget").unwrap();
        for i in 0..SEARCH_MEMO_CAP {
            db.search("products", &format!("filler{i}")).unwrap();
            if i == SEARCH_MEMO_CAP / 2 {
                db.search("products", "widget").unwrap(); // keep warm
            }
        }
        // "widget" survived the cap; the stalest filler did not.
        db.search("products", "widget").unwrap();
        db.search("products", "filler0").unwrap();
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("host.db_cache.search_hits"), 2);
        assert!(metrics.counter("host.db_cache.search_misses") >= SEARCH_MEMO_CAP as u64);
    }

    #[test]
    fn fts_registration_drops_on_crash_and_rebuilds_from_base_rows() {
        let mut db = searchable_products();
        db.insert(
            "products",
            vec![3.into(), "widget case".into(), Value::Float(3.5), 9.into()],
        )
        .unwrap();
        assert!(db.has_fts("products").unwrap());
        // Crash: recovery replays the journal, which never saw the FTS
        // registration — it is a derived projection, like indexes.
        let mut recovered = Database::recover(db.journal()).unwrap();
        assert!(!recovered.has_fts("products").unwrap());
        // Re-registering rebuilds the postings from the base rows and
        // reports the entry count for rebuild pricing.
        let entries = recovered.create_fts("products", "name").unwrap();
        assert!(entries > 0);
        let before = db.search("products", "widget").unwrap();
        let after = recovered.search("products", "widget").unwrap();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a, b);
        }
    }
}
