//! The database server: an embedded storage engine.
//!
//! §7: "Other than the server-side database servers, a growing trend is to
//! provide a mobile database or an embedded database … Embedded databases
//! have very small footprints, and must be able to run without the
//! services of a database administrator."
//!
//! This engine serves both roles: unconstrained as the host computer's
//! database server, or capped via [`Database::with_memory_limit`] as the
//! small-footprint embedded variant. It provides typed tables, a primary
//! key, optional secondary indexes, ACID transactions with undo-log
//! rollback, and a write-ahead log from which a fresh instance can be
//! recovered after a crash.
//!
//! The engine is split along its storage layers (DESIGN.md §2.18):
//!
//! - `wal.rs`: the write-ahead log with sim-time group commit. A
//!   [`DurabilityPolicy`] prices each "fsync" in simulated nanoseconds and
//!   batches commits, so durability is a measurable cost instead of a free
//!   side effect — and the un-fsynced tail of the log is exactly what a
//!   crash loses.
//! - `mvcc.rs`: multi-version row storage. Every committed write
//!   installs a new row version; snapshot reads pin a commit version and
//!   observe a frozen, consistent view while later writers proceed.
//! - `index.rs`: secondary indexes as derived projections of the base
//!   rows — dropped wholesale on a crash and rebuilt from the recovered
//!   rows, never replayed.
//! - `engine.rs`: the [`Database`] façade tying the layers together
//!   with transactions, the memory cap and the query cache.
//!
//! Rows are stored and returned as [`Arc<Row>`](std::sync::Arc), so reads
//! hand out shared handles instead of deep copies. An optional query cache
//! (see [`Database::set_query_cache`]) memoizes [`Database::select_eq`]
//! result sets per table and is invalidated transactionally: any `insert`,
//! `update`, or `delete` against a table drops that table's cached
//! queries — and only that table's.

use std::fmt;

mod engine;
mod fts;
mod index;
mod mvcc;
mod wal;

pub use engine::{Database, Snapshot};
pub use wal::{DurabilityPolicy, JournalEntry};

/// A typed cell value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// 64-bit float (totally ordered by its bits being non-NaN; NaN is
    /// rejected at the API boundary).
    Float(f64),
}

impl Value {
    /// The value's type name, for error messages and schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Bool(_) => "bool",
            Value::Float(_) => "float",
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(t) => 24 + t.len(),
        }
    }

    pub(crate) fn ord_key(&self) -> OrdKey {
        match self {
            Value::Int(i) => OrdKey::Int(*i),
            Value::Text(t) => OrdKey::Text(t.clone()),
            Value::Bool(b) => OrdKey::Int(i64::from(*b)),
            Value::Float(f) => OrdKey::Float(float_key_bits(*f)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

/// Monotone bit mapping for float keys: negatives flip all bits,
/// positives flip the sign bit, so u64 order equals float order.
/// (-0.0 is normalised to 0.0 first.)
pub(crate) fn float_key_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Totally ordered key derived from a [`Value`] for index storage.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum OrdKey {
    Int(i64),
    Text(String),
    Float(u64),
}

impl OrdKey {
    /// True when `value.ord_key()` would equal `self` — compared without
    /// building the key (no `Text` clone).
    pub(crate) fn matches_value(&self, value: &Value) -> bool {
        match (self, value) {
            (OrdKey::Int(a), Value::Int(b)) => a == b,
            (OrdKey::Int(a), Value::Bool(b)) => *a == i64::from(*b),
            (OrdKey::Text(a), Value::Text(b)) => a == b,
            (OrdKey::Float(a), Value::Float(b)) => *a == float_key_bits(*b),
            _ => false,
        }
    }
}

/// A row: one value per column, in schema order.
pub type Row = Vec<Value>;

/// Errors produced by the database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The named table does not exist.
    NoSuchTable(String),
    /// The named column does not exist on the table.
    NoSuchColumn {
        /// The table the lookup targeted.
        table: String,
        /// The column that does not exist on it.
        column: String,
    },
    /// A row's arity or a value's type does not match the schema.
    SchemaMismatch(String),
    /// Primary-key uniqueness violated.
    DuplicateKey(String),
    /// No row with the given primary key.
    NotFound,
    /// The memory cap would be exceeded.
    OutOfMemory {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// A table with that name already exists.
    TableExists(String),
    /// NaN floats cannot be stored (they have no total order).
    NanRejected,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} on table {table:?}")
            }
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            DbError::NotFound => write!(f, "row not found"),
            DbError::OutOfMemory { limit } => write!(f, "memory limit of {limit} bytes exceeded"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NanRejected => write!(f, "NaN values cannot be stored"),
        }
    }
}

impl std::error::Error for DbError {}
