//! The write-ahead log with sim-time group commit.
//!
//! Every committed operation is appended to the log before it is
//! considered durable. Under the default [`DurabilityPolicy`] (batch of
//! one, zero-cost fsync) each commit is flushed immediately and the log
//! behaves exactly like the journal it replaces. A non-trivial policy
//! accumulates commits in an in-memory tail and only moves them to the
//! durable prefix every `commit_batch` commits, charging `fsync_ns` of
//! simulated time per flush — so a crash loses the un-flushed tail, and
//! recovery replays the durable prefix in fsync-equivalent units.

use super::Row;
use super::Value;

/// One durable operation, as recorded in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// Table creation.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names; column 0 is the primary key.
        columns: Vec<String>,
        /// Secondary index columns.
        indexes: Vec<String>,
    },
    /// Row insertion.
    Insert {
        /// Table name.
        table: String,
        /// The inserted row.
        row: Row,
    },
    /// Row update (full-row image).
    Update {
        /// Table name.
        table: String,
        /// The new row image.
        row: Row,
    },
    /// Row deletion by primary key.
    Delete {
        /// Table name.
        table: String,
        /// Primary key of the removed row.
        key: Value,
    },
}

/// How the write-ahead log trades durability for sim time.
///
/// `commit_batch` is the group-commit window: the log is fsynced once
/// every that many commits (a transaction counts as one commit however
/// many entries it carries). `fsync_ns` is the simulated cost of one
/// fsync, charged to the host CPU of the request that triggered it.
///
/// The default — batch of one, zero fsync cost — makes every write
/// immediately durable for free, which is bit-identical to the engine
/// before durability was priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Commits per fsync (clamped to at least 1).
    pub commit_batch: u32,
    /// Simulated nanoseconds charged per fsync.
    pub fsync_ns: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            commit_batch: 1,
            fsync_ns: 0,
        }
    }
}

impl DurabilityPolicy {
    /// A policy flushing every `commit_batch` commits at `fsync_ns` each.
    pub fn new(commit_batch: u32, fsync_ns: u64) -> Self {
        DurabilityPolicy {
            commit_batch: commit_batch.max(1),
            fsync_ns,
        }
    }

    /// True when the policy charges nothing and batches nothing — the
    /// configuration that must be byte-identical to the unpriced engine.
    pub fn is_zero_cost(&self) -> bool {
        self.commit_batch <= 1 && self.fsync_ns == 0
    }

    /// How many fsyncs a log of `entries` committed operations costs to
    /// replay: recovery re-groups the entries into commit batches, so the
    /// replay cost is measured in fsync-equivalents, not raw entries.
    pub fn fsync_equivalents(&self, entries: u64) -> u64 {
        entries.div_ceil(u64::from(self.commit_batch.max(1)))
    }
}

/// The log itself: a durable prefix plus the un-fsynced pending tail.
#[derive(Debug, Default)]
pub(crate) struct Wal {
    durable: Vec<JournalEntry>,
    pending: Vec<JournalEntry>,
    pending_commits: u32,
    policy: DurabilityPolicy,
    fsyncs: u64,
    accrued_cost_ns: u64,
}

impl Wal {
    /// The policy in force.
    pub(crate) fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Replaces the policy. The pending tail is flushed first so entries
    /// committed under the old window never linger under the new one.
    pub(crate) fn set_policy(&mut self, policy: DurabilityPolicy) {
        self.sync();
        self.policy = policy;
    }

    /// Appends one commit (one or more entries that become durable
    /// together) and fsyncs when the group-commit window fills. An empty
    /// commit is a no-op.
    pub(crate) fn commit(&mut self, entries: impl IntoIterator<Item = JournalEntry>) {
        let before = self.pending.len();
        self.pending.extend(entries);
        if self.pending.len() == before {
            return;
        }
        self.pending_commits += 1;
        if self.pending_commits >= self.policy.commit_batch.max(1) {
            self.sync();
        }
    }

    /// Forces an fsync of the pending tail (a no-op when nothing is
    /// pending): the tail moves to the durable prefix and one fsync's
    /// cost accrues.
    pub(crate) fn sync(&mut self) {
        if self.pending.is_empty() {
            self.pending_commits = 0;
            return;
        }
        self.durable.append(&mut self.pending);
        self.pending_commits = 0;
        self.fsyncs += 1;
        self.accrued_cost_ns = self.accrued_cost_ns.saturating_add(self.policy.fsync_ns);
    }

    /// The durable prefix — what survives a crash.
    pub(crate) fn durable(&self) -> &[JournalEntry] {
        &self.durable
    }

    /// Entries sitting in the un-fsynced tail (lost on a crash).
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Installs an already-durable log during recovery, with no fsync
    /// accounting: replay re-prices durability at the recovery site.
    pub(crate) fn install_durable(&mut self, entries: Vec<JournalEntry>) {
        self.durable = entries;
        self.pending.clear();
        self.pending_commits = 0;
    }

    /// Total fsyncs performed.
    pub(crate) fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Returns and resets the fsync cost accrued since the last drain —
    /// the host charges this to the request that triggered the flushes.
    pub(crate) fn drain_cost_ns(&mut self) -> u64 {
        std::mem::take(&mut self.accrued_cost_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: i64) -> JournalEntry {
        JournalEntry::Delete {
            table: "t".into(),
            key: k.into(),
        }
    }

    #[test]
    fn default_policy_flushes_every_commit_for_free() {
        let mut wal = Wal::default();
        wal.commit([entry(1)]);
        wal.commit([entry(2)]);
        assert_eq!(wal.durable().len(), 2);
        assert_eq!(wal.pending_len(), 0);
        assert_eq!(wal.fsyncs(), 2);
        assert_eq!(wal.drain_cost_ns(), 0);
    }

    #[test]
    fn group_commit_batches_and_prices_fsyncs() {
        let mut wal = Wal::default();
        wal.set_policy(DurabilityPolicy::new(3, 50));
        wal.commit([entry(1)]);
        wal.commit([entry(2), entry(3)]); // a transaction: one commit
        assert_eq!(wal.durable().len(), 0, "window not full yet");
        assert_eq!(wal.pending_len(), 3);
        wal.commit([entry(4)]);
        assert_eq!(wal.durable().len(), 4, "third commit fills the window");
        assert_eq!(wal.fsyncs(), 1);
        assert_eq!(wal.drain_cost_ns(), 50);
        assert_eq!(wal.drain_cost_ns(), 0, "drain resets");
    }

    #[test]
    fn sync_flushes_the_tail_and_empty_commits_are_free() {
        let mut wal = Wal::default();
        wal.set_policy(DurabilityPolicy::new(10, 7));
        wal.commit(Vec::new());
        assert_eq!(wal.fsyncs(), 0);
        wal.commit([entry(1)]);
        wal.sync();
        assert_eq!(wal.durable().len(), 1);
        assert_eq!(wal.fsyncs(), 1);
        wal.sync(); // nothing pending: no fsync, no cost
        assert_eq!(wal.fsyncs(), 1);
        assert_eq!(wal.drain_cost_ns(), 7);
    }

    #[test]
    fn fsync_equivalents_round_up_per_batch() {
        let p = DurabilityPolicy::new(4, 100);
        assert_eq!(p.fsync_equivalents(0), 0);
        assert_eq!(p.fsync_equivalents(1), 1);
        assert_eq!(p.fsync_equivalents(4), 1);
        assert_eq!(p.fsync_equivalents(5), 2);
        assert!(DurabilityPolicy::default().is_zero_cost());
        assert!(!p.is_zero_cost());
    }
}
