//! Multi-version row storage.
//!
//! Each primary key maps to a [`VersionChain`]: row images stamped with
//! the half-open commit-version interval `[begin, end)` during which they
//! were the visible truth. The newest version of a live key has
//! `end == LIVE`. Snapshot reads pin a commit version `v` and observe the
//! unique version with `begin <= v < end` — later writers install new
//! versions without disturbing anything a pinned snapshot can see.
//!
//! Chains are pruned eagerly: whenever a write touches a chain, every
//! version no pinned snapshot can still reach is dropped. With no
//! snapshots open a chain therefore collapses to at most its single live
//! version, and a fully dead key disappears from the table — the storage
//! shape of the engine before versioning existed.

use std::sync::Arc;

use super::Row;

/// `end` stamp of the currently visible version.
pub(crate) const LIVE: u64 = u64::MAX;

/// One row image and the commit-version interval it was visible for.
#[derive(Debug, Clone)]
pub(crate) struct RowVersion {
    /// First commit version that sees this image.
    pub(crate) begin: u64,
    /// First commit version that no longer sees it ([`LIVE`] = current).
    pub(crate) end: u64,
    /// The image itself, shared with readers.
    pub(crate) row: Arc<Row>,
}

/// The ordered version history of one primary key, oldest first.
#[derive(Debug, Clone, Default)]
pub(crate) struct VersionChain {
    versions: Vec<RowVersion>,
}

impl VersionChain {
    /// The currently live image, if the key is not deleted.
    pub(crate) fn live(&self) -> Option<&Arc<Row>> {
        match self.versions.last() {
            Some(v) if v.end == LIVE => Some(&v.row),
            _ => None,
        }
    }

    /// The image a snapshot pinned at commit version `at` observes.
    pub(crate) fn visible_at(&self, at: u64) -> Option<&Arc<Row>> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.begin <= at && at < v.end)
            .map(|v| &v.row)
    }

    /// Installs `row` as the live image at commit version `version`,
    /// closing the previous live version (if any) at the same stamp.
    pub(crate) fn install(&mut self, row: Arc<Row>, version: u64) {
        if let Some(last) = self.versions.last_mut() {
            if last.end == LIVE {
                last.end = version;
            }
        }
        self.versions.push(RowVersion {
            begin: version,
            end: LIVE,
            row,
        });
    }

    /// Deletes the live image at commit version `version`, returning it.
    pub(crate) fn remove_live(&mut self, version: u64) -> Option<Arc<Row>> {
        match self.versions.last_mut() {
            Some(last) if last.end == LIVE => {
                last.end = version;
                Some(Arc::clone(&last.row))
            }
            _ => None,
        }
    }

    /// Drops every dead version no pinned snapshot can reach.
    /// `oldest_pin` is the smallest pinned commit version, or `None` when
    /// no snapshot is open (every dead version is then unreachable).
    pub(crate) fn prune(&mut self, oldest_pin: Option<u64>) {
        match oldest_pin {
            None => self.versions.retain(|v| v.end == LIVE),
            Some(pin) => self.versions.retain(|v| v.end == LIVE || v.end > pin),
        }
    }

    /// True when no versions remain (the key can leave the table).
    pub(crate) fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Arc<Row> {
        Arc::new(vec![v.into()])
    }

    #[test]
    fn snapshots_see_the_pinned_image_through_updates_and_deletes() {
        let mut chain = VersionChain::default();
        chain.install(row(1), 1);
        assert!(chain.visible_at(0).is_none(), "born at 1, invisible at 0");
        chain.install(row(2), 2);
        // A snapshot pinned at 1 still sees the old image; live moved on.
        assert_eq!(chain.visible_at(1).unwrap()[0], 1i64.into());
        assert_eq!(chain.live().unwrap()[0], 2i64.into());
        chain.remove_live(3);
        assert!(chain.live().is_none());
        assert_eq!(chain.visible_at(2).unwrap()[0], 2i64.into());
        assert!(chain.visible_at(3).is_none(), "deleted at 3");
    }

    #[test]
    fn pruning_respects_the_oldest_pin_and_collapses_without_pins() {
        let mut chain = VersionChain::default();
        chain.install(row(1), 1);
        chain.install(row(2), 2);
        chain.install(row(3), 3);
        chain.prune(Some(2)); // pin at 2 still needs the [2,3) version
        assert!(chain.visible_at(2).is_some());
        assert!(chain.visible_at(1).is_none(), "[1,2) pruned: 2 > end");
        chain.prune(None);
        assert!(chain.live().is_some());
        chain.remove_live(4);
        chain.prune(None);
        assert!(chain.is_empty(), "fully dead chain vanishes");
    }
}
