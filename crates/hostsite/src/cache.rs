//! The host web-server page cache.
//!
//! The paper's host computers "usually store and manage most of the
//! content" — and a production web server in that role fronts its
//! application programs with a page cache. This one is deterministic and
//! sim-time native: entries are keyed by the canonical request (method,
//! path, query, accept format, cookies), expire after a TTL
//! measured in simulated nanoseconds, and are bounded by a byte budget
//! with least-recently-used eviction driven by a logical tick counter —
//! no wall clock anywhere, so fleet runs stay bit-identical at any
//! thread count.
//!
//! Keys are interned: [`PageCache::intern`] hashes the borrowed request
//! fields (no allocation) and hands out a dense `u64` id; the canonical
//! rendered string is built once per distinct request shape and the
//! entry map is keyed by the id. A lookup therefore hashes eight bytes,
//! probes once (the expired path removes through the same probe instead
//! of a `get` + `remove` double hash), and a hit clones a response whose
//! body is a refcounted [`Body`] — a pointer bump, not a page copy.
//!
//! Only successful `GET` responses that set no cookies are stored;
//! `POST`s (which mutate the database and session state) always reach
//! the application program. Requests carrying basic-auth credentials
//! bypass the cache entirely — lookup *and* store — so every authed
//! request is re-validated against its auth realm ([`WebServer`] never
//! builds a key for them).
//!
//! [`Body`]: crate::http::Body
//! [`WebServer`]: crate::server::WebServer

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher as _;

use crate::http::{HttpRequest, HttpResponse};
use crate::intern::{probe_hasher, HashWriter, KeyInterner, PrefixMatcher};

#[derive(Debug, Clone)]
struct Entry {
    resp: HttpResponse,
    stored_ns: u64,
    last_used: u64,
    bytes: usize,
}

/// A TTL + LRU page cache over interned canonical-request keys.
#[derive(Debug)]
pub struct PageCache {
    ttl_ns: u64,
    byte_budget: usize,
    interner: KeyInterner<String>,
    entries: HashMap<u64, Entry>,
    bytes: usize,
    /// Logical LRU clock: bumped on every touch, so the eviction victim
    /// (minimum tick) is unique and deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache holding entries for `ttl_ns` simulated nanoseconds
    /// within a `byte_budget` of body bytes.
    pub fn new(ttl_ns: u64, byte_budget: usize) -> Self {
        PageCache {
            ttl_ns,
            byte_budget,
            interner: KeyInterner::new(),
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Renders the canonical key for `req` into any writer. Query
    /// parameters and cookies live in `BTreeMap`s, so the rendering is
    /// order-stable. The same routine builds keys, hashes requests, and
    /// equality-checks probes, so the three can never drift apart.
    fn render_key(req: &HttpRequest, out: &mut impl fmt::Write) -> fmt::Result {
        write!(out, "{:?} {}", req.method, req.path)?;
        for (name, value) in &req.params {
            write!(out, "&{name}={value}")?;
        }
        write!(out, "|{:?}", req.accept)?;
        for (name, value) in &req.cookies {
            write!(out, ";{name}={value}")?;
        }
        Ok(())
    }

    /// The canonical cache key for a request, as an owned string.
    pub fn key(req: &HttpRequest) -> String {
        let mut key = String::new();
        Self::render_key(req, &mut key).expect("writing to a String cannot fail");
        key
    }

    /// Interns the canonical key for `req`, returning its dense id.
    ///
    /// Alloc-free for request shapes seen before: the request fields are
    /// hashed borrowed and compared against the stored canonical string
    /// without rendering.
    pub fn intern(&mut self, req: &HttpRequest) -> u64 {
        let mut h = probe_hasher();
        Self::render_key(req, &mut HashWriter(&mut h)).expect("hashing cannot fail");
        self.interner.intern_with(
            h.finish(),
            |k| {
                let mut m = PrefixMatcher::new(k);
                Self::render_key(req, &mut m).is_ok() && m.matched()
            },
            || Self::key(req),
        )
    }

    /// Looks up the interned id for `req` without interning: `None` when
    /// this request shape has never been *stored*. The lookup path uses
    /// this so one-shot shapes (distinct search query strings, pages the
    /// store policy rejects) never grow the interner — the cache holds
    /// flat memory under a high-cardinality key stream.
    pub fn probe(&self, req: &HttpRequest) -> Option<u64> {
        let mut h = probe_hasher();
        Self::render_key(req, &mut HashWriter(&mut h)).expect("hashing cannot fail");
        self.interner.probe_with(h.finish(), |k| {
            let mut m = PrefixMatcher::new(k);
            Self::render_key(req, &mut m).is_ok() && m.matched()
        })
    }

    /// Records a miss for a request whose key was never interned (the
    /// probe-based lookup path found no id, so [`PageCache::lookup`]
    /// never ran) — keeps the hit/miss accounting identical to a
    /// lookup-through-intern flow.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Interns a pre-rendered key string (equivalent to [`PageCache::intern`]
    /// on the request it renders).
    pub fn intern_str(&mut self, key: &str) -> u64 {
        let mut h = probe_hasher();
        h.write(key.as_bytes());
        self.interner
            .intern_with(h.finish(), |k| k == key, || key.to_owned())
    }

    /// Returns the cached response when a fresh entry exists for the
    /// interned key `id` at `now_ns`. One probe serves hit, miss, and
    /// expiry alike; an expired entry is dropped through the same probe.
    pub fn lookup(&mut self, id: u64, now_ns: u64) -> Option<HttpResponse> {
        match self.entries.entry(id) {
            MapEntry::Occupied(mut occ) => {
                if now_ns.saturating_sub(occ.get().stored_ns) < self.ttl_ns {
                    self.hits += 1;
                    self.tick += 1;
                    occ.get_mut().last_used = self.tick;
                    Some(occ.get().resp.clone())
                } else {
                    let old = occ.remove();
                    self.bytes -= old.bytes;
                    self.misses += 1;
                    None
                }
            }
            MapEntry::Vacant(_) => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a response under the interned key `id`, evicting
    /// least-recently-used entries until the byte budget holds. Returns
    /// how many entries were evicted. Responses larger than the whole
    /// budget are not stored.
    pub fn store(&mut self, id: u64, resp: &HttpResponse, now_ns: u64) -> usize {
        let bytes = self.interner.resolve(id).len() + resp.body.len();
        if bytes > self.byte_budget {
            return 0;
        }
        if let Some(old) = self.entries.remove(&id) {
            self.bytes -= old.bytes;
        }
        self.tick += 1;
        self.entries.insert(
            id,
            Entry {
                resp: resp.clone(),
                stored_ns: now_ns,
                last_used: self.tick,
                bytes,
            },
        );
        self.bytes += bytes;
        let mut evicted = 0;
        while self.bytes > self.byte_budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id)
                .expect("over budget implies non-empty");
            let old = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= old.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Body + key bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Distinct canonical keys ever interned (live or evicted).
    pub fn interned_keys(&self) -> usize {
        self.interner.len()
    }

    /// Fresh lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing fresh since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> HttpResponse {
        HttpResponse::ok(body.to_owned())
    }

    #[test]
    fn entries_expire_after_the_ttl() {
        let mut cache = PageCache::new(1_000, 10_000);
        let k = cache.intern_str("k");
        cache.store(k, &resp("<html><body>x</body></html>"), 0);
        assert!(cache.lookup(k, 999).is_some());
        assert!(cache.lookup(k, 1_000).is_none());
        assert!(cache.is_empty(), "expired entry is dropped");
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let mut cache = PageCache::new(u64::MAX, 60);
        let (a, b) = (cache.intern_str("a"), cache.intern_str("b"));
        cache.store(a, &resp("<html>aaaaaaaaaa</html>"), 0);
        cache.store(b, &resp("<html>bbbbbbbbbb</html>"), 0);
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup(a, 1).is_some());
        let c = cache.intern_str("c");
        let evicted = cache.store(c, &resp("<html>cccccccccc</html>"), 2);
        assert_eq!(evicted, 1);
        assert!(cache.lookup(a, 3).is_some());
        assert!(cache.lookup(b, 3).is_none());
        assert!(cache.lookup(c, 3).is_some());
        assert!(cache.bytes() <= 60);
    }

    #[test]
    fn oversized_responses_are_not_stored() {
        let mut cache = PageCache::new(u64::MAX, 10);
        let k = cache.intern_str("k");
        let evicted = cache.store(k, &resp(&"x".repeat(100)), 0);
        assert_eq!(evicted, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn keys_are_canonical_over_request_fields() {
        let a = PageCache::key(&HttpRequest::get("/shop?x=1&y=2"));
        let b = PageCache::key(&HttpRequest::get("/shop?y=2&x=1"));
        assert_eq!(a, b, "query order does not change the key");
        let c = PageCache::key(&HttpRequest::get("/shop?x=1&y=3"));
        assert_ne!(a, c);
        let d = PageCache::key(&HttpRequest::get("/shop?x=1&y=2").with_cookie("sid", "s1"));
        assert_ne!(a, d, "cookies partition the key space");
    }

    #[test]
    fn interned_request_ids_match_rendered_key_ids() {
        let mut cache = PageCache::new(u64::MAX, 10_000);
        let req = HttpRequest::get("/shop?x=1&y=2").with_cookie("sid", "s1");
        let by_req = cache.intern(&req);
        let by_str = cache.intern_str(&PageCache::key(&req));
        assert_eq!(by_req, by_str, "both intern paths agree on the id");
        assert_eq!(cache.interned_keys(), 1, "no duplicate key was created");
        let other = cache.intern(&HttpRequest::get("/shop?x=1&y=3"));
        assert_ne!(by_req, other);
    }

    #[test]
    fn hits_share_the_body_allocation() {
        let mut cache = PageCache::new(u64::MAX, 10_000);
        let k = cache.intern_str("k");
        cache.store(k, &resp("<html><body>big page</body></html>"), 0);
        let a = cache.lookup(k, 1).expect("hit");
        let b = cache.lookup(k, 2).expect("hit");
        // Refcounted bodies: both hits read the same buffer.
        assert_eq!(a.body.as_bytes_buf().as_ref().as_ptr(), b.body.as_bytes_buf().as_ref().as_ptr());
    }
}
