//! The host web-server page cache.
//!
//! The paper's host computers "usually store and manage most of the
//! content" — and a production web server in that role fronts its
//! application programs with a page cache. This one is deterministic and
//! sim-time native: entries are keyed by the canonical request (method,
//! path, query, accept format, cookies), expire after a TTL
//! measured in simulated nanoseconds, and are bounded by a byte budget
//! with least-recently-used eviction driven by a logical tick counter —
//! no wall clock anywhere, so fleet runs stay bit-identical at any
//! thread count.
//!
//! Only successful `GET` responses that set no cookies are stored;
//! `POST`s (which mutate the database and session state) always reach
//! the application program. Requests carrying basic-auth credentials
//! bypass the cache entirely — lookup *and* store — so every authed
//! request is re-validated against its auth realm ([`WebServer`] never
//! builds a key for them).
//!
//! [`WebServer`]: crate::server::WebServer

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::http::{HttpRequest, HttpResponse};

#[derive(Debug, Clone)]
struct Entry {
    resp: HttpResponse,
    stored_ns: u64,
    last_used: u64,
    bytes: usize,
}

/// A TTL + LRU page cache over canonical-request keys.
#[derive(Debug)]
pub struct PageCache {
    ttl_ns: u64,
    byte_budget: usize,
    entries: HashMap<String, Entry>,
    bytes: usize,
    /// Logical LRU clock: bumped on every touch, so the eviction victim
    /// (minimum tick) is unique and deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache holding entries for `ttl_ns` simulated nanoseconds
    /// within a `byte_budget` of body bytes.
    pub fn new(ttl_ns: u64, byte_budget: usize) -> Self {
        PageCache {
            ttl_ns,
            byte_budget,
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The canonical cache key for a request. Query parameters and
    /// cookies live in `BTreeMap`s, so the rendering is order-stable.
    pub fn key(req: &HttpRequest) -> String {
        let mut key = format!("{:?} {}", req.method, req.path);
        for (name, value) in &req.params {
            let _ = write!(key, "&{name}={value}");
        }
        let _ = write!(key, "|{:?}", req.accept);
        for (name, value) in &req.cookies {
            let _ = write!(key, ";{name}={value}");
        }
        key
    }

    /// Returns the cached response when an entry exists and is still
    /// fresh at `now_ns`. Expired entries are dropped on the way.
    pub fn lookup(&mut self, key: &str, now_ns: u64) -> Option<HttpResponse> {
        let fresh = match self.entries.get(key) {
            Some(entry) => now_ns.saturating_sub(entry.stored_ns) < self.ttl_ns,
            None => {
                self.misses += 1;
                return None;
            }
        };
        if !fresh {
            if let Some(old) = self.entries.remove(key) {
                self.bytes -= old.bytes;
            }
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        self.tick += 1;
        let entry = self.entries.get_mut(key).expect("checked above");
        entry.last_used = self.tick;
        Some(entry.resp.clone())
    }

    /// Stores a response, evicting least-recently-used entries until the
    /// byte budget holds. Returns how many entries were evicted.
    /// Responses larger than the whole budget are not stored.
    pub fn store(&mut self, key: String, resp: &HttpResponse, now_ns: u64) -> usize {
        let bytes = key.len() + resp.body.len();
        if bytes > self.byte_budget {
            return 0;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                resp: resp.clone(),
                stored_ns: now_ns,
                last_used: self.tick,
                bytes,
            },
        );
        self.bytes += bytes;
        let mut evicted = 0;
        while self.bytes > self.byte_budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            let old = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= old.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Body + key bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Fresh lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing fresh since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> HttpResponse {
        HttpResponse::ok(body.to_owned())
    }

    #[test]
    fn entries_expire_after_the_ttl() {
        let mut cache = PageCache::new(1_000, 10_000);
        cache.store("k".into(), &resp("<html><body>x</body></html>"), 0);
        assert!(cache.lookup("k", 999).is_some());
        assert!(cache.lookup("k", 1_000).is_none());
        assert!(cache.is_empty(), "expired entry is dropped");
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let mut cache = PageCache::new(u64::MAX, 60);
        cache.store("a".into(), &resp("<html>aaaaaaaaaa</html>"), 0);
        cache.store("b".into(), &resp("<html>bbbbbbbbbb</html>"), 0);
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup("a", 1).is_some());
        let evicted = cache.store("c".into(), &resp("<html>cccccccccc</html>"), 2);
        assert_eq!(evicted, 1);
        assert!(cache.lookup("a", 3).is_some());
        assert!(cache.lookup("b", 3).is_none());
        assert!(cache.lookup("c", 3).is_some());
        assert!(cache.bytes() <= 60);
    }

    #[test]
    fn oversized_responses_are_not_stored() {
        let mut cache = PageCache::new(u64::MAX, 10);
        let evicted = cache.store("k".into(), &resp(&"x".repeat(100)), 0);
        assert_eq!(evicted, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn keys_are_canonical_over_request_fields() {
        let a = PageCache::key(&HttpRequest::get("/shop?x=1&y=2"));
        let b = PageCache::key(&HttpRequest::get("/shop?y=2&x=1"));
        assert_eq!(a, b, "query order does not change the key");
        let c = PageCache::key(&HttpRequest::get("/shop?x=1&y=3"));
        assert_ne!(a, c);
        let d = PageCache::key(&HttpRequest::get("/shop?x=1&y=2").with_cookie("sid", "s1"));
        assert_ne!(a, d, "cookies partition the key space");
    }
}
