#![warn(missing_docs)]
//! # hostsite — the host computer (component vi)
//!
//! §7 of the paper: "A host computer produces and stores all the
//! information for mobile commerce applications … It contains three major
//! components: a Web server, a database server, and application programs
//! and support software."
//!
//! * [`db`] — the database server: an embedded storage engine with typed
//!   tables, primary and secondary indexes, ACID transactions (undo-log
//!   rollback), a write-ahead journal with crash recovery, and an
//!   optional memory cap (the "embedded databases have very small
//!   footprints" constraint the paper highlights for handhelds).
//! * [`http`] — HTTP-like request/response types with content negotiation
//!   (the Accept side of serving HTML to desktops, WML/cHTML to phones).
//! * [`server`] — the web server: routing, CGI-style [`server::AppProgram`]s,
//!   DBM-style authentication realms, configurable error pages, access
//!   logging and cookie-based sessions (the Apache feature set §7 name-checks).
//! * [`host`] — the assembled host computer with a CPU cost model so the
//!   end-to-end system can charge realistic processing latency.
//! * [`cache`] — the deterministic sim-time page cache (TTL + LRU byte
//!   budget) the web server fronts its application programs with.

pub mod cache;
pub mod db;
pub mod host;
pub mod http;
pub mod intern;
pub mod server;

pub use cache::PageCache;
pub use db::{Database, DbError, Value};
pub use host::HostComputer;
pub use intern::KeyInterner;
pub use http::{Body, ContentFormat, HttpRequest, HttpResponse, Method, Status};
pub use server::{AppProgram, ServerCtx, WebServer};
