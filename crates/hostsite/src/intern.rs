//! Canonical-key interning for the caching tiers.
//!
//! Every cache in the system — the host page cache, the gateway content
//! cache, the database query cache — used to build an owned key (a
//! `format!`ed `String` or a struct of cloned fields) on **every**
//! lookup, then hash that key again inside `HashMap`. At fleet scale
//! that is one allocation plus a full re-hash per transaction per tier,
//! for keys drawn from a tiny set of distinct request shapes.
//!
//! [`KeyInterner`] gives each distinct canonical key a dense `u64` id,
//! computed once: callers hash the *borrowed* request fields (no
//! allocation), probe with a caller-supplied equality closure against
//! the stored canonical key, and only materialise an owned key the first
//! time a shape is seen. Cache maps are then keyed by the `u64` id, so
//! steady-state lookups are alloc-free and hash eight bytes instead of a
//! rendered string.
//!
//! Determinism: ids are assigned in first-seen order, which is itself a
//! deterministic function of the (deterministic) simulation. Nothing
//! observable depends on the numeric id values — they never leave the
//! cache that minted them — so interning cannot perturb fleet
//! byte-identity across thread counts.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;

/// Interns canonical cache keys of type `K`, handing out dense `u64` ids.
///
/// The interner never forgets a key: ids are stable for the lifetime of
/// the cache that owns it, so an entry evicted and re-admitted reuses
/// its id (and the re-admission pays no key construction either).
/// Because of that, callers must only intern keys they intend to store —
/// lookups use [`KeyInterner::probe_with`], which never grows the table,
/// so a stream of never-revisiting keys (distinct search queries) holds
/// flat memory.
#[derive(Debug)]
pub struct KeyInterner<K> {
    /// hash of the canonical key → ids of keys with that hash.
    buckets: HashMap<u64, Vec<u64>>,
    /// id → canonical key, densely indexed.
    keys: Vec<K>,
}

impl<K> Default for KeyInterner<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> KeyInterner<K> {
    /// An empty interner.
    pub fn new() -> Self {
        KeyInterner {
            buckets: HashMap::new(),
            keys: Vec::new(),
        }
    }

    /// Returns the id for the key described by (`hash`, `eq`), interning
    /// it via `make` on first sight.
    ///
    /// `hash` must be computed consistently for probes that `eq` would
    /// call equal (same hashing scheme on every call — the interner
    /// never re-hashes stored keys itself). `eq` is called with stored
    /// candidate keys sharing `hash`; `make` runs at most once.
    pub fn intern_with(
        &mut self,
        hash: u64,
        mut eq: impl FnMut(&K) -> bool,
        make: impl FnOnce() -> K,
    ) -> u64 {
        let KeyInterner { buckets, keys } = self;
        let ids = buckets.entry(hash).or_default();
        for &id in ids.iter() {
            if eq(&keys[id as usize]) {
                return id;
            }
        }
        let id = keys.len() as u64;
        keys.push(make());
        ids.push(id);
        id
    }

    /// Looks up the id for the key described by (`hash`, `eq`) without
    /// interning it: `None` when the key has never been seen.
    ///
    /// This is the lookup half of [`KeyInterner::intern_with`], for
    /// callers that must not let unseen keys grow the interner — a
    /// high-cardinality key space (distinct search query strings) would
    /// otherwise intern a key per probe and never free it. Caches probe
    /// on lookup and intern only when they actually store.
    pub fn probe_with(&self, hash: u64, mut eq: impl FnMut(&K) -> bool) -> Option<u64> {
        self.buckets
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| eq(&self.keys[id as usize]))
    }

    /// The canonical key for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not handed out by this interner.
    pub fn resolve(&self, id: u64) -> &K {
        &self.keys[id as usize]
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// A fresh hasher with fixed (process-stable) keys for interner probes.
///
/// `DefaultHasher::new()` is specified to produce the same stream for
/// the same input bytes within a process, which is all the interner
/// needs — hashes never cross process or thread boundaries.
pub fn probe_hasher() -> DefaultHasher {
    DefaultHasher::new()
}

/// A [`fmt::Write`] sink that feeds written text into a [`Hasher`].
///
/// Lets a cache hash its canonical *rendering* of a request without
/// materialising the rendered string: the same render function that
/// would build the key streams through this instead.
pub struct HashWriter<'a, H: Hasher>(pub &'a mut H);

impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// A [`fmt::Write`] sink that *matches* written text against a stored
/// string instead of building one.
///
/// Rendering a request into a `PrefixMatcher` over a candidate key
/// checks "would this request render to exactly that key" with zero
/// allocation: each written chunk must be the next prefix of the
/// remainder, and [`PrefixMatcher::matched`] requires the remainder to
/// be fully consumed.
pub struct PrefixMatcher<'a> {
    rest: &'a str,
}

impl<'a> PrefixMatcher<'a> {
    /// Starts matching against `candidate`.
    pub fn new(candidate: &'a str) -> Self {
        PrefixMatcher { rest: candidate }
    }

    /// True when everything written so far equals the full candidate.
    pub fn matched(&self) -> bool {
        self.rest.is_empty()
    }
}

impl fmt::Write for PrefixMatcher<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        match self.rest.strip_prefix(s) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            // Divergence: surface as a fmt error so the render function
            // aborts early instead of walking the whole request.
            None => Err(fmt::Error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    fn hash_str(s: &str) -> u64 {
        let mut h = probe_hasher();
        h.write(s.as_bytes());
        h.finish()
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner: KeyInterner<String> = KeyInterner::new();
        let a = interner.intern_with(hash_str("alpha"), |k| k == "alpha", || "alpha".to_owned());
        let b = interner.intern_with(hash_str("beta"), |k| k == "beta", || "beta".to_owned());
        let a2 = interner.intern_with(hash_str("alpha"), |k| k == "alpha", || {
            panic!("make must not run for a known key")
        });
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a, b), (0, 1), "ids are dense in first-seen order");
        assert_eq!(interner.resolve(a), "alpha");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn colliding_hashes_still_separate_by_equality() {
        let mut interner: KeyInterner<String> = KeyInterner::new();
        // Force both keys into one bucket.
        let a = interner.intern_with(7, |k| k == "x", || "x".to_owned());
        let b = interner.intern_with(7, |k| k == "y", || "y".to_owned());
        assert_ne!(a, b);
        assert_eq!(interner.resolve(b), "y");
    }

    #[test]
    fn prefix_matcher_requires_exact_rendering() {
        let mut m = PrefixMatcher::new("GET /shop");
        assert!(write!(m, "GET").is_ok());
        assert!(write!(m, " /shop").is_ok());
        assert!(m.matched());

        let mut m = PrefixMatcher::new("GET /shop");
        assert!(write!(m, "GET /shopping").is_err(), "overlong write diverges");

        let mut m = PrefixMatcher::new("GET /shop");
        assert!(write!(m, "GET ").is_ok());
        assert!(!m.matched(), "unconsumed remainder is not a match");
    }

    #[test]
    fn hash_writer_matches_whole_buffer_hashing() {
        let mut h1 = probe_hasher();
        let mut w = HashWriter(&mut h1);
        let path = "/shop?x=1"; // runtime arg => the write arrives in chunks
        let _ = write!(w, "GET {path}");
        let mut h2 = probe_hasher();
        h2.write(b"GET /shop?x=1");
        assert_eq!(h1.finish(), h2.finish(), "chunked writes hash like one");
    }
}
