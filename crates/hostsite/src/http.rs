//! HTTP-like request/response types.
//!
//! These are the messages exchanged on the wired side of the system: the
//! WAP gateway issues them on behalf of mobile stations ("requests from
//! mobile stations are sent as a URL through the network to the WAP
//! Gateway", §5.1), i-mode phones issue them (nearly) directly, and
//! desktop clients in the EC baseline issue them natively.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use bytes::Bytes;

/// Request method (the subset commerce flows need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Fetch a resource.
    Get,
    /// Submit data.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// The markup family a client can render — drives content negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContentFormat {
    /// Full HTML (desktop browsers; also the gateway's upstream format).
    #[default]
    Html,
    /// WML decks (WAP microbrowsers).
    Wml,
    /// Compact HTML (i-mode handsets).
    Chtml,
}

impl ContentFormat {
    /// The MIME type string for this format.
    pub fn mime(self) -> &'static str {
        match self {
            ContentFormat::Html => "text/html",
            ContentFormat::Wml => "text/vnd.wap.wml",
            ContentFormat::Chtml => "text/html; profile=chtml",
        }
    }
}

/// Response status (the subset the server emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200.
    Ok,
    /// 302 — with a `Location` header.
    Found,
    /// 400.
    BadRequest,
    /// 401 — authentication required.
    Unauthorized,
    /// 404.
    NotFound,
    /// 500.
    ServerError,
}

impl Status {
    /// Numeric status code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Found => 302,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::NotFound => 404,
            Status::ServerError => 500,
        }
    }

    /// True for 2xx/3xx.
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok | Status::Found)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// An HTTP-like request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Path component, e.g. `/catalog`.
    pub path: String,
    /// Decoded query/form parameters.
    pub params: BTreeMap<String, String>,
    /// Format the client wants (the Accept header, collapsed).
    pub accept: ContentFormat,
    /// Cookies sent by the client.
    pub cookies: BTreeMap<String, String>,
    /// `Authorization` credentials, as `(user, password)`.
    pub auth: Option<(String, String)>,
}

impl HttpRequest {
    /// Builds a GET request for `path` (query params may be embedded as
    /// `?k=v&k2=v2`).
    pub fn get(path: &str) -> Self {
        let (path, params) = split_query(path);
        HttpRequest {
            method: Method::Get,
            path,
            params,
            accept: ContentFormat::Html,
            cookies: BTreeMap::new(),
            auth: None,
        }
    }

    /// Builds a POST request with form parameters.
    pub fn post(path: &str, form: impl IntoIterator<Item = (String, String)>) -> Self {
        let (path, mut params) = split_query(path);
        params.extend(form);
        HttpRequest {
            method: Method::Post,
            path,
            params,
            accept: ContentFormat::Html,
            cookies: BTreeMap::new(),
            auth: None,
        }
    }

    /// Sets the accepted content format (builder style).
    pub fn with_accept(mut self, accept: ContentFormat) -> Self {
        self.accept = accept;
        self
    }

    /// Attaches a cookie (builder style).
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.cookies.insert(name.to_owned(), value.to_owned());
        self
    }

    /// Attaches basic credentials (builder style).
    pub fn with_auth(mut self, user: &str, password: &str) -> Self {
        self.auth = Some((user.to_owned(), password.to_owned()));
        self
    }

    /// A parameter's value, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Approximate bytes of this request on the wire.
    pub fn wire_size(&self) -> usize {
        let mut n = 16 + self.path.len() + 64; // request line + fixed headers
        for (k, v) in &self.params {
            n += k.len() + v.len() + 2;
        }
        for (k, v) in &self.cookies {
            n += k.len() + v.len() + 10;
        }
        if self.auth.is_some() {
            n += 32;
        }
        n
    }
}

fn split_query(path: &str) -> (String, BTreeMap<String, String>) {
    match path.split_once('?') {
        None => (path.to_owned(), BTreeMap::new()),
        Some((p, q)) => {
            let mut params = BTreeMap::new();
            for pair in q.split('&') {
                if pair.is_empty() {
                    continue;
                }
                match pair.split_once('=') {
                    Some((k, v)) => params.insert(k.to_owned(), v.to_owned()),
                    None => params.insert(pair.to_owned(), String::new()),
                };
            }
            (p.to_owned(), params)
        }
    }
}

/// A response body: UTF-8 markup behind a refcounted [`Bytes`] buffer.
///
/// Cloning a `Body` bumps a refcount instead of copying the markup, so a
/// page-cache hit or an error-page substitution shares one allocation
/// across every response that serves it. The buffer is guaranteed valid
/// UTF-8 by construction (`From<String>` / `From<&str>` are the only
/// constructors), and the type derefs to `str` so call sites read it
/// exactly like the `String` it replaces.
#[derive(Clone, Default)]
pub struct Body(Bytes);

impl Body {
    /// The body text.
    pub fn as_str(&self) -> &str {
        // SAFETY: every constructor takes `str`/`String` input, so the
        // buffer is valid UTF-8 by construction.
        unsafe { std::str::from_utf8_unchecked(&self.0) }
    }

    /// The underlying refcounted buffer (a cheap clone, no copy).
    pub fn as_bytes_buf(&self) -> Bytes {
        self.0.clone()
    }

    /// Unwraps into the underlying refcounted buffer.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }
}

impl Deref for Body {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Body {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body(Bytes::from(s))
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Self {
        Body(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Body {}

impl PartialEq<str> for Body {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Body {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Body {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

/// An HTTP-like response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: Status,
    /// Body format.
    pub format: ContentFormat,
    /// Markup body (refcounted; cloning shares the buffer).
    pub body: Body,
    /// The parsed form of `body`, when the producer built the page as a
    /// tree (see [`HttpResponse::from_page`]). Invariant: when set,
    /// `body` is exactly `page.to_markup()`, so consumers that would
    /// parse the body may use the tree instead.
    pub page: Option<Arc<markup::Element>>,
    /// Cookies to set on the client.
    pub set_cookies: BTreeMap<String, String>,
    /// Redirect target for 302 responses.
    pub location: Option<String>,
    /// Cache-admission bypass (the `Cache-Control: no-store` analogue):
    /// neither the host page cache nor the gateway content cache stores
    /// this response. Producers set it on one-shot pages — search
    /// results keyed by a high-cardinality query string — so they cannot
    /// churn the hot browse pages out of the LRU tiers.
    pub no_store: bool,
}

impl HttpResponse {
    /// A 200 response with an HTML body.
    pub fn ok(body: impl Into<Body>) -> Self {
        HttpResponse {
            status: Status::Ok,
            format: ContentFormat::Html,
            body: body.into(),
            page: None,
            set_cookies: BTreeMap::new(),
            location: None,
            no_store: false,
        }
    }

    /// A 200 response built from a page tree: serialises once and, when
    /// the (normalised) tree round-trips through the parser, carries it
    /// in [`HttpResponse::page`] so downstream consumers — gateways,
    /// filters — skip re-parsing the body. Falls back to a body-only
    /// response for trees the serialiser cannot round-trip.
    pub fn from_page(mut page: markup::Element) -> Self {
        let round_trips = page.normalise_for_roundtrip();
        let mut resp = Self::ok(page.to_markup());
        if round_trips {
            resp.page = Some(Arc::new(page));
        }
        resp
    }

    /// An error response with the given status and body.
    pub fn error(status: Status, body: impl Into<Body>) -> Self {
        HttpResponse {
            status,
            ..Self::ok(body)
        }
    }

    /// A 302 redirect.
    pub fn redirect(location: impl Into<String>) -> Self {
        HttpResponse {
            status: Status::Found,
            location: Some(location.into()),
            ..Self::ok("")
        }
    }

    /// Sets a cookie (builder style).
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.set_cookies.insert(name.to_owned(), value.to_owned());
        self
    }

    /// Marks the response cache-bypassing (builder style) — see
    /// [`HttpResponse::no_store`].
    pub fn with_no_store(mut self) -> Self {
        self.no_store = true;
        self
    }

    /// Sets the body format (builder style).
    pub fn with_format(mut self, format: ContentFormat) -> Self {
        self.format = format;
        self
    }

    /// Approximate bytes of this response on the wire.
    pub fn wire_size(&self) -> usize {
        let mut n = 64 + self.body.len();
        for (k, v) in &self.set_cookies {
            n += k.len() + v.len() + 14;
        }
        if let Some(loc) = &self.location {
            n += loc.len() + 12;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_splits_query_params() {
        let req = HttpRequest::get("/catalog?category=toys&page=2");
        assert_eq!(req.path, "/catalog");
        assert_eq!(req.param("category"), Some("toys"));
        assert_eq!(req.param("page"), Some("2"));
        assert_eq!(req.param("missing"), None);
        assert_eq!(req.method, Method::Get);
    }

    #[test]
    fn post_merges_form_and_query() {
        let req = HttpRequest::post(
            "/order?src=banner",
            vec![("sku".to_owned(), "42".to_owned())],
        );
        assert_eq!(req.param("src"), Some("banner"));
        assert_eq!(req.param("sku"), Some("42"));
        assert_eq!(req.method, Method::Post);
    }

    #[test]
    fn builders_set_fields() {
        let req = HttpRequest::get("/")
            .with_accept(ContentFormat::Wml)
            .with_cookie("sid", "abc")
            .with_auth("u", "p");
        assert_eq!(req.accept, ContentFormat::Wml);
        assert_eq!(req.cookies.get("sid").map(String::as_str), Some("abc"));
        assert_eq!(req.auth.as_ref().unwrap().0, "u");
    }

    #[test]
    fn wire_sizes_grow_with_content() {
        let small = HttpRequest::get("/a");
        let big = HttpRequest::get("/a?x=1&y=2").with_cookie("s", "t");
        assert!(big.wire_size() > small.wire_size());
        let r1 = HttpResponse::ok("x");
        let r2 = HttpResponse::ok("x".repeat(1000));
        assert_eq!(r2.wire_size() - r1.wire_size(), 999);
    }

    #[test]
    fn response_constructors() {
        assert_eq!(HttpResponse::ok("hi").status, Status::Ok);
        let r = HttpResponse::redirect("/next");
        assert_eq!(r.status, Status::Found);
        assert_eq!(r.location.as_deref(), Some("/next"));
        assert!(!HttpResponse::error(Status::NotFound, "gone")
            .status
            .is_success());
    }

    #[test]
    fn status_codes_and_mime_types() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Unauthorized.code(), 401);
        assert_eq!(ContentFormat::Wml.mime(), "text/vnd.wap.wml");
        assert_eq!(Method::Post.to_string(), "POST");
    }

    #[test]
    fn from_page_body_is_exactly_the_trees_markup() {
        let tree = markup::Element::new("html").with_child(
            markup::Element::new("body")
                .with_child(markup::Element::new("p").with_text("pay  \n now")),
        );
        let resp = HttpResponse::from_page(tree);
        let page = resp.page.as_deref().expect("round-trippable page attaches");
        assert_eq!(resp.body.as_str(), page.to_markup());
        // The invariant consumers rely on: parsing the body yields the tree.
        assert_eq!(&markup::parse::parse(resp.body.as_str()).unwrap(), page);
    }

    #[test]
    fn from_page_detaches_unparseable_trees() {
        let resp =
            HttpResponse::from_page(markup::Element::new("br").with_text("void with child"));
        assert!(resp.page.is_none());
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn empty_and_valueless_query_pairs() {
        let req = HttpRequest::get("/p?flag&x=&&y=2");
        assert_eq!(req.param("flag"), Some(""));
        assert_eq!(req.param("x"), Some(""));
        assert_eq!(req.param("y"), Some("2"));
    }
}
