#![warn(missing_docs)]
//! # station — mobile stations (component ii)
//!
//! §4 and §8 of the paper: mobile stations "are limited by their small
//! screens, limited memory, limited processing power, and low battery
//! power". This crate turns Table 2's five commercial devices and the
//! three operating systems of §4.1 into profiles whose constraints are
//! *load-bearing*: parsing and rendering cost CPU time inversely
//! proportional to clock speed, decks that exceed memory fail to load,
//! every radio byte drains the battery, and the on-device store enforces
//! the small-footprint discipline §7 describes for embedded databases.
//!
//! * [`os`] — Palm OS, Pocket PC, Symbian OS models,
//! * [`device`] — Table 2 device profiles (plus custom builds),
//! * [`battery`] — joule-accounting battery,
//! * [`browser`] — the microbrowser: parses WML/cHTML/HTML, enforces
//!   device limits, renders into screen-sized lines and links,
//! * [`storage`] — the embedded key-value store with an LRU byte budget,
//!   and the flat-file alternative it outperforms.

pub mod battery;
pub mod browser;
pub mod device;
pub mod os;
pub mod storage;

pub use battery::Battery;
pub use browser::{BrowserError, Microbrowser, RenderMemo, RenderedPage, RenderedView};
pub use device::DeviceProfile;
pub use os::MobileOs;
pub use storage::{EmbeddedStore, FlatFileStore};
