//! Mobile operating systems — §4.1.
//!
//! "The operating systems, the core of mobile stations, are dominated by
//! just three major brands: Palm OS, Pocket PC, and Symbian OS." The
//! paper's qualitative claims become model parameters here: Palm OS's
//! "plain vanilla design has resulted in a long battery life,
//! approximately twice that of its rivals"; Windows CE/Pocket PC was
//! "battery-hungry"; Symbian's EPOC32 "supports preemptive multitasking".

/// A mobile-station operating system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobileOs {
    /// Palm OS — minimal design, exceptional battery life (§4.1).
    PalmOs,
    /// Microsoft Pocket PC — more computing power, more power draw (§4.1).
    PocketPc,
    /// Symbian OS (EPOC32) — 32-bit, preemptive multitasking (§4.1).
    SymbianOs,
}

impl std::fmt::Display for MobileOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MobileOs::PalmOs => "Palm OS",
            MobileOs::PocketPc => "MS Pocket PC",
            MobileOs::SymbianOs => "Symbian OS",
        })
    }
}

impl MobileOs {
    /// All three OS brands.
    pub const ALL: [MobileOs; 3] = [MobileOs::PalmOs, MobileOs::PocketPc, MobileOs::SymbianOs];

    /// Multiplier on baseline idle power draw. Palm's vanilla design gives
    /// it roughly half its rivals' draw (≈ twice the battery life, §4.1).
    pub fn idle_power_factor(self) -> f64 {
        match self {
            MobileOs::PalmOs => 0.5,
            MobileOs::PocketPc => 1.2,
            MobileOs::SymbianOs => 1.0,
        }
    }

    /// Whether the kernel preemptively multitasks (EPOC32 does; §4.1).
    pub fn preemptive_multitasking(self) -> bool {
        matches!(self, MobileOs::SymbianOs | MobileOs::PocketPc)
    }

    /// Per-request OS overhead factor on CPU work (heavier system
    /// software costs more cycles for the same page).
    pub fn cpu_overhead_factor(self) -> f64 {
        match self {
            MobileOs::PalmOs => 1.0,
            MobileOs::PocketPc => 1.3,
            MobileOs::SymbianOs => 1.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palm_battery_advantage_is_roughly_2x() {
        // §4.1: Palm battery life ≈ twice its rivals'.
        let palm = MobileOs::PalmOs.idle_power_factor();
        for rival in [MobileOs::PocketPc, MobileOs::SymbianOs] {
            let ratio = rival.idle_power_factor() / palm;
            assert!((2.0..=2.5).contains(&ratio), "{rival}: {ratio}");
        }
    }

    #[test]
    fn symbian_multitasks_preemptively() {
        assert!(MobileOs::SymbianOs.preemptive_multitasking());
        assert!(!MobileOs::PalmOs.preemptive_multitasking());
    }

    #[test]
    fn pocket_pc_is_the_heaviest() {
        assert!(MobileOs::PocketPc.cpu_overhead_factor() > MobileOs::PalmOs.cpu_overhead_factor());
    }

    #[test]
    fn display_names() {
        assert_eq!(MobileOs::PalmOs.to_string(), "Palm OS");
        assert_eq!(MobileOs::PocketPc.to_string(), "MS Pocket PC");
    }
}
