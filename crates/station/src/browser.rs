//! The microbrowser.
//!
//! Mobile stations browse through a *microbrowser* (§7 calls host-side
//! programs aware of "the targets, browsers or microbrowsers, they
//! serve"). This one parses WML (textual or WBXML binary), cHTML or HTML,
//! enforces the device's content budget, lays text out into screen-width
//! lines, collects links and forms, and reports how long the parse+render
//! took on the device's CPU — the quantity the Table 2 experiment sweeps
//! across devices. It also keeps the station-side cookie jar (§7 notes
//! cookies are among the few client-side programs).

use std::collections::BTreeMap;
use std::rc::Rc;

use markup::dom::{Element, Node};
use markup::{wbxml, wml};
use simnet::SimDuration;

use crate::device::DeviceProfile;

/// Content types the microbrowser can be handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentKind {
    /// Textual WML deck.
    Wml,
    /// WBXML-encoded binary WML deck.
    WmlBinary,
    /// Compact HTML page.
    Chtml,
    /// Full HTML (desktop-grade; heavy for a handheld).
    Html,
}

/// Errors the browser can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum BrowserError {
    /// The payload exceeds the device's content budget.
    TooLarge {
        /// Payload size.
        size: usize,
        /// The device's budget.
        budget: usize,
    },
    /// The markup failed to parse.
    BadMarkup(String),
    /// A WML deck failed validation.
    BadWml(String),
}

impl std::fmt::Display for BrowserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrowserError::TooLarge { size, budget } => {
                write!(
                    f,
                    "content of {size} bytes exceeds device budget of {budget} bytes"
                )
            }
            BrowserError::BadMarkup(m) => write!(f, "unparseable markup: {m}"),
            BrowserError::BadWml(m) => write!(f, "invalid WML: {m}"),
        }
    }
}

impl std::error::Error for BrowserError {}

/// The outcome of rendering a page or deck card.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedPage {
    /// Page or card title.
    pub title: String,
    /// Laid-out text lines, each at most the device's line width.
    pub lines: Vec<String>,
    /// `(label, href)` of every link, in document order.
    pub links: Vec<(String, String)>,
    /// Names of input fields present.
    pub inputs: Vec<String>,
    /// Number of cards in the deck (1 for cHTML/HTML pages).
    pub card_count: usize,
    /// CPU time the parse+render took on this device.
    pub cost: SimDuration,
}

impl RenderedPage {
    /// Number of screenfuls the content occupies on the device.
    pub fn screens(&self, device: &DeviceProfile) -> usize {
        self.lines.len().div_ceil(device.lines_per_screen())
    }
}

/// A rendered page plus its joined screen text — what the memoised
/// render path hands out, so the per-transaction `lines.join` happens
/// once per distinct payload instead of once per transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedView {
    /// The rendered page.
    pub page: RenderedPage,
    /// `page.lines` joined with `\n`, computed once.
    pub text: String,
}

impl RenderedView {
    /// Builds the view for a freshly rendered page.
    pub fn of(page: RenderedPage) -> Self {
        let text = page.lines.join("\n");
        RenderedView { page, text }
    }
}

/// Default bound on distinct payloads a [`RenderMemo`] holds.
pub const RENDER_MEMO_CAPACITY: usize = 512;

/// A bounded, shard-local memo of pure render results.
///
/// [`Microbrowser::render`] is a pure function of `(content, kind)` and
/// the device profile: no clock, no randomness, no cookie-jar reads. A
/// fleet shard renders the same storefront deck once per user, so the
/// memo replays the first render — an `Rc` bump instead of a parse,
/// validate and layout pass. Hits are byte-identical to fresh renders,
/// so attaching a memo never changes a transaction; shards never share
/// one across threads, keeping fixed-seed runs digest-identical at any
/// thread count. Inserts stop at the capacity bound so per-user unique
/// decks (receipts) cannot grow it O(users).
#[derive(Debug, Default)]
pub struct RenderMemo {
    entries: std::collections::HashMap<(ContentKind, bytes::Bytes), Rc<RenderedView>>,
    hits: u64,
    misses: u64,
}

impl RenderMemo {
    /// A fresh, empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct payloads held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Renders that ran the full pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// A microbrowser bound to a device profile.
#[derive(Debug)]
pub struct Microbrowser {
    device: DeviceProfile,
    cookies: BTreeMap<String, String>,
}

impl Microbrowser {
    /// Creates a browser for `device`.
    pub fn new(device: DeviceProfile) -> Self {
        Microbrowser {
            device,
            cookies: BTreeMap::new(),
        }
    }

    /// The device this browser runs on.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The cookie jar.
    pub fn cookies(&self) -> &BTreeMap<String, String> {
        &self.cookies
    }

    /// Stores cookies set by a response.
    pub fn accept_cookies<'a>(&mut self, cookies: impl IntoIterator<Item = (&'a str, &'a str)>) {
        for (k, v) in cookies {
            self.cookies.insert(k.to_owned(), v.to_owned());
        }
    }

    /// Parses and renders `content`, charging device-scaled CPU time.
    ///
    /// # Errors
    ///
    /// [`BrowserError::TooLarge`] when the payload exceeds the device
    /// budget, [`BrowserError::BadMarkup`]/[`BrowserError::BadWml`] on
    /// malformed content.
    pub fn render(&self, content: &[u8], kind: ContentKind) -> Result<RenderedPage, BrowserError> {
        self.render_prepared(content, kind, None)
    }

    /// [`Microbrowser::render`], optionally handed `content`'s already
    /// parsed/decoded tree (`Exchange::deck`) so the decode step is
    /// skipped. The caller guarantees the tree is exactly what decoding
    /// `content` would produce; size budget, validation, layout and the
    /// device cost model all still run against `content`.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Microbrowser::render`] produces.
    pub fn render_prepared(
        &self,
        content: &[u8],
        kind: ContentKind,
        prepared: Option<&Element>,
    ) -> Result<RenderedPage, BrowserError> {
        let budget = self.device.content_budget_bytes();
        if content.len() > budget {
            return Err(BrowserError::TooLarge {
                size: content.len(),
                budget,
            });
        }

        let decoded: Element;
        let root: &Element = match prepared {
            Some(root) => root,
            None => {
                decoded = match kind {
                    ContentKind::WmlBinary => {
                        wbxml::decode(content).map_err(|e| BrowserError::BadMarkup(e.to_string()))?
                    }
                    ContentKind::Wml | ContentKind::Chtml | ContentKind::Html => {
                        let text = std::str::from_utf8(content)
                            .map_err(|e| BrowserError::BadMarkup(e.to_string()))?;
                        markup::parse::parse(text)
                            .map_err(|e| BrowserError::BadMarkup(e.to_string()))?
                    }
                };
                &decoded
            }
        };

        let card_count = match kind {
            ContentKind::Wml | ContentKind::WmlBinary => {
                wml::validate(root).map_err(|e| BrowserError::BadWml(e.message))?;
                wml::card_ids(root).len()
            }
            _ => 1,
        };

        // Title: WML card title attr, else <title> element.
        let title = match kind {
            ContentKind::Wml | ContentKind::WmlBinary => root
                .find("card")
                .and_then(|c| c.attr("title"))
                .unwrap_or("")
                .to_owned(),
            _ => root
                .find("title")
                .map(|t| t.text_content())
                .unwrap_or_default(),
        };

        // For WML, render the first card; for pages, the body.
        let scope: &Element = match kind {
            ContentKind::Wml | ContentKind::WmlBinary => root.find("card").unwrap_or(root),
            _ => root.find("body").unwrap_or(root),
        };

        let mut links = Vec::new();
        let mut inputs = Vec::new();
        let mut raw_lines: Vec<String> = Vec::new();
        collect_content(scope, &mut raw_lines, &mut links, &mut inputs);

        // Wrap to the device's line width.
        let width = self.device.chars_per_line();
        let mut lines = Vec::new();
        for raw in &raw_lines {
            wrap_into(raw, width, &mut lines);
        }

        let text_bytes: usize = lines.iter().map(String::len).sum();
        let cost = self.device.parse_cost(content.len())
            + self.device.render_cost(root.element_count(), text_bytes);

        Ok(RenderedPage {
            title,
            lines,
            links,
            inputs,
            card_count,
            cost,
        })
    }

    /// [`Microbrowser::render`] through a shard-local [`RenderMemo`]:
    /// repeated payloads replay the first render (an `Rc` bump), new
    /// ones run the full pipeline and are stored up to the memo bound.
    /// Render errors are never memoised — they are rare and recomputing
    /// keeps the memo a plain success cache.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Microbrowser::render`] produces.
    pub fn render_memoized(
        &self,
        content: &bytes::Bytes,
        kind: ContentKind,
        prepared: Option<&Element>,
        memo: &mut RenderMemo,
    ) -> Result<Rc<RenderedView>, BrowserError> {
        // The tuple key needs an owned `Bytes` — an Arc clone, no copy.
        if let Some(view) = memo.entries.get(&(kind, content.clone())) {
            memo.hits += 1;
            return Ok(Rc::clone(view));
        }
        memo.misses += 1;
        let view = Rc::new(RenderedView::of(self.render_prepared(content, kind, prepared)?));
        if memo.entries.len() < RENDER_MEMO_CAPACITY {
            memo.entries.insert((kind, content.clone()), Rc::clone(&view));
        }
        Ok(view)
    }
}

/// Gathers block text lines, links and inputs from an element subtree.
fn collect_content(
    scope: &Element,
    lines: &mut Vec<String>,
    links: &mut Vec<(String, String)>,
    inputs: &mut Vec<String>,
) {
    // Block-level accumulation: each <p>/<h*>/<li> becomes a line seed.
    let mut current = String::new();
    collect_inline(scope, &mut current, lines, links, inputs);
    if !current.trim().is_empty() {
        lines.push(current.trim().to_owned());
    }
}

fn collect_inline(
    e: &Element,
    current: &mut String,
    lines: &mut Vec<String>,
    links: &mut Vec<(String, String)>,
    inputs: &mut Vec<String>,
) {
    for child in e.children() {
        match child {
            Node::Text(t) => current.push_str(t),
            Node::Element(inner) => match inner.tag() {
                "p" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" | "li" | "div" | "tr" => {
                    if !current.trim().is_empty() {
                        lines.push(current.trim().to_owned());
                    }
                    current.clear();
                    collect_inline(inner, current, lines, links, inputs);
                    if !current.trim().is_empty() {
                        lines.push(current.trim().to_owned());
                    }
                    current.clear();
                }
                "br" => {
                    lines.push(current.trim().to_owned());
                    current.clear();
                }
                "a" => {
                    let label = inner.text_content();
                    current.push_str(&label);
                    links.push((label, inner.attr("href").unwrap_or("").to_owned()));
                }
                "input" => {
                    if let Some(name) = inner.attr("name") {
                        inputs.push(name.to_owned());
                    }
                }
                "go" => {
                    links.push((
                        "submit".to_owned(),
                        inner.attr("href").unwrap_or("").to_owned(),
                    ));
                }
                _ => collect_inline(inner, current, lines, links, inputs),
            },
        }
    }
}

/// Greedy word-wrap of `text` into `width`-character lines appended to `out`.
fn wrap_into(text: &str, width: usize, out: &mut Vec<String>) {
    let mut line = String::new();
    for word in text.split_whitespace() {
        if line.is_empty() {
            line = word.to_owned();
        } else if line.len() + 1 + word.len() <= width {
            line.push(' ');
            line.push_str(word);
        } else {
            out.push(std::mem::take(&mut line));
            line = word.to_owned();
        }
        // Hard-break pathological words.
        while line.len() > width {
            let head: String = line.chars().take(width).collect();
            out.push(head.clone());
            line = line[head.len()..].to_owned();
        }
    }
    if !line.is_empty() {
        out.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use markup::html;
    use markup::transcode::{html_to_wml, WmlOptions};

    fn sample_deck_bytes() -> Vec<u8> {
        let page = html::page(
            "Shop",
            vec![
                html::h1("Mobile Shop").into(),
                html::p("Everything you need while on the move").into(),
                html::a("/cart", "View cart").into(),
            ],
        );
        html_to_wml(&page, &WmlOptions::default())
            .to_markup()
            .into_bytes()
    }

    #[test]
    fn renders_wml_with_title_links_and_lines() {
        let browser = Microbrowser::new(DeviceProfile::palm_i705());
        let page = browser
            .render(&sample_deck_bytes(), ContentKind::Wml)
            .unwrap();
        assert_eq!(page.title, "Shop");
        assert_eq!(page.card_count, 1);
        assert!(page.lines.iter().any(|l| l.contains("Mobile Shop")));
        assert_eq!(page.links[0].1, "/cart");
        assert!(page.cost > SimDuration::ZERO);
    }

    #[test]
    fn lines_respect_device_width() {
        let browser = Microbrowser::new(DeviceProfile::palm_i705());
        let width = browser.device().chars_per_line();
        let page = browser
            .render(&sample_deck_bytes(), ContentKind::Wml)
            .unwrap();
        for line in &page.lines {
            assert!(line.len() <= width, "{line:?} exceeds {width}");
        }
    }

    #[test]
    fn binary_wml_renders_identically_to_text() {
        let deck_text = sample_deck_bytes();
        let deck = markup::parse::parse(std::str::from_utf8(&deck_text).unwrap()).unwrap();
        let binary = markup::wbxml::encode(&deck);
        let browser = Microbrowser::new(DeviceProfile::sony_clie_nr70v());
        let from_text = browser.render(&deck_text, ContentKind::Wml).unwrap();
        let from_binary = browser.render(&binary, ContentKind::WmlBinary).unwrap();
        assert_eq!(from_text.lines, from_binary.lines);
        assert_eq!(from_text.links, from_binary.links);
        // The binary payload parses faster (fewer bytes through the parser).
        assert!(from_binary.cost <= from_text.cost);
    }

    #[test]
    fn oversized_content_is_rejected() {
        let browser = Microbrowser::new(DeviceProfile::palm_i705());
        let budget = browser.device().content_budget_bytes();
        let huge = format!(
            "<wml><card id=\"a\"><p>{}</p></card></wml>",
            "x".repeat(budget)
        );
        let err = browser
            .render(huge.as_bytes(), ContentKind::Wml)
            .unwrap_err();
        assert!(matches!(err, BrowserError::TooLarge { .. }));
        // A roomier device loads the same deck fine.
        let big_browser = Microbrowser::new(DeviceProfile::toshiba_e740());
        assert!(big_browser
            .render(huge.as_bytes(), ContentKind::Wml)
            .is_ok());
    }

    #[test]
    fn slow_devices_pay_more_cpu_time_for_the_same_deck() {
        let deck = sample_deck_bytes();
        let slow = Microbrowser::new(DeviceProfile::palm_i705())
            .render(&deck, ContentKind::Wml)
            .unwrap();
        let fast = Microbrowser::new(DeviceProfile::toshiba_e740())
            .render(&deck, ContentKind::Wml)
            .unwrap();
        assert!(slow.cost > fast.cost * 5);
    }

    #[test]
    fn bad_markup_and_bad_wml_are_distinct_errors() {
        let browser = Microbrowser::new(DeviceProfile::ipaq_h3870());
        let err = browser
            .render(b"<wml><card>", ContentKind::Wml)
            .unwrap_err();
        assert!(matches!(err, BrowserError::BadMarkup(_)));
        let err = browser
            .render(b"<html><body>not wml</body></html>", ContentKind::Wml)
            .unwrap_err();
        assert!(matches!(err, BrowserError::BadWml(_)));
    }

    #[test]
    fn chtml_pages_render_with_inputs() {
        let page = html::page(
            "Order",
            vec![
                html::p("Enter SKU:").into(),
                html::form("/order", "sku", "Go").into(),
            ],
        );
        let chtml = markup::transcode::html_to_chtml(&page);
        let browser = Microbrowser::new(DeviceProfile::nokia_9290());
        let rendered = browser
            .render(chtml.to_markup().as_bytes(), ContentKind::Chtml)
            .unwrap();
        assert_eq!(rendered.title, "Order");
        assert!(rendered.inputs.contains(&"sku".to_owned()));
    }

    #[test]
    fn cookie_jar_accumulates() {
        let mut browser = Microbrowser::new(DeviceProfile::ipaq_h3870());
        browser.accept_cookies([("sid", "abc")]);
        browser.accept_cookies([("pref", "1"), ("sid", "def")]);
        assert_eq!(
            browser.cookies().get("sid").map(String::as_str),
            Some("def")
        );
        assert_eq!(browser.cookies().len(), 2);
    }

    #[test]
    fn screens_metric_reflects_device_height() {
        let deck = {
            let paragraphs: Vec<markup::Node> = (0..30)
                .map(|i| html::p(&format!("Line {i} of content here")).into())
                .collect();
            let page = html::page("Long", paragraphs);
            html_to_wml(
                &page,
                &WmlOptions {
                    max_card_bytes: 1 << 20,
                    ..Default::default()
                },
            )
            .to_markup()
        };
        let palm = Microbrowser::new(DeviceProfile::palm_i705());
        let rendered = palm.render(deck.as_bytes(), ContentKind::Wml).unwrap();
        assert!(rendered.screens(palm.device()) >= 2);
    }
}
