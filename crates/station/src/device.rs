//! Device profiles — the executable form of the paper's Table 2.
//!
//! | Vendor & Device | OS | Processor | RAM/ROM |
//! |---|---|---|---|
//! | Compaq iPAQ H3870 | MS Pocket PC 2002 | 206 MHz StrongARM | 64 MB / 32 MB |
//! | Nokia 9290 Communicator | Symbian OS | 32-bit ARM9 RISC | 16 MB / 8 MB |
//! | Palm i705 | Palm OS 4.1 | 33 MHz Dragonball VZ | 8 MB / 4 MB |
//! | SONY Clie PEG-NR70V | Palm OS 4.1 | 66 MHz Dragonball Super VZ | 16 MB / 8 MB |
//! | Toshiba E740 | MS Pocket PC 2002 | 400 MHz PXA250 | 64 MB / 32 MB |
//!
//! The specs feed derived cost functions (parse/render time per byte and
//! per element, content memory budget) so that running the same workload
//! on different rows of the table produces measurably different results —
//! which is what the Table 2 experiment reports.

use simnet::SimDuration;

use crate::os::MobileOs;

/// A mobile station's hardware/OS profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"Compaq iPAQ H3870"`.
    pub name: &'static str,
    /// Operating system.
    pub os: MobileOs,
    /// Processor description from Table 2.
    pub processor: &'static str,
    /// Clock speed in MHz.
    pub cpu_mhz: u32,
    /// Installed RAM in megabytes.
    pub ram_mb: u32,
    /// Installed ROM in megabytes.
    pub rom_mb: u32,
    /// Screen resolution `(width, height)` in pixels.
    pub screen: (u32, u32),
    /// Colour display?
    pub color: bool,
    /// Battery capacity in joules.
    pub battery_j: f64,
}

impl DeviceProfile {
    /// Compaq iPAQ H3870 — Pocket PC 2002, 206 MHz StrongARM, 64/32 MB.
    pub fn ipaq_h3870() -> Self {
        DeviceProfile {
            name: "Compaq iPAQ H3870",
            os: MobileOs::PocketPc,
            processor: "206 MHz Intel StrongARM 32-bit RISC",
            cpu_mhz: 206,
            ram_mb: 64,
            rom_mb: 32,
            screen: (240, 320),
            color: true,
            battery_j: 18_000.0,
        }
    }

    /// Nokia 9290 Communicator — Symbian OS, 32-bit ARM9, 16/8 MB.
    pub fn nokia_9290() -> Self {
        DeviceProfile {
            name: "Nokia 9290 Communicator",
            os: MobileOs::SymbianOs,
            processor: "32-bit ARM9 RISC",
            cpu_mhz: 52,
            ram_mb: 16,
            rom_mb: 8,
            screen: (640, 200),
            color: true,
            battery_j: 16_000.0,
        }
    }

    /// Palm i705 — Palm OS 4.1, 33 MHz Dragonball VZ, 8/4 MB.
    pub fn palm_i705() -> Self {
        DeviceProfile {
            name: "Palm i705",
            os: MobileOs::PalmOs,
            processor: "33 MHz Motorola Dragonball VZ",
            cpu_mhz: 33,
            ram_mb: 8,
            rom_mb: 4,
            screen: (160, 160),
            color: false,
            battery_j: 12_000.0,
        }
    }

    /// SONY Clie PEG-NR70V — Palm OS 4.1, 66 MHz Dragonball Super VZ, 16/8 MB.
    pub fn sony_clie_nr70v() -> Self {
        DeviceProfile {
            name: "SONY Clie PEG-NR70V",
            os: MobileOs::PalmOs,
            processor: "66 MHz Motorola Dragonball Super VZ",
            cpu_mhz: 66,
            ram_mb: 16,
            rom_mb: 8,
            screen: (320, 480),
            color: true,
            battery_j: 14_000.0,
        }
    }

    /// Toshiba E740 — Pocket PC 2002, 400 MHz PXA250, 64/32 MB.
    pub fn toshiba_e740() -> Self {
        DeviceProfile {
            name: "Toshiba E740",
            os: MobileOs::PocketPc,
            processor: "400 MHz Intel PXA250",
            cpu_mhz: 400,
            ram_mb: 64,
            rom_mb: 32,
            screen: (240, 320),
            color: true,
            battery_j: 18_000.0,
        }
    }

    /// All five Table 2 devices, in the table's row order.
    pub fn table2() -> Vec<DeviceProfile> {
        vec![
            Self::ipaq_h3870(),
            Self::nokia_9290(),
            Self::palm_i705(),
            Self::sony_clie_nr70v(),
            Self::toshiba_e740(),
        ]
    }

    /// Time to parse `bytes` of markup on this device.
    ///
    /// Model: a 100 MHz device parses ~1 MB/s; scales inversely with the
    /// clock and directly with OS overhead.
    pub fn parse_cost(&self, bytes: usize) -> SimDuration {
        let secs = bytes as f64 / (1_000_000.0 * self.cpu_mhz as f64 / 100.0)
            * self.os.cpu_overhead_factor();
        SimDuration::from_secs_f64(secs)
    }

    /// Time to lay out and paint `elements` elements of `text_bytes` text.
    ///
    /// Model: a 100 MHz device lays out ~2000 elements/s and paints
    /// ~500 KB/s of glyphs; colour screens paint ~30% slower (more bits
    /// per pixel pushed); OS overhead applies.
    pub fn render_cost(&self, elements: usize, text_bytes: usize) -> SimDuration {
        let speed = self.cpu_mhz as f64 / 100.0;
        let layout = elements as f64 / (2_000.0 * speed);
        let paint = text_bytes as f64 / (500_000.0 * speed) * if self.color { 1.3 } else { 1.0 };
        SimDuration::from_secs_f64((layout + paint) * self.os.cpu_overhead_factor())
    }

    /// Idle power draw in watts: a common baseline scaled by the OS's
    /// idle factor (§4.1 — Palm's "plain vanilla design" draws roughly
    /// half what its rivals do, giving it twice the battery life).
    pub fn idle_power_w(&self) -> f64 {
        0.08 * self.os.idle_power_factor()
    }

    /// The largest single content payload (deck/page) the device will
    /// load: a small fixed share of RAM, as real microbrowsers enforced.
    pub fn content_budget_bytes(&self) -> usize {
        (self.ram_mb as usize * 1024 * 1024) / 1024 // ≈ 0.1% of RAM
    }

    /// Characters per screen line, assuming a 6-pixel cell font.
    pub fn chars_per_line(&self) -> usize {
        (self.screen.0 as usize / 6).max(8)
    }

    /// Visible text lines, assuming a 12-pixel line height.
    pub fn lines_per_screen(&self) -> usize {
        (self.screen.1 as usize / 12).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_the_paper() {
        let devices = DeviceProfile::table2();
        assert_eq!(devices.len(), 5);
        let ipaq = &devices[0];
        assert_eq!(ipaq.os, MobileOs::PocketPc);
        assert_eq!(ipaq.cpu_mhz, 206);
        assert_eq!((ipaq.ram_mb, ipaq.rom_mb), (64, 32));
        let palm = &devices[2];
        assert_eq!(palm.os, MobileOs::PalmOs);
        assert_eq!(palm.cpu_mhz, 33);
        assert_eq!((palm.ram_mb, palm.rom_mb), (8, 4));
        let toshiba = &devices[4];
        assert_eq!(toshiba.cpu_mhz, 400);
        assert!(toshiba.processor.contains("PXA250"));
    }

    #[test]
    fn faster_cpus_parse_and_render_faster() {
        let slow = DeviceProfile::palm_i705();
        let fast = DeviceProfile::toshiba_e740();
        assert!(slow.parse_cost(10_000) > fast.parse_cost(10_000));
        assert!(slow.render_cost(100, 5_000) > fast.render_cost(100, 5_000));
        // The 400 MHz PXA outpaces the 33 MHz Dragonball by ~an order of
        // magnitude even though Pocket PC's overhead factor is higher.
        let ratio =
            slow.parse_cost(10_000).as_nanos() as f64 / fast.parse_cost(10_000).as_nanos() as f64;
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn memory_budget_tracks_ram() {
        assert!(
            DeviceProfile::palm_i705().content_budget_bytes()
                < DeviceProfile::ipaq_h3870().content_budget_bytes()
        );
        assert_eq!(DeviceProfile::palm_i705().content_budget_bytes(), 8 * 1024);
    }

    #[test]
    fn screen_geometry_drives_line_layout() {
        let palm = DeviceProfile::palm_i705();
        assert_eq!(palm.chars_per_line(), 26);
        assert_eq!(palm.lines_per_screen(), 13);
        let nokia = DeviceProfile::nokia_9290();
        assert!(nokia.chars_per_line() > palm.chars_per_line()); // wide screen
    }

    #[test]
    fn palm_devices_idle_at_half_the_power_of_pocket_pc() {
        let palm = DeviceProfile::palm_i705().idle_power_w();
        let ppc = DeviceProfile::ipaq_h3870().idle_power_w();
        let ratio = ppc / palm;
        assert!((2.0..=2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mono_screens_paint_faster_than_color_at_same_clock() {
        let mut mono = DeviceProfile::palm_i705();
        mono.color = false;
        let mut color = DeviceProfile::palm_i705();
        color.color = true;
        assert!(mono.render_cost(50, 20_000) < color.render_cost(50, 20_000));
    }
}
