//! On-device storage: the embedded store versus the flat file.
//!
//! §7: "a growing trend is to provide a mobile database or an embedded
//! database to a handheld device … the flat file system that comes with
//! these devices may not be able to adequately handle and manipulate
//! data. Embedded databases have very small footprints."
//!
//! [`EmbeddedStore`] is the small-footprint key-value store: ordered keys,
//! O(log n) lookups, a strict byte budget with LRU eviction. The
//! [`FlatFileStore`] alternative appends records to a single "file" and
//! scans linearly — correct, but its access cost grows with the file,
//! which the ablation bench demonstrates.

use std::collections::BTreeMap;

/// Access-cost accounting shared by both stores: a count of record
/// touches, which the station maps to CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCost {
    /// Records examined to satisfy the operation.
    pub records_touched: usize,
}

/// The small-footprint embedded key-value store.
#[derive(Debug)]
pub struct EmbeddedStore {
    data: BTreeMap<String, (String, u64)>,
    budget_bytes: usize,
    used_bytes: usize,
    clock: u64,
    /// Entries evicted to stay inside the budget.
    pub evictions: u64,
}

impl EmbeddedStore {
    /// Creates a store capped at `budget_bytes` of key+value data.
    ///
    /// # Panics
    ///
    /// Panics if the budget is zero.
    pub fn new(budget_bytes: usize) -> Self {
        assert!(budget_bytes > 0, "storage budget must be positive");
        EmbeddedStore {
            data: BTreeMap::new(),
            budget_bytes,
            used_bytes: 0,
            clock: 0,
            evictions: 0,
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Inserts or replaces `key`, evicting least-recently-used entries if
    /// needed. Returns `false` when the record alone exceeds the budget
    /// (it is not stored).
    pub fn put(&mut self, key: &str, value: &str) -> bool {
        let size = key.len() + value.len();
        if size > self.budget_bytes {
            return false;
        }
        if let Some((old, _)) = self.data.remove(key) {
            self.used_bytes -= key.len() + old.len();
        }
        while self.used_bytes + size > self.budget_bytes {
            // Evict the least recently used entry.
            let victim = self
                .data
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k.clone())
                .expect("over budget implies nonempty");
            let (v, _) = self.data.remove(&victim).expect("victim exists");
            self.used_bytes -= victim.len() + v.len();
            self.evictions += 1;
        }
        self.clock += 1;
        self.data
            .insert(key.to_owned(), (value.to_owned(), self.clock));
        self.used_bytes += size;
        true
    }

    /// Looks up `key`, refreshing its recency. O(log n): cost is the tree
    /// path, counted as one record touch.
    pub fn get(&mut self, key: &str) -> (Option<String>, AccessCost) {
        self.clock += 1;
        let clock = self.clock;
        match self.data.get_mut(key) {
            Some((v, at)) => {
                *at = clock;
                (Some(v.clone()), AccessCost { records_touched: 1 })
            }
            None => (None, AccessCost { records_touched: 1 }),
        }
    }

    /// Removes `key` if present.
    pub fn remove(&mut self, key: &str) -> bool {
        if let Some((v, _)) = self.data.remove(key) {
            self.used_bytes -= key.len() + v.len();
            true
        } else {
            false
        }
    }
}

/// The flat-file alternative: append-only records, linear-scan lookups.
#[derive(Debug, Default)]
pub struct FlatFileStore {
    records: Vec<(String, String)>,
}

impl FlatFileStore {
    /// Creates an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the file (including superseded duplicates).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record. Old records for the same key are not rewritten —
    /// that is what makes the format a flat file.
    pub fn put(&mut self, key: &str, value: &str) {
        self.records.push((key.to_owned(), value.to_owned()));
    }

    /// Scans backwards for the latest record with `key`, counting every
    /// record touched on the way.
    pub fn get(&self, key: &str) -> (Option<String>, AccessCost) {
        let mut touched = 0;
        for (k, v) in self.records.iter().rev() {
            touched += 1;
            if k == key {
                return (
                    Some(v.clone()),
                    AccessCost {
                        records_touched: touched,
                    },
                );
            }
        }
        (
            None,
            AccessCost {
                records_touched: touched,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_store_round_trips() {
        let mut s = EmbeddedStore::new(1024);
        assert!(s.put("cart", "sku=1,qty=2"));
        let (v, cost) = s.get("cart");
        assert_eq!(v.as_deref(), Some("sku=1,qty=2"));
        assert_eq!(cost.records_touched, 1);
        assert!(s.remove("cart"));
        assert!(!s.remove("cart"));
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn replacement_does_not_leak_bytes() {
        let mut s = EmbeddedStore::new(100);
        s.put("k", "aaaaaaaaaa");
        let used = s.used_bytes();
        s.put("k", "bbbbbbbbbb");
        assert_eq!(s.used_bytes(), used);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut s = EmbeddedStore::new(30);
        s.put("a", "0123456789"); // 11 bytes
        s.put("b", "0123456789"); // 22 bytes
        let _ = s.get("a"); // refresh a; b is now LRU
        s.put("c", "0123456789"); // would be 33: evict b
        assert_eq!(s.evictions, 1);
        assert!(s.get("a").0.is_some());
        assert!(s.get("b").0.is_none());
        assert!(s.get("c").0.is_some());
    }

    #[test]
    fn oversized_record_is_refused() {
        let mut s = EmbeddedStore::new(10);
        assert!(!s.put("key", "a value far larger than ten bytes"));
        assert!(s.is_empty());
    }

    #[test]
    fn flat_file_returns_latest_write() {
        let mut f = FlatFileStore::new();
        f.put("cart", "v1");
        f.put("other", "x");
        f.put("cart", "v2");
        let (v, _) = f.get("cart");
        assert_eq!(v.as_deref(), Some("v2"));
        assert_eq!(f.len(), 3); // superseded record still in the file
    }

    #[test]
    fn flat_file_scan_cost_grows_with_file_but_embedded_does_not() {
        let mut f = FlatFileStore::new();
        let mut e = EmbeddedStore::new(1 << 20);
        for i in 0..1000 {
            f.put(&format!("k{i}"), "v");
            e.put(&format!("k{i}"), "v");
        }
        // Oldest key: the flat file touches everything, the tree does not.
        let (_, flat_cost) = f.get("k0");
        let (_, tree_cost) = e.get("k0");
        assert_eq!(flat_cost.records_touched, 1000);
        assert_eq!(tree_cost.records_touched, 1);
        // Missing key: full scan vs single probe.
        let (none, cost) = f.get("missing");
        assert!(none.is_none());
        assert_eq!(cost.records_touched, 1000);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        EmbeddedStore::new(0);
    }
}
