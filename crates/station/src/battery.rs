//! Battery accounting.
//!
//! §8: mobile stations suffer from "low battery power". The battery is a
//! joule budget; radio traffic, CPU work and idle time all draw it down,
//! and an exhausted battery fails the transaction in flight — a failure
//! mode the integration tests inject deliberately.

/// A joule-accounting battery.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    used_j: f64,
}

impl Battery {
    /// A full battery of `capacity_j` joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive and finite.
    pub fn new(capacity_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "battery capacity must be positive, got {capacity_j}"
        );
        Battery {
            capacity_j,
            used_j: 0.0,
        }
    }

    /// Total capacity in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Joules remaining.
    pub fn remaining_j(&self) -> f64 {
        (self.capacity_j - self.used_j).max(0.0)
    }

    /// Fraction remaining, `0.0..=1.0`.
    pub fn level(&self) -> f64 {
        self.remaining_j() / self.capacity_j
    }

    /// True once the battery has been fully drained.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_j() <= 0.0
    }

    /// Draws `joules` from the battery. Returns `false` (and clamps to
    /// empty) when the draw exceeded what was left — the device died
    /// mid-operation.
    pub fn drain(&mut self, joules: f64) -> bool {
        assert!(
            joules >= 0.0 && joules.is_finite(),
            "drain must be non-negative"
        );
        self.used_j += joules;
        self.used_j <= self.capacity_j
    }

    /// Recharges to full.
    pub fn recharge(&mut self) {
        self.used_j = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_and_level_track() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.level(), 1.0);
        assert!(b.drain(40.0));
        assert_eq!(b.remaining_j(), 60.0);
        assert!((b.level() - 0.6).abs() < 1e-12);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn over_drain_reports_death_and_clamps() {
        let mut b = Battery::new(10.0);
        assert!(!b.drain(15.0));
        assert!(b.is_exhausted());
        assert_eq!(b.remaining_j(), 0.0);
        assert_eq!(b.level(), 0.0);
    }

    #[test]
    fn recharge_restores_capacity() {
        let mut b = Battery::new(10.0);
        b.drain(10.0);
        assert!(b.is_exhausted());
        b.recharge();
        assert_eq!(b.remaining_j(), 10.0);
        assert!(!b.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Battery::new(0.0);
    }
}
