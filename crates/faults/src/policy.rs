//! Per-transaction recovery: retry budgets, backoff, and failure triage.

use rand::rngs::StdRng;
use rand::RngExt;

use simnet::SimDuration;

/// What a resilience layer may do about a failed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The fault passes on its own (outage windows, channel bursts,
    /// recovering hosts, aborted transports): retry after backoff.
    Transient,
    /// The primary middleware path is broken but an alternate exists
    /// (gateway outage, wedged transcoder): fall back to the textual
    /// middleware, then retry.
    Degraded,
    /// Retrying cannot help or must not happen: dead battery, no
    /// coverage at all, malformed content — and application-level
    /// errors, where a retried purchase may already have committed.
    Permanent,
}

/// Triage of a [`TransactionReport`](../../mcommerce_core/report/struct.TransactionReport.html)
/// failure reason into a [`FailureClass`].
///
/// Matches on the stable substrings the execution layers put in their
/// reasons, so the transport abort ("retransmission limit reached"), the
/// ARQ give-up and every injected fault route to the right recovery
/// action without a shared error enum across six crates.
pub fn classify(reason: &str) -> FailureClass {
    if reason.contains("gateway unavailable") || reason.contains("transcode degraded") {
        FailureClass::Degraded
    } else if reason.contains("outage")
        || reason.contains("ARQ exhausted")
        || reason.contains("recovering")
        || reason.contains("retransmission limit")
        || reason.contains("transport aborted")
    {
        FailureClass::Transient
    } else {
        FailureClass::Permanent
    }
}

/// Per-transaction retry budget with exponential, jittered backoff.
///
/// All time is sim time: backing off advances the simulated user's
/// clock (and drains idle battery) rather than any wall clock. Jitter is
/// drawn from a seed-derived per-user stream, so fleet results stay
/// bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Sim-time budget across all retries, measured from the end of the
    /// first failed attempt.
    pub deadline: SimDuration,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Backoff growth per retry (exponential base).
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// uniform in `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The no-retry policy: every failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            deadline: SimDuration::ZERO,
            base_backoff: SimDuration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// A sensible default for interactive m-commerce transactions: up to
    /// five attempts within a 30-second budget, backoff 250 ms doubling,
    /// ±25% jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 5,
            deadline: SimDuration::from_secs(30),
            base_backoff: SimDuration::from_millis(250),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }

    /// True when this policy never retries.
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// The backoff to sleep before retry number `retry` (1-based), with
    /// jitter drawn from `rng`.
    ///
    /// Draws from `rng` only when `jitter > 0`, so a zero-jitter policy
    /// consumes no randomness.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> SimDuration {
        let exp = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let base = self.base_backoff.as_secs_f64() * exp;
        let scale = if self.jitter > 0.0 {
            1.0 + self.jitter * (rng.random::<f64>() - 0.5)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(base * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::rng_for;

    #[test]
    fn classification_matches_the_failure_taxonomy() {
        assert_eq!(
            classify("wireless outage (handoff in progress)"),
            FailureClass::Transient
        );
        assert_eq!(classify("uplink failed (ARQ exhausted)"), FailureClass::Transient);
        assert_eq!(
            classify("host database recovering after crash"),
            FailureClass::Transient
        );
        // The transport abort from conn.rs surfaces as retryable.
        assert_eq!(
            classify("transport aborted: retransmission limit reached: peer unreachable"),
            FailureClass::Transient
        );
        assert_eq!(
            classify("middleware gateway unavailable (outage)"),
            FailureClass::Degraded
        );
        assert_eq!(
            classify("transcode degraded (corrupt binary deck)"),
            FailureClass::Degraded
        );
        assert_eq!(classify("no wireless coverage"), FailureClass::Permanent);
        assert_eq!(
            classify("battery exhausted mid-transaction"),
            FailureClass::Permanent
        );
        assert_eq!(classify("host returned 404 Not Found"), FailureClass::Permanent);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let policy = RetryPolicy::standard();
        let mut a = rng_for(7, "test.backoff");
        let mut b = rng_for(7, "test.backoff");
        let seq_a: Vec<f64> = (1..=4).map(|i| policy.backoff(i, &mut a).as_secs_f64()).collect();
        let seq_b: Vec<f64> = (1..=4).map(|i| policy.backoff(i, &mut b).as_secs_f64()).collect();
        assert_eq!(seq_a, seq_b);
        // Jitter is ±25%, growth is 2×: each step at least ~1.3× the last.
        for w in seq_a.windows(2) {
            assert!(w[1] > w[0] * 1.2, "backoff must grow: {seq_a:?}");
        }
    }

    #[test]
    fn zero_jitter_draws_no_randomness() {
        let mut policy = RetryPolicy::standard();
        policy.jitter = 0.0;
        let mut rng = rng_for(7, "test.nojitter");
        let before: u64 = {
            let mut probe = rng_for(7, "test.nojitter");
            probe.random()
        };
        let b1 = policy.backoff(1, &mut rng);
        let b2 = policy.backoff(2, &mut rng);
        assert_eq!(b1.as_secs_f64(), 0.25);
        assert_eq!(b2.as_secs_f64(), 0.5);
        // The stream is untouched: the next draw matches a fresh clone's.
        let after: u64 = rng.random();
        assert_eq!(before, after);
    }

    #[test]
    fn none_policy_never_retries() {
        assert!(RetryPolicy::none().is_none());
        assert!(!RetryPolicy::standard().is_none());
    }
}
