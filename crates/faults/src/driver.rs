//! Packet-granularity fault driving: arms a [`Simulator`] timer wheel to
//! swap loss models onto live [`Link`]s at a plan's window boundaries.
//!
//! The frame-granularity world (`McSystem`) evaluates plans against its
//! own transaction clock; the packet-granularity world (the §5.2 TCP
//! experiments) instead schedules real events. [`arm`] translates the
//! wireless windows of a [`FaultPlan`]:
//!
//! * [`FaultKind::WirelessOutage`] → the link drops everything
//!   (`Bernoulli { p: 1.0 }`) until the window closes,
//! * [`FaultKind::LossBurst`] → a [Gilbert–Elliott burst
//!   channel][LossModel::Gilbert] whose bad-state drop probability is
//!   the per-frame corruption probability the burst's BER implies,
//!
//! restoring the link's original parameters when each window ends. The
//! mid-simulation `set_params` swap relies on links auto-seeding their
//! loss RNG when none was attached.

use std::rc::Rc;

use simnet::link::{Link, LinkParams, LossModel, Wire};
use simnet::{SimTime, Simulator};

use crate::plan::{FaultKind, FaultPlan};

/// Drop probability in the Gilbert bad state for a burst of the given
/// BER, evaluated for a full-MTU frame: `1 - (1 - ber)^(8 · 1500)`.
fn bad_state_loss(ber: f64) -> f64 {
    1.0 - (1.0 - ber).powi(8 * 1500)
}

/// Schedules every wireless window of `plan` against `link`.
///
/// Windows are interpreted on the simulator's clock starting at the
/// current time. Non-wireless faults (gateway, host, station) have no
/// packet-level meaning and are ignored here. Overlapping wireless
/// windows on the same link are not supported — each window restores the
/// baseline parameters captured when `arm` was called.
pub fn arm<M: Wire + 'static>(sim: &mut Simulator, plan: &FaultPlan, link: &Rc<Link<M>>) {
    let baseline: LinkParams = link.params();
    let origin = sim.now();
    for window in plan.windows() {
        let faulted = match window.kind {
            FaultKind::WirelessOutage => LossModel::Bernoulli { p: 1.0 },
            FaultKind::LossBurst { ber } => LossModel::Gilbert {
                p_enter_bad: 0.25,
                p_exit_bad: 0.25,
                loss_in_bad: bad_state_loss(ber).clamp(0.0, 1.0),
            },
            _ => continue,
        };
        let start = origin.saturating_add(simnet::SimDuration::from_nanos(window.start_ns));
        let end: SimTime = origin.saturating_add(simnet::SimDuration::from_nanos(window.end_ns()));
        {
            let link = Rc::clone(link);
            let mut params = baseline.clone();
            params.loss = faulted;
            sim.schedule_at(start, move |_| link.set_params(params.clone()));
        }
        {
            let link = Rc::clone(link);
            let params = baseline.clone();
            sim.schedule_at(end, move |_| link.set_params(params.clone()));
        }
    }
}

/// Schedules every [`FaultKind::WirelessOutage`] window of `plan` as a
/// *forced handoff* on `controller`: at the window's start the serving
/// AP/cell dies and the station is between cells for the window's
/// duration, after which re-association completes and the controller's
/// completion listeners fire — so recovery schemes keyed on the handoff
/// signal (fast retransmission after handoff \[2\]) react to
/// fault-driven handoffs exactly as to scheduled ones.
///
/// Complements [`arm`]: `arm` models channel faults on a raw link,
/// `arm_handoffs` models infrastructure faults on the association. Other
/// fault kinds have no handoff meaning and are ignored.
pub fn arm_handoffs<M: Wire + 'static>(
    sim: &mut Simulator,
    plan: &FaultPlan,
    controller: &Rc<wireless::handoff::HandoffController<M>>,
) {
    let origin = sim.now();
    for window in plan.windows() {
        if window.kind != FaultKind::WirelessOutage {
            continue;
        }
        let start = origin.saturating_add(simnet::SimDuration::from_nanos(window.start_ns));
        let blackout = simnet::SimDuration::from_nanos(window.end_ns() - window.start_ns);
        let controller = Rc::clone(controller);
        sim.schedule_at(start, move |sim| {
            controller.force_handoff(sim, blackout);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;
    use std::cell::RefCell;

    #[test]
    fn outage_window_drops_exactly_its_span() {
        let mut sim = Simulator::new();
        let link: Rc<Link<Vec<u8>>> =
            Link::new(LinkParams::reliable(1_000_000_000, SimDuration::ZERO));
        let got: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let got = Rc::clone(&got);
            link.set_receiver(move |sim, _msg| got.borrow_mut().push(sim.now().as_millis()));
        }
        let plan = FaultPlan::none().window(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            FaultKind::WirelessOutage,
        );
        arm(&mut sim, &plan, &link);
        // One message every 50 ms for a second.
        for i in 0..20u64 {
            let link = Rc::clone(&link);
            sim.schedule_at(SimTime::from_millis(i * 50), move |sim| {
                link.send(sim, vec![0u8; 10]);
            });
        }
        sim.run();
        let got = got.borrow();
        // Sends at 100..300 ms vanish; everything else arrives.
        assert!(got.iter().all(|&t| !(100..300).contains(&t)), "{got:?}");
        assert_eq!(got.len(), 16, "{got:?}");
        assert_eq!(link.dropped_loss.get(), 4);
    }

    #[test]
    fn burst_window_loses_packets_only_inside_the_window() {
        let mut sim = Simulator::new();
        let link: Rc<Link<Vec<u8>>> =
            Link::new(LinkParams::reliable(1_000_000_000, SimDuration::ZERO));
        link.set_receiver(|_sim, _msg| {});
        let plan = FaultPlan::none().window(
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            FaultKind::LossBurst { ber: 3e-4 },
        );
        arm(&mut sim, &plan, &link);
        let before = Rc::clone(&link);
        for i in 0..500u64 {
            let link = Rc::clone(&link);
            // 500 packets inside the window, none outside.
            sim.schedule_at(
                SimTime::from_millis(1000 + i * 2),
                move |sim| link.send(sim, vec![0u8; 1500]),
            );
        }
        sim.run();
        // bad_state_loss(3e-4) ≈ 0.97 and the chain spends ~half its time
        // bad, so a large fraction must drop...
        assert!(
            before.dropped_loss.get() > 100,
            "burst dropped only {}",
            before.dropped_loss.get()
        );
        // ...and after the window the link is clean again.
        let clean_before = before.delivered.get();
        for _ in 0..50 {
            before.send(&mut sim, vec![0u8; 1500]);
        }
        sim.run();
        assert_eq!(before.delivered.get(), clean_before + 50);
    }

    #[test]
    fn outage_window_forces_a_handoff_and_fires_the_completion_signal() {
        use wireless::handoff::HandoffController;
        let mut sim = Simulator::new();
        let link: Rc<Link<Vec<u8>>> =
            Link::new(LinkParams::reliable(1_000_000_000, SimDuration::ZERO));
        let got: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let got = Rc::clone(&got);
            link.set_receiver(move |sim, _msg| got.borrow_mut().push(sim.now().as_millis()));
        }
        // Purely fault-driven controller: never start()ed, so the only
        // handoffs are the ones the plan forces.
        let ctl = HandoffController::new(
            Rc::clone(&link),
            SimDuration::from_secs(3600),
            SimDuration::from_millis(1),
        );
        let completions: Rc<RefCell<Vec<u64>>> = Rc::default();
        {
            let completions = Rc::clone(&completions);
            ctl.on_complete(move |sim| completions.borrow_mut().push(sim.now().as_millis()));
        }
        let plan = FaultPlan::none().window(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            FaultKind::WirelessOutage,
        );
        arm_handoffs(&mut sim, &plan, &ctl);
        for i in 0..20u64 {
            let link = Rc::clone(&link);
            sim.schedule_at(SimTime::from_millis(i * 50), move |sim| {
                link.send(sim, vec![0u8; 10]);
            });
        }
        sim.run();
        let got = got.borrow();
        // The station is between cells for [100, 300] ms — the frame at
        // exactly 300 ms was enqueued before the re-association event,
        // so it still dies on the severed link.
        assert!(got.iter().all(|&t| !(100..=300).contains(&t)), "{got:?}");
        assert_eq!(got.len(), 15, "{got:?}");
        // Re-association completed exactly once, at the window's end —
        // the signal fast-retransmit-after-handoff schemes key on.
        assert_eq!(*completions.borrow(), vec![300]);
        assert_eq!(ctl.completed.get(), 1);
        assert!(!ctl.in_blackout());
    }
}
