//! Seeded sim-time schedules of typed fault events.
//!
//! A [`FaultPlan`] is plain data: interval faults ([`FaultWindow`]) are
//! answered by pure clock comparisons, one-shot faults ([`FaultEvent`])
//! by walking a cursor ([`FaultState`]) forward as the clock crosses
//! them. Neither draws randomness at query time, which is what makes an
//! idle plan free and a fixed-seed faulted run reproducible at any
//! thread count.

use rand::rngs::StdRng;
use rand::RngExt;

use simnet::rng::rng_for;
use simnet::SimDuration;

/// The typed faults the six paper components can suffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The access point / cell goes dark: no air link until the window
    /// ends and the forced handoff completes (wireless component).
    WirelessOutage,
    /// A burst of channel errors: the air link's bit-error rate is
    /// raised to at least `ber` for the window — the frame-granularity
    /// face of a Gilbert–Elliott bad state (wireless component).
    LossBurst {
        /// Bit-error-rate floor while the burst is active.
        ber: f64,
    },
    /// The WAP / i-mode gateway is unreachable (middleware component).
    GatewayOutage,
    /// The gateway's transcoder is wedged: binary-encoded decks come out
    /// corrupt; textual fallback still works (middleware component).
    TranscodeDegraded,
    /// One-shot: the host database crashes and restarts, replaying its
    /// write-ahead journal (host computer component).
    DbCrash,
    /// One-shot: a battery drain spike — backlight burst, rogue app —
    /// of the given energy (mobile station component).
    BatteryDrain {
        /// Energy drained instantaneously, in joules.
        joules: f64,
    },
}

impl FaultKind {
    /// Stable display name, used in span/metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WirelessOutage => "wireless_outage",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::GatewayOutage => "gateway_outage",
            FaultKind::TranscodeDegraded => "transcode_degraded",
            FaultKind::DbCrash => "db_crash",
            FaultKind::BatteryDrain { .. } => "battery_drain",
        }
    }

    /// True for instantaneous faults scheduled with [`FaultPlan::oneshot`]
    /// rather than [`FaultPlan::window`].
    pub fn is_oneshot(&self) -> bool {
        matches!(self, FaultKind::DbCrash | FaultKind::BatteryDrain { .. })
    }

    fn validate(&self) {
        let ok = match *self {
            FaultKind::LossBurst { ber } => (0.0..1.0).contains(&ber),
            FaultKind::BatteryDrain { joules } => joules >= 0.0 && joules.is_finite(),
            _ => true,
        };
        assert!(ok, "fault parameters out of range: {self:?}");
    }
}

/// An interval fault: `kind` is active on `[start_ns, start_ns + duration_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start on the per-user sim clock, nanoseconds.
    pub start_ns: u64,
    /// Window length, nanoseconds.
    pub duration_ns: u64,
    /// The active fault.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// One past the last covered nanosecond.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.duration_ns)
    }

    /// True when `now_ns` falls inside the window.
    pub fn covers(&self, now_ns: u64) -> bool {
        self.start_ns <= now_ns && now_ns < self.end_ns()
    }
}

/// A one-shot fault firing the first time the clock reaches `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Firing time on the per-user sim clock, nanoseconds.
    pub at_ns: u64,
    /// The fault that fires.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults against one simulated user's clock.
///
/// Build explicitly with [`FaultPlan::window`] / [`FaultPlan::oneshot`],
/// or generate a whole storm from a seed with [`FaultPlan::storm`]. An
/// empty plan answers every query `false` without drawing randomness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    oneshots: Vec<FaultEvent>,
}

/// Per-user progress through a plan's one-shot faults.
///
/// Plans are shared read-only across users and threads; each user owns
/// its own cursor so the same `DbCrash` fires exactly once per user.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultState {
    cursor: usize,
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an interval fault active on `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a one-shot fault or its parameters are out of
    /// range.
    pub fn window(mut self, start: SimDuration, duration: SimDuration, kind: FaultKind) -> Self {
        kind.validate();
        assert!(
            !kind.is_oneshot(),
            "{} is a one-shot fault: use FaultPlan::oneshot",
            kind.name()
        );
        self.windows.push(FaultWindow {
            start_ns: start.as_nanos(),
            duration_ns: duration.as_nanos(),
            kind,
        });
        self.windows.sort_by_key(|w| w.start_ns);
        self
    }

    /// Adds a one-shot fault firing when the clock first reaches `at`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is an interval fault or its parameters are out of
    /// range.
    pub fn oneshot(mut self, at: SimDuration, kind: FaultKind) -> Self {
        kind.validate();
        assert!(
            kind.is_oneshot(),
            "{} is an interval fault: use FaultPlan::window",
            kind.name()
        );
        self.oneshots.push(FaultEvent {
            at_ns: at.as_nanos(),
            kind,
        });
        self.oneshots.sort_by_key(|e| e.at_ns);
        self
    }

    /// True when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.oneshots.is_empty()
    }

    /// The interval faults, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The one-shot faults, sorted by firing time.
    pub fn oneshots(&self) -> &[FaultEvent] {
        &self.oneshots
    }

    /// A fresh one-shot cursor for a user starting at clock zero.
    pub fn state(&self) -> FaultState {
        FaultState::default()
    }

    /// Advances `state` past every one-shot whose time the clock has
    /// reached and returns the newly fired events, oldest first.
    pub fn oneshots_due<'a>(&'a self, state: &mut FaultState, now_ns: u64) -> &'a [FaultEvent] {
        let start = state.cursor;
        while state.cursor < self.oneshots.len() && self.oneshots[state.cursor].at_ns <= now_ns {
            state.cursor += 1;
        }
        &self.oneshots[start..state.cursor]
    }

    /// True while a [`FaultKind::WirelessOutage`] window covers `now_ns`.
    pub fn outage_active(&self, now_ns: u64) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::WirelessOutage) && w.covers(now_ns))
    }

    /// The highest [`FaultKind::LossBurst`] BER floor covering `now_ns`,
    /// if any burst is active.
    pub fn burst_ber(&self, now_ns: u64) -> Option<f64> {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::LossBurst { ber } if w.covers(now_ns) => Some(ber),
                _ => None,
            })
            .fold(None, |acc, ber| Some(acc.map_or(ber, |a: f64| a.max(ber))))
    }

    /// True while a [`FaultKind::GatewayOutage`] window covers `now_ns`.
    pub fn gateway_down(&self, now_ns: u64) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::GatewayOutage) && w.covers(now_ns))
    }

    /// True while a [`FaultKind::TranscodeDegraded`] window covers `now_ns`.
    pub fn transcode_degraded(&self, now_ns: u64) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::TranscodeDegraded) && w.covers(now_ns))
    }

    /// Generates a whole deterministic fault storm over `[0, horizon)`.
    ///
    /// `intensity` scales how many faults land: at `1.0` a user sees a
    /// few of every kind over a ten-second horizon; `0.0` yields the
    /// empty plan. Identical `(seed, horizon, intensity)` always yields
    /// the identical storm.
    pub fn storm(seed: u64, horizon: SimDuration, intensity: f64) -> Self {
        assert!(
            intensity >= 0.0 && intensity.is_finite(),
            "storm intensity must be finite and non-negative"
        );
        if intensity == 0.0 {
            return Self::none();
        }
        let mut rng = rng_for(seed, "faults.storm");
        let horizon_s = horizon.as_secs_f64();
        let mut plan = Self::none();

        // Expected event counts per kind, scaled by intensity; the
        // fractional part is resolved by one deterministic coin flip.
        let count = |rng: &mut StdRng, per_10s: f64| -> usize {
            let expected = intensity * per_10s * horizon_s / 10.0;
            expected as usize + usize::from(rng.random_bool(expected.fract()))
        };
        let uniform = |rng: &mut StdRng, lo: f64, hi: f64| lo + rng.random::<f64>() * (hi - lo);

        for _ in 0..count(&mut rng, 1.5) {
            let start = uniform(&mut rng, 0.0, horizon_s);
            let dur = uniform(&mut rng, 0.4, 1.2);
            plan = plan.window(
                SimDuration::from_secs_f64(start),
                SimDuration::from_secs_f64(dur),
                FaultKind::WirelessOutage,
            );
        }
        for _ in 0..count(&mut rng, 2.0) {
            let start = uniform(&mut rng, 0.0, horizon_s);
            let dur = uniform(&mut rng, 0.8, 2.5);
            let ber = uniform(&mut rng, 8e-5, 4e-4);
            plan = plan.window(
                SimDuration::from_secs_f64(start),
                SimDuration::from_secs_f64(dur),
                FaultKind::LossBurst { ber },
            );
        }
        for _ in 0..count(&mut rng, 1.0) {
            let start = uniform(&mut rng, 0.0, horizon_s);
            let dur = uniform(&mut rng, 0.5, 1.5);
            plan = plan.window(
                SimDuration::from_secs_f64(start),
                SimDuration::from_secs_f64(dur),
                FaultKind::GatewayOutage,
            );
        }
        for _ in 0..count(&mut rng, 0.8) {
            let start = uniform(&mut rng, 0.0, horizon_s);
            let dur = uniform(&mut rng, 0.8, 2.0);
            plan = plan.window(
                SimDuration::from_secs_f64(start),
                SimDuration::from_secs_f64(dur),
                FaultKind::TranscodeDegraded,
            );
        }
        if rng.random_bool((intensity * 0.6).min(1.0)) {
            let at = uniform(&mut rng, 0.1 * horizon_s, 0.9 * horizon_s);
            plan = plan.oneshot(SimDuration::from_secs_f64(at), FaultKind::DbCrash);
        }
        for _ in 0..count(&mut rng, 0.8) {
            let at = uniform(&mut rng, 0.0, horizon_s);
            let joules = uniform(&mut rng, 10.0, 40.0);
            plan = plan.oneshot(
                SimDuration::from_secs_f64(at),
                FaultKind::BatteryDrain { joules },
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn empty_plan_answers_everything_false() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.outage_active(0));
        assert!(plan.burst_ber(u64::MAX).is_none());
        assert!(!plan.gateway_down(5_000_000_000));
        assert!(!plan.transcode_degraded(5_000_000_000));
        let mut state = plan.state();
        assert!(plan.oneshots_due(&mut state, u64::MAX).is_empty());
    }

    #[test]
    fn window_queries_respect_boundaries() {
        let plan = FaultPlan::none().window(secs(1.0), secs(2.0), FaultKind::WirelessOutage);
        let ns = |s: f64| secs(s).as_nanos();
        assert!(!plan.outage_active(ns(0.999)));
        assert!(plan.outage_active(ns(1.0)));
        assert!(plan.outage_active(ns(2.999)));
        assert!(!plan.outage_active(ns(3.0)));
    }

    #[test]
    fn burst_ber_takes_the_max_of_overlapping_windows() {
        let plan = FaultPlan::none()
            .window(secs(0.0), secs(10.0), FaultKind::LossBurst { ber: 1e-4 })
            .window(secs(2.0), secs(2.0), FaultKind::LossBurst { ber: 5e-4 });
        let ns = |s: f64| secs(s).as_nanos();
        assert_eq!(plan.burst_ber(ns(1.0)), Some(1e-4));
        assert_eq!(plan.burst_ber(ns(3.0)), Some(5e-4));
        assert_eq!(plan.burst_ber(ns(11.0)), None);
    }

    #[test]
    fn oneshots_fire_once_in_order() {
        let plan = FaultPlan::none()
            .oneshot(secs(5.0), FaultKind::DbCrash)
            .oneshot(secs(1.0), FaultKind::BatteryDrain { joules: 5.0 });
        let mut state = plan.state();
        let ns = |s: f64| secs(s).as_nanos();
        assert!(plan.oneshots_due(&mut state, ns(0.5)).is_empty());
        let first = plan.oneshots_due(&mut state, ns(2.0));
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0].kind, FaultKind::BatteryDrain { .. }));
        // Already-fired events never fire again.
        assert!(plan.oneshots_due(&mut state, ns(2.0)).is_empty());
        let second = plan.oneshots_due(&mut state, ns(60.0));
        assert_eq!(second.len(), 1);
        assert!(matches!(second[0].kind, FaultKind::DbCrash));
    }

    #[test]
    #[should_panic(expected = "one-shot fault")]
    fn oneshot_kind_rejected_as_window() {
        let _ = FaultPlan::none().window(secs(0.0), secs(1.0), FaultKind::DbCrash);
    }

    #[test]
    #[should_panic(expected = "interval fault")]
    fn interval_kind_rejected_as_oneshot() {
        let _ = FaultPlan::none().oneshot(secs(0.0), FaultKind::GatewayOutage);
    }

    #[test]
    fn storm_is_deterministic_and_scales_with_intensity() {
        let a = FaultPlan::storm(42, secs(30.0), 1.0);
        let b = FaultPlan::storm(42, secs(30.0), 1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "intensity 1 over 30 s must schedule faults");
        let calm = FaultPlan::storm(42, secs(30.0), 0.0);
        assert!(calm.is_empty());
        let heavy = FaultPlan::storm(42, secs(30.0), 4.0);
        assert!(
            heavy.windows().len() > a.windows().len(),
            "higher intensity must schedule more windows ({} vs {})",
            heavy.windows().len(),
            a.windows().len()
        );
    }
}
