#![warn(missing_docs)]
//! # faults — deterministic fault injection and the resilience policy
//!
//! The paper's reliability story (§5.2: plain TCP "performs poorly" on
//! wireless links; the mobile variants recover) only counts if failures
//! actually happen. This crate makes them happen *on purpose*, and makes
//! the rest of the system survive them:
//!
//! * [`FaultPlan`] — a seeded, sim-time schedule of typed fault events
//!   ([`FaultKind`]) evaluated against each simulated user's clock:
//!   AP/cell outages, bit-error bursts, WAP/i-mode gateway outages,
//!   degraded transcoding, host DB crashes (journal replay) and battery
//!   drain spikes. Interval faults are pure clock comparisons and
//!   one-shot faults are a cursor walk ([`FaultState`]), so an empty plan
//!   draws no randomness and changes no bytes of any fleet summary.
//! * [`RetryPolicy`] — per-transaction recovery: a deadline budget, a
//!   retry-attempt cap and exponential backoff with seed-derived jitter,
//!   so faulted fleet runs stay bit-identical at any thread count.
//! * [`classify`] — maps a failure reason to a [`FailureClass`]:
//!   `Transient` failures are retried after backoff, `Degraded` failures
//!   first fall back to the alternate middleware (text-only rendering),
//!   and `Permanent` failures (dead battery, application errors) are
//!   never retried — retrying a possibly-committed purchase would
//!   duplicate it.
//! * [`driver`] — the packet-granularity face of the same plans: arms a
//!   `simnet` timer wheel so loss-model windows are swapped onto live
//!   links ([Gilbert–Elliott bursts][simnet::link::LossModel::Gilbert],
//!   blackout outages) at their scheduled times.

pub mod driver;
pub mod plan;
pub mod policy;

pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultState, FaultWindow};
pub use policy::{classify, FailureClass, RetryPolicy};
