//! Confidentiality: stream and block ciphers (simulation-grade).

/// A keystream cipher seeded from a 64-bit key and nonce (xorshift-based;
/// simulation-grade). Encrypt and decrypt are the same operation.
///
/// ```
/// use security::cipher::StreamCipher;
/// let mut enc = StreamCipher::new(7, 1);
/// let mut dec = StreamCipher::new(7, 1);
/// let ct = enc.apply(b"top secret");
/// assert_ne!(&ct, b"top secret");
/// assert_eq!(dec.apply(&ct), b"top secret");
/// ```
#[derive(Debug, Clone)]
pub struct StreamCipher {
    state: u64,
    buffer: u64,
    buffered: u8,
}

impl StreamCipher {
    /// Creates a cipher over `(key, nonce)`. Reusing a nonce under the
    /// same key reuses keystream — callers must not do that.
    pub fn new(key: u64, nonce: u64) -> Self {
        let mut state = key ^ nonce.rotate_left(32) ^ 0x853c_49e6_748f_ea9b;
        // Warm up the state.
        for _ in 0..4 {
            state = Self::step(state);
        }
        StreamCipher {
            state,
            buffer: 0,
            buffered: 0,
        }
    }

    fn step(mut s: u64) -> u64 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }

    fn next_byte(&mut self) -> u8 {
        if self.buffered == 0 {
            self.state = Self::step(self.state);
            self.buffer = self.state;
            self.buffered = 8;
        }
        let b = (self.buffer & 0xff) as u8;
        self.buffer >>= 8;
        self.buffered -= 1;
        b
    }

    /// XORs `data` with the keystream (encrypts or decrypts).
    pub fn apply(&mut self, data: &[u8]) -> Vec<u8> {
        data.iter().map(|&b| b ^ self.next_byte()).collect()
    }
}

/// Block size of [`BlockCipher`] in bytes.
pub const BLOCK_BYTES: usize = 8;

/// An 8-byte, 8-round Feistel block cipher (simulation-grade) with
/// PKCS#7-style padding for arbitrary-length messages.
#[derive(Debug, Clone, Copy)]
pub struct BlockCipher {
    round_keys: [u32; 8],
}

impl BlockCipher {
    /// Derives round keys from a 64-bit key.
    pub fn new(key: u64) -> Self {
        let mut round_keys = [0u32; 8];
        let mut s = key ^ 0x6a09_e667_f3bc_c908;
        for rk in &mut round_keys {
            s = s
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            *rk = (s >> 32) as u32;
        }
        BlockCipher { round_keys }
    }

    fn round(half: u32, key: u32) -> u32 {
        let x = half.wrapping_add(key);
        x.rotate_left(5) ^ x.rotate_right(7) ^ x.wrapping_mul(0x9e37_79b9)
    }

    fn encrypt_block(&self, block: u64) -> u64 {
        let (mut l, mut r) = ((block >> 32) as u32, block as u32);
        for &k in &self.round_keys {
            let next_r = l ^ Self::round(r, k);
            l = r;
            r = next_r;
        }
        ((l as u64) << 32) | r as u64
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        let (mut l, mut r) = ((block >> 32) as u32, block as u32);
        for &k in self.round_keys.iter().rev() {
            let prev_l = r ^ Self::round(l, k);
            r = l;
            l = prev_l;
        }
        ((l as u64) << 32) | r as u64
    }

    /// Encrypts `plain` (padded) in CBC mode under `iv`.
    pub fn encrypt(&self, plain: &[u8], iv: u64) -> Vec<u8> {
        // Pad to a whole number of blocks, PKCS#7 style.
        let pad = BLOCK_BYTES - plain.len() % BLOCK_BYTES;
        let mut data = plain.to_vec();
        data.extend(std::iter::repeat_n(pad as u8, pad));

        let mut out = Vec::with_capacity(data.len());
        let mut chain = iv;
        for chunk in data.chunks(BLOCK_BYTES) {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(chunk);
            let ct = self.encrypt_block(u64::from_le_bytes(block) ^ chain);
            chain = ct;
            out.extend_from_slice(&ct.to_le_bytes());
        }
        out
    }

    /// Decrypts CBC ciphertext produced by [`BlockCipher::encrypt`].
    ///
    /// Returns `None` on invalid length or padding (tampering evidence).
    pub fn decrypt(&self, cipher: &[u8], iv: u64) -> Option<Vec<u8>> {
        if cipher.is_empty() || !cipher.len().is_multiple_of(BLOCK_BYTES) {
            return None;
        }
        let mut out = Vec::with_capacity(cipher.len());
        let mut chain = iv;
        for chunk in cipher.chunks(BLOCK_BYTES) {
            let mut block = [0u8; BLOCK_BYTES];
            block.copy_from_slice(chunk);
            let ct = u64::from_le_bytes(block);
            let pt = self.decrypt_block(ct) ^ chain;
            chain = ct;
            out.extend_from_slice(&pt.to_le_bytes());
        }
        let pad = *out.last()? as usize;
        if pad == 0 || pad > BLOCK_BYTES || pad > out.len() {
            return None;
        }
        if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
            return None;
        }
        out.truncate(out.len() - pad);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_round_trips_and_hides_plaintext() {
        let msg = b"authorize payment of $19.99 from alice";
        let ct = StreamCipher::new(1234, 1).apply(msg);
        assert_ne!(&ct[..], &msg[..]);
        assert_eq!(StreamCipher::new(1234, 1).apply(&ct), msg);
    }

    #[test]
    fn stream_wrong_key_or_nonce_garbles() {
        let msg = b"hello world hello world";
        let ct = StreamCipher::new(1, 100).apply(msg);
        assert_ne!(StreamCipher::new(2, 100).apply(&ct), msg);
        assert_ne!(StreamCipher::new(1, 101).apply(&ct), msg);
    }

    #[test]
    fn distinct_nonces_give_distinct_keystreams() {
        let zeros = vec![0u8; 64];
        let a = StreamCipher::new(9, 1).apply(&zeros);
        let b = StreamCipher::new(9, 2).apply(&zeros);
        assert_ne!(a, b);
    }

    #[test]
    fn block_round_trips_all_lengths() {
        let bc = BlockCipher::new(0xdead_beef);
        for len in 0..40 {
            let msg: Vec<u8> = (0..len as u8).collect();
            let ct = bc.encrypt(&msg, 7);
            assert_eq!(ct.len() % BLOCK_BYTES, 0);
            assert_eq!(bc.decrypt(&ct, 7).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn block_wrong_key_fails_padding_or_garbles() {
        let bc = BlockCipher::new(1);
        let other = BlockCipher::new(2);
        let msg = b"attack at dawn!!";
        let ct = bc.encrypt(msg, 3);
        match other.decrypt(&ct, 3) {
            None => {}                                 // padding check caught it
            Some(pt) => assert_ne!(&pt[..], &msg[..]), // or it garbles
        }
    }

    #[test]
    fn cbc_identical_blocks_encrypt_differently() {
        let bc = BlockCipher::new(5);
        let msg = [0x41u8; 32]; // four identical blocks
        let ct = bc.encrypt(&msg, 9);
        let blocks: Vec<&[u8]> = ct.chunks(BLOCK_BYTES).collect();
        assert_ne!(blocks[0], blocks[1]);
        assert_ne!(blocks[1], blocks[2]);
    }

    #[test]
    fn tampered_ciphertext_is_detected_or_garbled() {
        let bc = BlockCipher::new(77);
        let msg = b"balance=100";
        let mut ct = bc.encrypt(msg, 1);
        ct[3] ^= 0xff;
        match bc.decrypt(&ct, 1) {
            None => {}
            Some(pt) => assert_ne!(&pt[..], &msg[..]),
        }
        assert!(bc.decrypt(&ct[..5], 1).is_none()); // bad length
    }
}
