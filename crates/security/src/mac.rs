//! Message authentication — the *integrity* and *authentication*
//! properties of §8.

use crate::hash::{digest, DIGEST_BYTES};

/// A keyed message-authentication code (HMAC-style double hash over the
/// toy digest; simulation-grade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mac {
    key: [u8; 16],
}

impl Mac {
    /// Creates a MAC instance from key material of any length.
    pub fn new(key: &[u8]) -> Self {
        Mac { key: digest(key) }
    }

    /// Derives a MAC key from a shared secret and a label (key
    /// separation: different labels yield independent keys).
    pub fn derive(secret: u64, label: &str) -> Self {
        let mut material = secret.to_le_bytes().to_vec();
        material.extend_from_slice(label.as_bytes());
        Mac::new(&material)
    }

    /// Computes the tag for `message`.
    ///
    /// ```
    /// use security::Mac;
    /// let mac = Mac::new(b"shared-key");
    /// let tag = mac.compute(b"amount=100");
    /// assert!(mac.verify(b"amount=100", &tag));
    /// assert!(!mac.verify(b"amount=900", &tag));
    /// ```
    pub fn compute(&self, message: &[u8]) -> [u8; DIGEST_BYTES] {
        // HMAC shape: H(k_outer || H(k_inner || m)).
        let mut inner = Vec::with_capacity(16 + message.len());
        inner.extend(self.key.iter().map(|b| b ^ 0x36));
        inner.extend_from_slice(message);
        let inner_digest = digest(&inner);

        let mut outer = Vec::with_capacity(32);
        outer.extend(self.key.iter().map(|b| b ^ 0x5c));
        outer.extend_from_slice(&inner_digest);
        digest(&outer)
    }

    /// Verifies `tag` over `message`.
    pub fn verify(&self, message: &[u8], tag: &[u8; DIGEST_BYTES]) -> bool {
        // Constant-time-style comparison (the habit matters even in a toy).
        self.compute(message)
            .iter()
            .zip(tag.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_tags_verify() {
        let mac = Mac::new(b"k");
        let tag = mac.compute(b"hello");
        assert!(mac.verify(b"hello", &tag));
    }

    #[test]
    fn any_single_bit_tamper_is_rejected() {
        let mac = Mac::new(b"payment-key");
        let msg = b"order=7;amount=1999;account=alice";
        let tag = mac.compute(msg);
        for byte in 0..msg.len() {
            let mut tampered = msg.to_vec();
            tampered[byte] ^= 0x01;
            assert!(!mac.verify(&tampered, &tag), "byte {byte}");
        }
        // Tampering with the tag itself also fails.
        let mut bad_tag = tag;
        bad_tag[0] ^= 0x80;
        assert!(!mac.verify(msg, &bad_tag));
    }

    #[test]
    fn different_keys_produce_different_tags() {
        let a = Mac::new(b"key-a");
        let b = Mac::new(b"key-b");
        assert_ne!(a.compute(b"m"), b.compute(b"m"));
        assert!(!b.verify(b"m", &a.compute(b"m")));
    }

    #[test]
    fn derived_keys_are_label_separated() {
        let enc = Mac::derive(42, "encrypt");
        let auth = Mac::derive(42, "authenticate");
        assert_ne!(enc.compute(b"x"), auth.compute(b"x"));
        // Same secret + label agree across parties.
        assert_eq!(Mac::derive(42, "encrypt"), enc);
    }
}
