#![warn(missing_docs)]
//! # security — wireless security and payment (§8)
//!
//! The paper's summary singles out "mobile security and payment" as the
//! other critical piece of a mobile commerce system: "Security issues
//! (including payment) include data reliability, integrity,
//! confidentiality, and authentication." This crate implements those four
//! properties as testable mechanisms:
//!
//! * [`hash`] / [`mac`] — integrity: a message-authentication code that
//!   rejects any tampering,
//! * [`cipher`] — confidentiality: stream and block ciphers,
//! * [`keyexchange`] — Diffie–Hellman key agreement,
//! * [`wtls`] — a WTLS-style session: handshake, key derivation, sealed
//!   records with sequence numbers (replay protection),
//! * [`payment`] — the payment protocol: authorization, capture,
//!   MAC-signed receipts, nonce-windowed replay rejection and an audit
//!   trail.
//!
//! **These primitives are simulation-grade, not cryptographically
//! secure.** They exercise the same code paths, handshakes and byte
//! overheads a real WTLS/PKI stack would (which is what the experiments
//! measure), while staying dependency-free and deterministic. The paper
//! itself notes "a unified approach has not yet emerged" — our interface
//! boundaries are where real primitives would slot in.

pub mod cipher;
pub mod hash;
pub mod keyexchange;
pub mod mac;
pub mod payment;
pub mod wtls;

pub use mac::Mac;
pub use payment::{PaymentError, PaymentGateway, PaymentRequest, Receipt};
pub use wtls::WtlsSession;
