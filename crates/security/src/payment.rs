//! Mobile payment — the application §8 calls "another important issue".
//!
//! A two-phase card-style protocol: **authorize** (reserve funds against
//! an account) then **capture** (settle). Every message is MAC-signed,
//! requests carry nonces checked against a replay window, receipts are
//! verifiable offline, and every decision lands in an audit trail. The
//! mobile payments application in `mcommerce-core` drives this gateway
//! end to end over the simulated network.

use std::collections::{HashMap, HashSet};

use crate::hash::DIGEST_BYTES;
use crate::mac::Mac;

/// A signed payment authorization request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaymentRequest {
    /// Merchant order identifier.
    pub order_id: u64,
    /// Amount in cents.
    pub amount_cents: u64,
    /// Paying account name.
    pub account: String,
    /// Anti-replay nonce (unique per request).
    pub nonce: u64,
    /// MAC over the canonical encoding.
    pub tag: [u8; DIGEST_BYTES],
}

impl PaymentRequest {
    fn canonical(order_id: u64, amount_cents: u64, account: &str, nonce: u64) -> Vec<u8> {
        format!("order={order_id};amount={amount_cents};account={account};nonce={nonce}")
            .into_bytes()
    }

    /// Builds and signs a request with the client's MAC key.
    pub fn signed(mac: &Mac, order_id: u64, amount_cents: u64, account: &str, nonce: u64) -> Self {
        let tag = mac.compute(&Self::canonical(order_id, amount_cents, account, nonce));
        PaymentRequest {
            order_id,
            amount_cents,
            account: account.to_owned(),
            nonce,
            tag,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 8 + self.account.len() + 8 + DIGEST_BYTES
    }
}

/// A signed receipt returned on capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The order this receipt settles.
    pub order_id: u64,
    /// Amount settled, in cents.
    pub amount_cents: u64,
    /// Gateway authorization code.
    pub auth_code: u64,
    /// MAC over the receipt body, signed with the gateway key.
    pub tag: [u8; DIGEST_BYTES],
}

impl Receipt {
    fn canonical(order_id: u64, amount_cents: u64, auth_code: u64) -> Vec<u8> {
        format!("receipt:order={order_id};amount={amount_cents};auth={auth_code}").into_bytes()
    }

    /// Verifies the receipt against the gateway's MAC key.
    pub fn verify(&self, gateway_mac: &Mac) -> bool {
        gateway_mac.verify(
            &Self::canonical(self.order_id, self.amount_cents, self.auth_code),
            &self.tag,
        )
    }
}

/// Why a payment was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaymentError {
    /// MAC check failed: tampering or wrong key.
    BadSignature,
    /// The nonce was seen before — replayed request.
    Replay,
    /// Unknown account.
    NoSuchAccount,
    /// Balance (minus holds) cannot cover the amount.
    InsufficientFunds {
        /// Funds available to authorize against, in cents.
        available: u64,
    },
    /// Capture for an order that was never authorized (or already captured).
    NoSuchAuthorization,
}

impl std::fmt::Display for PaymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaymentError::BadSignature => write!(f, "request failed authentication"),
            PaymentError::Replay => write!(f, "replayed request"),
            PaymentError::NoSuchAccount => write!(f, "unknown account"),
            PaymentError::InsufficientFunds { available } => {
                write!(f, "insufficient funds: {available} cents available")
            }
            PaymentError::NoSuchAuthorization => write!(f, "no open authorization for order"),
        }
    }
}

impl std::error::Error for PaymentError {}

/// One audit-trail record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// Authorization approved and funds held.
    Authorized {
        /// Order id.
        order_id: u64,
        /// Account charged.
        account: String,
        /// Amount held, in cents.
        amount_cents: u64,
    },
    /// An authorization hold was released without settling.
    Voided {
        /// Order id.
        order_id: u64,
    },
    /// Capture settled and receipt issued.
    Captured {
        /// Order id.
        order_id: u64,
        /// Authorization code on the receipt.
        auth_code: u64,
    },
    /// A request was refused.
    Refused {
        /// Order id.
        order_id: u64,
        /// The refusal reason, displayed.
        reason: String,
    },
}

/// The payment gateway: accounts, holds, replay window, audit trail.
#[derive(Debug)]
pub struct PaymentGateway {
    client_mac: Mac,
    gateway_mac: Mac,
    balances: HashMap<String, u64>,
    holds: HashMap<u64, (String, u64)>,
    seen_nonces: HashSet<u64>,
    next_auth_code: u64,
    audit: Vec<AuditEvent>,
}

impl PaymentGateway {
    /// Creates a gateway sharing `client_mac` with stations and holding
    /// its own `gateway_mac` for receipts.
    pub fn new(client_mac: Mac, gateway_mac: Mac) -> Self {
        PaymentGateway {
            client_mac,
            gateway_mac,
            balances: HashMap::new(),
            holds: HashMap::new(),
            seen_nonces: HashSet::new(),
            next_auth_code: 1,
            audit: Vec::new(),
        }
    }

    /// Opens an account with an initial balance.
    pub fn open_account(&mut self, account: &str, balance_cents: u64) {
        self.balances.insert(account.to_owned(), balance_cents);
    }

    /// An account's settled balance.
    pub fn balance(&self, account: &str) -> Option<u64> {
        self.balances.get(account).copied()
    }

    /// The audit trail so far.
    pub fn audit(&self) -> &[AuditEvent] {
        &self.audit
    }

    /// The gateway MAC, for receipt verification by clients.
    pub fn receipt_mac(&self) -> &Mac {
        &self.gateway_mac
    }

    fn refuse(&mut self, order_id: u64, err: PaymentError) -> PaymentError {
        self.audit.push(AuditEvent::Refused {
            order_id,
            reason: err.to_string(),
        });
        err
    }

    /// Phase 1 — authorize: verify, check replay and funds, place a hold.
    ///
    /// # Errors
    ///
    /// [`PaymentError`] describing the refusal; refused requests are
    /// audited but have no monetary effect.
    pub fn authorize(&mut self, req: &PaymentRequest) -> Result<(), PaymentError> {
        let canonical =
            PaymentRequest::canonical(req.order_id, req.amount_cents, &req.account, req.nonce);
        if !self.client_mac.verify(&canonical, &req.tag) {
            return Err(self.refuse(req.order_id, PaymentError::BadSignature));
        }
        if !self.seen_nonces.insert(req.nonce) {
            return Err(self.refuse(req.order_id, PaymentError::Replay));
        }
        let Some(&balance) = self.balances.get(&req.account) else {
            return Err(self.refuse(req.order_id, PaymentError::NoSuchAccount));
        };
        let held: u64 = self
            .holds
            .values()
            .filter(|(acct, _)| *acct == req.account)
            .map(|(_, cents)| cents)
            .sum();
        let available = balance.saturating_sub(held);
        if available < req.amount_cents {
            return Err(self.refuse(req.order_id, PaymentError::InsufficientFunds { available }));
        }
        self.holds
            .insert(req.order_id, (req.account.clone(), req.amount_cents));
        self.audit.push(AuditEvent::Authorized {
            order_id: req.order_id,
            account: req.account.clone(),
            amount_cents: req.amount_cents,
        });
        Ok(())
    }

    /// Releases an authorization hold without settling (the merchant side
    /// failed after authorization — e.g. the item could not be reserved).
    ///
    /// # Errors
    ///
    /// [`PaymentError::NoSuchAuthorization`] when there is no open hold.
    pub fn void(&mut self, order_id: u64) -> Result<(), PaymentError> {
        if self.holds.remove(&order_id).is_none() {
            return Err(self.refuse(order_id, PaymentError::NoSuchAuthorization));
        }
        self.audit.push(AuditEvent::Voided { order_id });
        Ok(())
    }

    /// Phase 2 — capture: settle the hold and issue a signed receipt.
    ///
    /// # Errors
    ///
    /// [`PaymentError::NoSuchAuthorization`] when there is no open hold.
    pub fn capture(&mut self, order_id: u64) -> Result<Receipt, PaymentError> {
        let Some((account, amount_cents)) = self.holds.remove(&order_id) else {
            return Err(self.refuse(order_id, PaymentError::NoSuchAuthorization));
        };
        let balance = self
            .balances
            .get_mut(&account)
            .expect("hold implies account");
        *balance -= amount_cents;
        let auth_code = self.next_auth_code;
        self.next_auth_code += 1;
        let tag = self
            .gateway_mac
            .compute(&Receipt::canonical(order_id, amount_cents, auth_code));
        self.audit.push(AuditEvent::Captured {
            order_id,
            auth_code,
        });
        Ok(Receipt {
            order_id,
            amount_cents,
            auth_code,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway() -> (PaymentGateway, Mac) {
        let client_mac = Mac::new(b"client-shared-key");
        let gw = PaymentGateway::new(client_mac, Mac::new(b"gateway-private-key"));
        (gw, client_mac)
    }

    #[test]
    fn authorize_then_capture_settles_funds() {
        let (mut gw, mac) = gateway();
        gw.open_account("alice", 10_000);
        let req = PaymentRequest::signed(&mac, 1, 1_999, "alice", 100);
        gw.authorize(&req).unwrap();
        assert_eq!(gw.balance("alice"), Some(10_000)); // held, not settled
        let receipt = gw.capture(1).unwrap();
        assert_eq!(gw.balance("alice"), Some(8_001));
        assert!(receipt.verify(gw.receipt_mac()));
        assert_eq!(receipt.amount_cents, 1_999);
    }

    #[test]
    fn tampered_amount_is_refused() {
        let (mut gw, mac) = gateway();
        gw.open_account("alice", 10_000);
        let mut req = PaymentRequest::signed(&mac, 1, 1_999, "alice", 100);
        req.amount_cents = 1; // attacker lowers the price
        assert_eq!(gw.authorize(&req), Err(PaymentError::BadSignature));
        assert_eq!(gw.balance("alice"), Some(10_000));
        assert!(matches!(
            gw.audit().last(),
            Some(AuditEvent::Refused { .. })
        ));
    }

    #[test]
    fn replayed_request_is_refused() {
        let (mut gw, mac) = gateway();
        gw.open_account("alice", 10_000);
        let req = PaymentRequest::signed(&mac, 1, 500, "alice", 42);
        gw.authorize(&req).unwrap();
        gw.capture(1).unwrap();
        // Same nonce again — even for a new order id.
        let replay = PaymentRequest::signed(&mac, 2, 500, "alice", 42);
        assert_eq!(gw.authorize(&replay), Err(PaymentError::Replay));
        assert_eq!(gw.balance("alice"), Some(9_500));
    }

    #[test]
    fn holds_count_against_available_funds() {
        let (mut gw, mac) = gateway();
        gw.open_account("bob", 1_000);
        gw.authorize(&PaymentRequest::signed(&mac, 1, 800, "bob", 1))
            .unwrap();
        let second = PaymentRequest::signed(&mac, 2, 300, "bob", 2);
        assert_eq!(
            gw.authorize(&second),
            Err(PaymentError::InsufficientFunds { available: 200 })
        );
        gw.capture(1).unwrap();
        // After settlement, remaining balance is 200 — still not enough.
        let third = PaymentRequest::signed(&mac, 3, 300, "bob", 3);
        assert!(matches!(
            gw.authorize(&third),
            Err(PaymentError::InsufficientFunds { .. })
        ));
        let fourth = PaymentRequest::signed(&mac, 4, 200, "bob", 4);
        gw.authorize(&fourth).unwrap();
    }

    #[test]
    fn unknown_account_and_double_capture_are_refused() {
        let (mut gw, mac) = gateway();
        let req = PaymentRequest::signed(&mac, 9, 100, "ghost", 7);
        assert_eq!(gw.authorize(&req), Err(PaymentError::NoSuchAccount));
        assert_eq!(gw.capture(9), Err(PaymentError::NoSuchAuthorization));
        gw.open_account("carol", 500);
        gw.authorize(&PaymentRequest::signed(&mac, 10, 100, "carol", 8))
            .unwrap();
        gw.capture(10).unwrap();
        assert_eq!(gw.capture(10), Err(PaymentError::NoSuchAuthorization));
    }

    #[test]
    fn forged_receipts_fail_verification() {
        let (mut gw, mac) = gateway();
        gw.open_account("alice", 1_000);
        gw.authorize(&PaymentRequest::signed(&mac, 1, 100, "alice", 1))
            .unwrap();
        let mut receipt = gw.capture(1).unwrap();
        receipt.amount_cents = 1; // doctored refund amount
        assert!(!receipt.verify(gw.receipt_mac()));
        // A receipt signed with the wrong key also fails.
        let fake = Mac::new(b"not-the-gateway");
        assert!(!Receipt {
            order_id: 1,
            amount_cents: 100,
            auth_code: 1,
            tag: fake.compute(b"whatever"),
        }
        .verify(gw.receipt_mac()));
    }

    #[test]
    fn void_releases_the_hold_without_settling() {
        let (mut gw, mac) = gateway();
        gw.open_account("dana", 1_000);
        gw.authorize(&PaymentRequest::signed(&mac, 5, 800, "dana", 50))
            .unwrap();
        // Held funds block a second authorization…
        assert!(matches!(
            gw.authorize(&PaymentRequest::signed(&mac, 6, 500, "dana", 51)),
            Err(PaymentError::InsufficientFunds { .. })
        ));
        gw.void(5).unwrap();
        // …and voiding releases them with no settlement.
        assert_eq!(gw.balance("dana"), Some(1_000));
        gw.authorize(&PaymentRequest::signed(&mac, 7, 500, "dana", 52))
            .unwrap();
        assert_eq!(gw.capture(5), Err(PaymentError::NoSuchAuthorization));
        assert!(gw
            .audit()
            .iter()
            .any(|e| matches!(e, AuditEvent::Voided { order_id: 5 })));
    }

    #[test]
    fn audit_trail_records_the_full_history() {
        let (mut gw, mac) = gateway();
        gw.open_account("alice", 1_000);
        gw.authorize(&PaymentRequest::signed(&mac, 1, 100, "alice", 1))
            .unwrap();
        gw.capture(1).unwrap();
        let _ = gw.authorize(&PaymentRequest::signed(&mac, 2, 9_999, "alice", 2));
        let audit = gw.audit();
        assert_eq!(audit.len(), 3);
        assert!(matches!(
            audit[0],
            AuditEvent::Authorized { order_id: 1, .. }
        ));
        assert!(matches!(audit[1], AuditEvent::Captured { order_id: 1, .. }));
        assert!(matches!(audit[2], AuditEvent::Refused { order_id: 2, .. }));
    }
}
