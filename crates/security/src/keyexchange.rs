//! Diffie–Hellman key agreement over a 61-bit prime field
//! (simulation-grade — the group is far too small for real security, but
//! the protocol shape and message count are faithful).

/// The group modulus: 2^61 - 1 (a Mersenne prime).
pub const MODULUS: u64 = (1 << 61) - 1;
/// The generator.
pub const GENERATOR: u64 = 5;

/// Modular exponentiation by squaring.
fn modpow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc: u128 = 1;
    let mut b: u128 = base as u128 % modulus as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % modulus as u128;
        }
        b = b * b % modulus as u128;
        exp >>= 1;
    }
    base = acc as u64;
    base
}

/// One party's ephemeral DH key pair.
#[derive(Debug, Clone, Copy)]
pub struct KeyPair {
    secret: u64,
    /// The public value `g^secret mod p` sent to the peer.
    pub public: u64,
}

impl KeyPair {
    /// Derives a key pair from secret exponent material.
    ///
    /// # Panics
    ///
    /// Panics if `secret` is zero (a degenerate exponent).
    pub fn from_secret(secret: u64) -> Self {
        assert!(secret != 0, "DH secret must be nonzero");
        let secret = secret % (MODULUS - 1);
        let secret = if secret == 0 { 1 } else { secret };
        KeyPair {
            secret,
            public: modpow(GENERATOR, secret, MODULUS),
        }
    }

    /// Combines with the peer's public value into the shared secret.
    ///
    /// ```
    /// use security::keyexchange::KeyPair;
    /// let alice = KeyPair::from_secret(0x1234_5678);
    /// let bob = KeyPair::from_secret(0x9abc_def0);
    /// assert_eq!(alice.shared(bob.public), bob.shared(alice.public));
    /// ```
    pub fn shared(&self, peer_public: u64) -> u64 {
        modpow(peer_public, self.secret, MODULUS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree() {
        for (a, b) in [(2u64, 3u64), (12345, 67890), (u64::MAX - 1, 7)] {
            let alice = KeyPair::from_secret(a);
            let bob = KeyPair::from_secret(b);
            assert_eq!(alice.shared(bob.public), bob.shared(alice.public));
        }
    }

    #[test]
    fn eavesdropper_with_wrong_secret_disagrees() {
        let alice = KeyPair::from_secret(111);
        let bob = KeyPair::from_secret(222);
        let eve = KeyPair::from_secret(333);
        let shared = alice.shared(bob.public);
        assert_ne!(eve.shared(alice.public), shared);
        assert_ne!(eve.shared(bob.public), shared);
    }

    #[test]
    fn public_values_hide_secrets() {
        let kp = KeyPair::from_secret(42);
        assert_ne!(kp.public, 42);
        assert_ne!(kp.public, 0);
        assert!(kp.public < MODULUS);
    }

    #[test]
    fn modpow_matches_known_values() {
        assert_eq!(modpow(2, 10, 1_000_003), 1024);
        assert_eq!(modpow(5, 0, 97), 1);
        assert_eq!(modpow(7, 96, 97), 1); // Fermat's little theorem
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_secret_panics() {
        KeyPair::from_secret(0);
    }
}
