//! A toy 128-bit Merkle–Damgård hash (simulation-grade).
//!
//! Built from two independent 64-bit mixing lanes over 8-byte blocks with
//! length strengthening. Collision-resistant enough for simulation and
//! property tests; **not** for real security.

/// Digest size in bytes.
pub const DIGEST_BYTES: usize = 16;

const SEED_A: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_B: u64 = 0xc2b2_ae3d_27d4_eb4f;

fn mix(mut h: u64, block: u64) -> u64 {
    h ^= block.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h = h.rotate_left(27).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Hashes `data` to a 16-byte digest.
///
/// ```
/// let a = security::hash::digest(b"hello");
/// let b = security::hash::digest(b"hello");
/// let c = security::hash::digest(b"hellp");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn digest(data: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut a = SEED_A;
    let mut b = SEED_B;
    for chunk in data.chunks(8) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        let word = u64::from_le_bytes(block) ^ (chunk.len() as u64) << 56;
        a = mix(a, word);
        b = mix(b, word.rotate_left(31));
    }
    // Length strengthening + final avalanche.
    a = mix(a, data.len() as u64 ^ SEED_B);
    b = mix(b, (data.len() as u64).rotate_left(17) ^ SEED_A);
    a = mix(a, b);
    b = mix(b, a);

    let mut out = [0u8; DIGEST_BYTES];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_eq!(digest(b""), digest(b""));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = digest(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut tampered = base.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(digest(&tampered), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn length_extension_inputs_differ() {
        // Same prefix, different lengths of trailing zeros.
        assert_ne!(digest(b"abc"), digest(b"abc\0"));
        assert_ne!(digest(b"abc\0"), digest(b"abc\0\0"));
    }

    #[test]
    fn no_collisions_over_small_corpus() {
        let mut seen = HashSet::new();
        for i in 0..20_000u32 {
            let d = digest(format!("message-{i}").as_bytes());
            assert!(seen.insert(d), "collision at {i}");
        }
    }

    #[test]
    fn output_is_well_distributed() {
        // Count leading-byte distribution buckets; crude avalanche check.
        let mut buckets = [0u32; 16];
        for i in 0..4096u32 {
            let d = digest(&i.to_le_bytes());
            buckets[(d[0] >> 4) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((150..=400).contains(&count), "bucket {i}: {count}");
        }
    }
}
