//! A WTLS-style secure session.
//!
//! WAP secured its air link with WTLS (TLS adapted for wireless). This
//! module reproduces the session shape: a two-flight handshake agreeing
//! keys via Diffie–Hellman, key derivation separated by direction, then
//! sealed records — stream-encrypted, MAC'd, and sequence-numbered so
//! replayed or reordered records are rejected. The per-record byte
//! overhead is exposed so experiments can charge security's bandwidth
//! cost on narrow links.

use crate::cipher::StreamCipher;
use crate::hash::DIGEST_BYTES;
use crate::keyexchange::KeyPair;
use crate::mac::Mac;

/// Bytes of overhead each sealed record adds (header + sequence + MAC).
pub const RECORD_OVERHEAD: usize = 3 + 8 + DIGEST_BYTES;

/// Bytes exchanged by the handshake (two hello flights).
pub const HANDSHAKE_BYTES: usize = 2 * (8 + 8 + 3);

/// Which endpoint a session half belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The mobile station.
    Client,
    /// The gateway / server.
    Server,
}

/// Errors opening a sealed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Record too short to contain the frame.
    Truncated,
    /// MAC verification failed (tampering or wrong keys).
    BadMac,
    /// Sequence number is not the next expected (replay or reorder).
    BadSequence {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::BadMac => write!(f, "record failed authentication"),
            RecordError::BadSequence { expected, found } => {
                write!(f, "bad sequence: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// One endpoint of an established WTLS-style session.
#[derive(Debug)]
pub struct WtlsSession {
    role: Role,
    send_mac: Mac,
    recv_mac: Mac,
    send_key: u64,
    recv_key: u64,
    send_seq: u64,
    recv_seq: u64,
}

impl WtlsSession {
    /// Completes the handshake for one endpoint given its ephemeral
    /// secret and the peer's public value, returning the session.
    ///
    /// Both sides must call this with matching parameters (as the two
    /// hello flights provide); the derived keys are direction-separated.
    pub fn establish(role: Role, own_secret: u64, peer_public: u64) -> WtlsSession {
        let own = KeyPair::from_secret(own_secret);
        let master = own.shared(peer_public);
        let c2s_mac = Mac::derive(master, "mac.c2s");
        let s2c_mac = Mac::derive(master, "mac.s2c");
        let c2s_key = master ^ 0x6b65_795f_6332_7300; // "key_c2s"
        let s2c_key = master ^ 0x6b65_795f_7332_6300; // "key_s2c"
        match role {
            Role::Client => WtlsSession {
                role,
                send_mac: c2s_mac,
                recv_mac: s2c_mac,
                send_key: c2s_key,
                recv_key: s2c_key,
                send_seq: 0,
                recv_seq: 0,
            },
            Role::Server => WtlsSession {
                role,
                send_mac: s2c_mac,
                recv_mac: c2s_mac,
                send_key: s2c_key,
                recv_key: c2s_key,
                send_seq: 0,
                recv_seq: 0,
            },
        }
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Seals `plaintext` into a record: `seq || ciphertext || mac`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let ct = StreamCipher::new(self.send_key, seq).apply(plaintext);
        let mut record = Vec::with_capacity(8 + ct.len() + DIGEST_BYTES);
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&ct);
        let tag = self.send_mac.compute(&record);
        record.extend_from_slice(&tag);
        record
    }

    /// Opens a sealed record from the peer, enforcing MAC and sequence.
    ///
    /// # Errors
    ///
    /// [`RecordError`] on truncation, bad MAC, or out-of-order sequence.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, RecordError> {
        if record.len() < 8 + DIGEST_BYTES {
            return Err(RecordError::Truncated);
        }
        let (body, tag_bytes) = record.split_at(record.len() - DIGEST_BYTES);
        let mut tag = [0u8; DIGEST_BYTES];
        tag.copy_from_slice(tag_bytes);
        if !self.recv_mac.verify(body, &tag) {
            return Err(RecordError::BadMac);
        }
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&body[..8]);
        let seq = u64::from_le_bytes(seq_bytes);
        if seq != self.recv_seq {
            return Err(RecordError::BadSequence {
                expected: self.recv_seq,
                found: seq,
            });
        }
        self.recv_seq += 1;
        Ok(StreamCipher::new(self.recv_key, seq).apply(&body[8..]))
    }

    /// Bytes a sealed record occupies for `plaintext_len` of payload.
    pub fn sealed_size(plaintext_len: usize) -> usize {
        plaintext_len + RECORD_OVERHEAD
    }
}

/// Establishes both halves of a session at once (test/simulation helper
/// standing in for the two hello flights on the wire).
pub fn handshake(client_secret: u64, server_secret: u64) -> (WtlsSession, WtlsSession) {
    let client_kp = KeyPair::from_secret(client_secret);
    let server_kp = KeyPair::from_secret(server_secret);
    (
        WtlsSession::establish(Role::Client, client_secret, server_kp.public),
        WtlsSession::establish(Role::Server, server_secret, client_kp.public),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_records_round_trip_both_directions() {
        let (mut client, mut server) = handshake(11, 22);
        let r1 = client.seal(b"GET /catalog");
        assert_eq!(server.open(&r1).unwrap(), b"GET /catalog");
        let r2 = server.seal(b"<wml>...</wml>");
        assert_eq!(client.open(&r2).unwrap(), b"<wml>...</wml>");
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_records() {
        let (mut client, _server) = handshake(11, 22);
        let a = client.seal(b"same payload");
        let b = client.seal(b"same payload");
        assert_ne!(&a[8..20], b"same payload"); // encrypted
        assert_ne!(a[8..], b[8..]); // per-record keystream
    }

    #[test]
    fn tampering_is_rejected() {
        let (mut client, mut server) = handshake(11, 22);
        let mut record = client.seal(b"amount=100");
        record[10] ^= 0x01;
        assert_eq!(server.open(&record), Err(RecordError::BadMac));
    }

    #[test]
    fn replay_is_rejected() {
        let (mut client, mut server) = handshake(11, 22);
        let record = client.seal(b"pay once");
        assert!(server.open(&record).is_ok());
        assert_eq!(
            server.open(&record),
            Err(RecordError::BadSequence {
                expected: 1,
                found: 0
            })
        );
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut client, mut server) = handshake(11, 22);
        let r0 = client.seal(b"first");
        let r1 = client.seal(b"second");
        assert_eq!(
            server.open(&r1),
            Err(RecordError::BadSequence {
                expected: 0,
                found: 1
            })
        );
        // The in-order record still works afterwards.
        assert!(server.open(&r0).is_ok());
    }

    #[test]
    fn wrong_peer_cannot_open() {
        let (mut client, _) = handshake(11, 22);
        let (_, mut wrong_server) = handshake(11, 33);
        let record = client.seal(b"hello");
        assert_eq!(wrong_server.open(&record), Err(RecordError::BadMac));
    }

    #[test]
    fn truncated_records_are_rejected() {
        let (mut client, mut server) = handshake(1, 2);
        let record = client.seal(b"x");
        assert_eq!(server.open(&record[..8]), Err(RecordError::Truncated));
    }

    #[test]
    fn overhead_accounting_matches_reality() {
        let (mut client, _) = handshake(1, 2);
        let record = client.seal(&[0u8; 100]);
        // seal() emits seq+ct+mac; sealed_size adds the 3-byte header the
        // transport would frame it with.
        assert_eq!(record.len() + 3, WtlsSession::sealed_size(100));
    }
}
