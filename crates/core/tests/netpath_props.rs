//! Property tests over the hop cost models in `netpath` and robustness of
//! the end-to-end system against arbitrary request paths.

use proptest::prelude::*;

use mcommerce_core::netpath::{WiredPath, WirelessConfig};
use mcommerce_core::{CommerceSystem, SystemSpec};
use simnet::rng::rng_for;
use simnet::SimDuration;
use wireless::{CellularStandard, WlanStandard};

fn any_wireless() -> impl Strategy<Value = WirelessConfig> {
    prop_oneof![
        (
            prop_oneof![
                Just(WlanStandard::Bluetooth),
                Just(WlanStandard::Dot11b),
                Just(WlanStandard::Dot11a),
                Just(WlanStandard::HyperLan2),
                Just(WlanStandard::Dot11g),
            ],
            0.0f64..320.0
        )
            .prop_map(|(standard, distance_m)| WirelessConfig::Wlan {
                standard,
                distance_m
            }),
        prop_oneof![
            Just(CellularStandard::Gsm),
            Just(CellularStandard::Cdma),
            Just(CellularStandard::Gprs),
            Just(CellularStandard::Edge),
            Just(CellularStandard::Wcdma),
        ]
        .prop_map(|standard| WirelessConfig::Cellular { standard }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Physics: a transfer can never beat the link's serialisation rate,
    /// and byte accounting always covers payload plus framing.
    #[test]
    fn transfers_respect_link_physics(
        config in any_wireless(),
        bytes in 1usize..200_000,
        seed in 0u64..500,
    ) {
        let Some(link) = config.air_link() else { return Ok(()); };
        let mut rng = rng_for(seed, "prop.netpath");
        let t = link.transfer(bytes, &mut rng);
        // Elapsed covers at least the airtime of everything put on the
        // medium (access delays come on top).
        let floor = SimDuration::transmission(t.bytes_on_medium as usize, link.rate_bps);
        prop_assert!(t.elapsed >= floor, "elapsed {} < airtime floor {}", t.elapsed, floor);
        if !t.failed {
            // Every payload byte crossed, plus per-fragment overhead.
            let fragment = link.fragment_payload();
            let fragments = bytes.div_ceil(fragment) as u64;
            prop_assert!(
                t.bytes_on_medium >= bytes as u64 + fragments * link.frame_overhead as u64 - link.frame_overhead as u64,
                "on-medium {} too small for {} bytes in {} fragments",
                t.bytes_on_medium, bytes, fragments
            );
        }
    }

    /// Determinism: the same seed reproduces the transfer bit-for-bit;
    /// and on clean channels, more bytes never arrive faster.
    #[test]
    fn transfers_are_deterministic_and_monotone(
        bytes in 1usize..100_000,
        extra in 1usize..50_000,
        seed in 0u64..500,
    ) {
        let link = WirelessConfig::Wlan { standard: WlanStandard::Dot11b, distance_m: 10.0 }
            .air_link()
            .unwrap();
        let a = link.transfer(bytes, &mut rng_for(seed, "prop.det"));
        let b = link.transfer(bytes, &mut rng_for(seed, "prop.det"));
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.bytes_on_medium, b.bytes_on_medium);

        // Clean-channel monotonicity (BER at 10 m is 1e-6; use the
        // deterministic floor comparison instead of sampled elapsed).
        let more = link.transfer(bytes + extra, &mut rng_for(seed, "prop.det"));
        prop_assert!(more.bytes_on_medium > a.bytes_on_medium);
    }

    /// Wired paths are linear: transfer(a) + transfer(b) ≥ transfer(a+b)
    /// minus one latency charge (they share it when batched).
    #[test]
    fn wired_paths_are_additive(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let wan = WiredPath::wan();
        let whole = wan.transfer(a + b);
        let split = wan.transfer(a) + wan.transfer(b);
        prop_assert!(split >= whole);
        let slack = split - whole;
        prop_assert!(slack <= wan.latency + SimDuration::from_nanos(2), "slack {slack}");
    }

    /// Robustness: arbitrary request paths (valid or garbage) never panic
    /// the six-component system; failures carry a reason.
    #[test]
    fn arbitrary_paths_never_panic_the_system(
        path in "[a-zA-Z0-9/?=&._ -]{0,60}",
        config in any_wireless(),
    ) {
        use hostsite::db::Database;
        use hostsite::HostComputer;
        use mcommerce_core::apps::{Application, PaymentsApp};
        use middleware::MobileRequest;
        use station::DeviceProfile;

        let app = PaymentsApp::new();
        let mut host = HostComputer::new(Database::new(), 50);
        app.install(&mut host);
        let mut system = SystemSpec::new()
            .device(DeviceProfile::ipaq_h3870())
            .wireless(config)
            .wired(WiredPath::wan())
            .seed(51)
            .build(host);
        let report = system.execute(&MobileRequest::get(&format!("/{path}")));
        if !report.success {
            prop_assert!(report.failure.is_some(), "failures must carry a reason");
        }
        prop_assert!(report.total >= 0.0);
        prop_assert!(report.energy_j >= 0.0);
    }
}
