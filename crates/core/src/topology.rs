//! Topology: how a fleet's stations map onto shared infrastructure.
//!
//! The paper's architecture chains stations through a wireless cell, a
//! WAP gateway and the wired WAN to a host computer. Under light load
//! each user may as well own that whole chain — the legacy per-user
//! world. Under *heavy traffic* (ROADMAP item 1) the chain is shared:
//! many stations contend for one cell's airtime, one gateway transcodes
//! for everyone behind it, one host serves the population.
//!
//! A [`Topology`] describes that sharing declaratively: how many cells,
//! gateways and hosts exist, and how users are placed into cells. The
//! wiring is fixed and canonical — cell *c* uplinks through gateway
//! `c mod gateways`, gateway *g* reaches host `g mod hosts` — so the
//! **island** of a user (the connected component around one host) is a
//! pure function of `(topology, user index, user count)`, never of
//! threads. Islands are what the fleet engine parallelises over.
//!
//! [`Topology::isolated`] is the degenerate one-user-per-world topology:
//! the legacy engine, bit for bit.

/// How users are assigned to cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// User `u` joins cell `u mod cells` — populations spread evenly.
    #[default]
    RoundRobin,
    /// Users fill cells in contiguous blocks of `ceil(users / cells)` —
    /// user locality, e.g. one office per cell.
    Blocked,
}

/// The infrastructure shape a fleet runs on.
///
/// Built fluently and passed to
/// [`FleetRunner::topology`](crate::fleet::FleetRunner::topology):
///
/// ```
/// use mcommerce_core::{Placement, Topology};
///
/// let topo = Topology::shared()
///     .cells(4)
///     .gateways(2)
///     .hosts(1)
///     .placement(Placement::RoundRobin);
/// assert!(topo.is_shared());
/// assert_eq!(topo.island_of_user(7, 8), 0, "one host ⇒ one island");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    shared: bool,
    cells: u64,
    gateways: u64,
    hosts: u64,
    placement: Placement,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::isolated()
    }
}

impl Topology {
    /// The legacy degenerate topology: every user owns a private world
    /// (own host, own gateway, own cell). This is the default, and runs
    /// the exact per-user engine.
    #[must_use]
    pub fn isolated() -> Self {
        Topology {
            shared: false,
            cells: 1,
            gateways: 1,
            hosts: 1,
            placement: Placement::RoundRobin,
        }
    }

    /// A shared world: one cell, one gateway, one host serving the whole
    /// population, until reshaped by the builder methods.
    #[must_use]
    pub fn shared() -> Self {
        Topology {
            shared: true,
            ..Topology::isolated()
        }
    }

    /// Sets the number of wireless cells (clamped to ≥ 1).
    #[must_use]
    pub fn cells(mut self, cells: u64) -> Self {
        self.cells = cells.max(1);
        self
    }

    /// Sets the number of WAP gateways (clamped to ≥ 1).
    #[must_use]
    pub fn gateways(mut self, gateways: u64) -> Self {
        self.gateways = gateways.max(1);
        self
    }

    /// Sets the number of host computers (clamped to ≥ 1).
    #[must_use]
    pub fn hosts(mut self, hosts: u64) -> Self {
        self.hosts = hosts.max(1);
        self
    }

    /// Sets how users are placed into cells.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Whether this topology shares infrastructure between users.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Number of cells.
    pub fn cell_count(&self) -> u64 {
        self.cells
    }

    /// Number of gateways.
    pub fn gateway_count(&self) -> u64 {
        self.gateways
    }

    /// Number of hosts — which is also the number of islands the engine
    /// can execute in parallel.
    pub fn host_count(&self) -> u64 {
        self.hosts
    }

    /// The placement policy.
    pub fn placement_policy(&self) -> Placement {
        self.placement
    }

    /// The cell user `user` (of `users` total) is placed in.
    pub fn cell_of_user(&self, user: u64, users: u64) -> u64 {
        match self.placement {
            Placement::RoundRobin => user % self.cells,
            Placement::Blocked => {
                let block = users.div_ceil(self.cells).max(1);
                (user / block).min(self.cells - 1)
            }
        }
    }

    /// The gateway cell `cell` uplinks through.
    pub fn gateway_of_cell(&self, cell: u64) -> u64 {
        cell % self.gateways
    }

    /// The host gateway `gateway` forwards to.
    pub fn host_of_gateway(&self, gateway: u64) -> u64 {
        gateway % self.hosts
    }

    /// The island (connected component, identified by its host index)
    /// user `user` belongs to.
    pub fn island_of_user(&self, user: u64, users: u64) -> u64 {
        self.host_of_gateway(self.gateway_of_cell(self.cell_of_user(user, users)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_is_the_isolated_legacy_world() {
        assert_eq!(Topology::default(), Topology::isolated());
        assert!(!Topology::isolated().is_shared());
        assert!(Topology::shared().is_shared());
    }

    #[test]
    fn counts_clamp_to_at_least_one() {
        let t = Topology::shared().cells(0).gateways(0).hosts(0);
        assert_eq!(t.cell_count(), 1);
        assert_eq!(t.gateway_count(), 1);
        assert_eq!(t.host_count(), 1);
    }

    #[test]
    fn round_robin_spreads_and_blocked_chunks() {
        let rr = Topology::shared().cells(3);
        let cells: Vec<u64> = (0..6).map(|u| rr.cell_of_user(u, 6)).collect();
        assert_eq!(cells, vec![0, 1, 2, 0, 1, 2]);

        let blocked = rr.placement(Placement::Blocked);
        let cells: Vec<u64> = (0..6).map(|u| blocked.cell_of_user(u, 6)).collect();
        assert_eq!(cells, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn islands_follow_the_modulo_wiring() {
        // 4 cells → 2 gateways → 2 hosts: cells {0,2} land on host 0,
        // cells {1,3} on host 1.
        let t = Topology::shared().cells(4).gateways(2).hosts(2);
        assert_eq!(t.island_of_user(0, 8), 0); // cell 0 → gw 0 → host 0
        assert_eq!(t.island_of_user(1, 8), 1); // cell 1 → gw 1 → host 1
        assert_eq!(t.island_of_user(2, 8), 0); // cell 2 → gw 0 → host 0
        assert_eq!(t.island_of_user(3, 8), 1);
    }

    #[test]
    fn blocked_placement_never_overflows_the_last_cell() {
        let t = Topology::shared().cells(3).placement(Placement::Blocked);
        for u in 0..10 {
            assert!(t.cell_of_user(u, 10) < 3);
        }
    }
}
