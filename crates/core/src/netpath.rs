//! Hop cost models for end-to-end transactions.
//!
//! The protocol crates (`transport`, `netstack`) exercise the network at
//! packet granularity; the end-to-end system runs *thousands* of
//! transactions per experiment, so each hop is modelled at frame
//! granularity with the same primitives (serialisation at the standard's
//! rate, per-frame loss from the standard's BER, link-layer ARQ
//! retransmissions) — stochastic and byte-accurate, but O(frames) per
//! transfer instead of O(events).

use rand::rngs::StdRng;
use rand::RngExt;

use simnet::SimDuration;
use wireless::energy::EnergyModel;
use wireless::{CellularStandard, WlanStandard};

/// Maximum over-the-air frame payload in bytes.
pub const AIR_MTU: usize = 1_500;

/// Link-layer retransmission limit per frame (802.11-style ARQ).
pub const ARQ_RETRY_LIMIT: u32 = 7;

/// Which wireless network carries the air hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WirelessConfig {
    /// A WLAN standard with the station at a given distance from the AP.
    Wlan {
        /// The standard (Table 4).
        standard: WlanStandard,
        /// Station-to-AP distance in metres.
        distance_m: f64,
    },
    /// A cellular standard (Table 5).
    Cellular {
        /// The standard.
        standard: CellularStandard,
    },
}

impl WirelessConfig {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            WirelessConfig::Wlan {
                standard,
                distance_m,
            } => {
                format!("{standard} @ {distance_m} m")
            }
            WirelessConfig::Cellular { standard } => standard.to_string(),
        }
    }

    /// Builds the air link, or `None` when the configuration cannot carry
    /// data (out of WLAN range, or analog 1G cellular).
    pub fn air_link(&self) -> Option<AirLink> {
        match *self {
            WirelessConfig::Wlan {
                standard,
                distance_m,
            } => {
                let rate = standard.rate_at(distance_m)?;
                Some(AirLink {
                    rate_bps: rate,
                    access_delay: standard.access_delay(),
                    ber: standard.ber_at(distance_m),
                    frame_overhead: standard.frame_overhead_bytes(),
                    session_setup: SimDuration::ZERO,
                    energy: EnergyModel::wlan(standard),
                })
            }
            WirelessConfig::Cellular { standard } => {
                let rate = standard.data_rate_bps()?;
                Some(AirLink {
                    rate_bps: rate,
                    access_delay: standard.ran_latency(),
                    ber: standard.ber(),
                    frame_overhead: 24,
                    session_setup: standard.session_setup(),
                    energy: EnergyModel::cellular(standard),
                })
            }
        }
    }
}

/// Result of pushing a payload across a hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopTransfer {
    /// Time from first bit to last delivered bit.
    pub elapsed: SimDuration,
    /// Bytes that crossed the medium, including framing and
    /// retransmissions.
    pub bytes_on_medium: u64,
    /// Frames retransmitted by ARQ.
    pub retransmissions: u32,
    /// True when a frame exhausted its retry budget (transfer failed).
    pub failed: bool,
}

/// The wireless hop: rate, access delay, BER-driven ARQ, session setup.
#[derive(Debug, Clone, Copy)]
pub struct AirLink {
    /// PHY rate in bits per second.
    pub rate_bps: u64,
    /// MAC access / RAN latency charged per frame exchange.
    pub access_delay: SimDuration,
    /// Residual bit-error rate.
    pub ber: f64,
    /// Framing overhead per frame, bytes.
    pub frame_overhead: usize,
    /// One-time session setup (circuit dialling / packet activation).
    pub session_setup: SimDuration,
    /// Energy prices for this radio.
    pub energy: EnergyModel,
}

impl AirLink {
    /// Per-frame delivery probability for a frame of `bytes` payload.
    fn frame_success_probability(&self, bytes: usize) -> f64 {
        (1.0 - self.ber).powi(((bytes + self.frame_overhead) * 8) as i32)
    }

    /// The fragment payload size the link uses: on clean channels the full
    /// MTU; on error-prone channels, fragments sized so each survives with
    /// probability ≥ 0.9 (802.11-style fragmentation-threshold adaptation,
    /// floored at 64 bytes).
    pub fn fragment_payload(&self) -> usize {
        if self.ber <= 0.0 {
            return AIR_MTU;
        }
        // Solve (1-ber)^(8·(payload+overhead)) = 0.9 for payload.
        let total_bytes = (0.9f64.ln() / (1.0 - self.ber).ln()) / 8.0;
        ((total_bytes as usize).saturating_sub(self.frame_overhead)).clamp(64, AIR_MTU)
    }

    /// Transfers `bytes` across the air: frames are pipelined (the MAC
    /// access delay is charged once per transfer), every ARQ
    /// retransmission costs its airtime again plus one access delay, and
    /// a frame exhausting [`ARQ_RETRY_LIMIT`] fails the transfer.
    pub fn transfer(&self, bytes: usize, rng: &mut StdRng) -> HopTransfer {
        if bytes == 0 {
            return HopTransfer {
                elapsed: self.access_delay,
                bytes_on_medium: 0,
                retransmissions: 0,
                failed: false,
            };
        }
        let fragment = self.fragment_payload();
        let mut elapsed = self.access_delay;
        let mut on_medium = 0u64;
        let mut retransmissions = 0u32;
        let mut remaining = bytes;
        while remaining > 0 {
            let frame = remaining.min(fragment);
            let p = self.frame_success_probability(frame).clamp(0.0, 1.0);
            let airtime = SimDuration::transmission(frame + self.frame_overhead, self.rate_bps);
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                elapsed += airtime;
                if attempts > 1 {
                    // Recovery costs a fresh channel access.
                    elapsed += self.access_delay;
                }
                on_medium += (frame + self.frame_overhead) as u64;
                if rng.random_bool(p) {
                    break;
                }
                if attempts > ARQ_RETRY_LIMIT {
                    return HopTransfer {
                        elapsed,
                        bytes_on_medium: on_medium,
                        retransmissions: retransmissions + attempts - 1,
                        failed: true,
                    };
                }
            }
            retransmissions += attempts - 1;
            remaining -= frame;
        }
        HopTransfer {
            elapsed,
            bytes_on_medium: on_medium,
            retransmissions,
            failed: false,
        }
    }

    /// Energy to move `transfer` in the transmit direction.
    pub fn tx_energy(&self, transfer: &HopTransfer) -> f64 {
        self.energy.tx_cost(transfer.bytes_on_medium)
    }

    /// Energy to move `transfer` in the receive direction.
    pub fn rx_energy(&self, transfer: &HopTransfer) -> f64 {
        self.energy.rx_cost(transfer.bytes_on_medium)
    }
}

/// The wired path between middleware/client and the host computer.
#[derive(Debug, Clone, Copy)]
pub struct WiredPath {
    /// Bottleneck bandwidth in bits per second.
    pub rate_bps: u64,
    /// One-way latency.
    pub latency: SimDuration,
}

impl WiredPath {
    /// A LAN-grade path (100 Mbps, 2 ms).
    pub fn lan() -> Self {
        WiredPath {
            rate_bps: 100_000_000,
            latency: SimDuration::from_millis(2),
        }
    }

    /// An Internet-grade path (10 Mbps bottleneck, 20 ms).
    pub fn wan() -> Self {
        WiredPath {
            rate_bps: 10_000_000,
            latency: SimDuration::from_millis(20),
        }
    }

    /// Time to move `bytes` one way (lossless).
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        SimDuration::transmission(bytes, self.rate_bps) + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::rng::rng_for;

    #[test]
    fn clean_wlan_transfer_matches_arithmetic() {
        let link = WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 10.0,
        }
        .air_link()
        .unwrap();
        let mut rng = rng_for(1, "t");
        let t = link.transfer(1_466, &mut rng); // one full frame payload
        assert!(!t.failed);
        assert_eq!(t.retransmissions, 0);
        assert_eq!(t.bytes_on_medium, 1_500);
        // 1500 B at 11 Mbps ≈ 1.09 ms plus 0.4 ms access delay.
        let expected = SimDuration::transmission(1_500, 11_000_000) + link.access_delay;
        assert_eq!(t.elapsed, expected);
    }

    #[test]
    fn lossy_edge_of_coverage_forces_retransmissions() {
        let link = WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 100.0,
        }
        .air_link()
        .unwrap();
        let mut rng = rng_for(2, "t");
        // At BER 1e-4 a 1500-byte frame survives with p ≈ 0.30: pushing
        // 100 KB must retransmit heavily.
        let t = link.transfer(100_000, &mut rng);
        assert!(
            !t.failed,
            "ARQ with fragmentation should still get it through"
        );
        assert!(
            t.retransmissions > 50,
            "retransmissions {}",
            t.retransmissions
        );
        // Fragmentation overhead + retransmissions inflate on-air bytes.
        assert!(t.bytes_on_medium > 135_000, "bytes {}", t.bytes_on_medium);
        // Fragments shrank well below the MTU to survive the BER.
        assert!(link.fragment_payload() < 200);
    }

    #[test]
    fn out_of_range_and_analog_standards_have_no_link() {
        assert!(WirelessConfig::Wlan {
            standard: WlanStandard::Bluetooth,
            distance_m: 50.0
        }
        .air_link()
        .is_none());
        assert!(WirelessConfig::Cellular {
            standard: CellularStandard::Amps
        }
        .air_link()
        .is_none());
    }

    #[test]
    fn cellular_setup_and_latency_dominate_small_transfers() {
        let gsm = WirelessConfig::Cellular {
            standard: CellularStandard::Gsm,
        }
        .air_link()
        .unwrap();
        let wifi = WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 10.0,
        }
        .air_link()
        .unwrap();
        assert!(gsm.session_setup > SimDuration::from_secs(1));
        assert_eq!(wifi.session_setup, SimDuration::ZERO);
        let mut rng = rng_for(3, "t");
        let t_gsm = gsm.transfer(500, &mut rng);
        let t_wifi = wifi.transfer(500, &mut rng);
        assert!(t_gsm.elapsed > t_wifi.elapsed * 10);
    }

    #[test]
    fn faster_standards_move_bulk_faster() {
        let mut rng = rng_for(4, "t");
        let slow = WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        }
        .air_link()
        .unwrap()
        .transfer(200_000, &mut rng);
        let fast = WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        }
        .air_link()
        .unwrap()
        .transfer(200_000, &mut rng);
        assert!(slow.elapsed > fast.elapsed * 5);
    }

    #[test]
    fn energy_scales_with_bytes_on_medium() {
        let link = WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 10.0,
        }
        .air_link()
        .unwrap();
        let mut rng = rng_for(5, "t");
        let small = link.transfer(1_000, &mut rng);
        let big = link.transfer(100_000, &mut rng);
        assert!(link.tx_energy(&big) > 50.0 * link.tx_energy(&small));
        assert!(link.tx_energy(&small) > link.rx_energy(&small));
    }

    #[test]
    fn wired_paths_are_deterministic() {
        let wan = WiredPath::wan();
        let t = wan.transfer(10_000);
        assert_eq!(
            t,
            SimDuration::transmission(10_000, 10_000_000) + SimDuration::from_millis(20)
        );
        assert!(WiredPath::lan().transfer(10_000) < t);
    }

    #[test]
    fn zero_byte_transfer_costs_one_access() {
        let link = WirelessConfig::Wlan {
            standard: WlanStandard::Dot11g,
            distance_m: 5.0,
        }
        .air_link()
        .unwrap();
        let mut rng = rng_for(6, "t");
        let t = link.transfer(0, &mut rng);
        assert_eq!(t.elapsed, link.access_delay);
        assert_eq!(t.bytes_on_medium, 0);
    }
}
