//! Transaction reports and workload aggregation.
//!
//! Aggregation is built on [`WorkloadCounters`], a purely integral,
//! order-insensitive accumulator: merging counters is associative and
//! commutative bit-for-bit, which is what lets the fleet runner produce
//! identical summaries regardless of how sessions are sharded across
//! threads (see `fleet`).

use std::collections::BTreeMap;

use hostsite::http::Status;
use simnet::SimDuration;

/// Latency attributed to each of the system's components — the
/// per-component breakdown that makes Figures 1 and 2 measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// CPU time on the mobile station (or desktop client): request
    /// construction, parsing, rendering.
    pub station_secs: f64,
    /// Time on the wireless hop (both directions, incl. session setup).
    pub wireless_secs: f64,
    /// CPU time in the middleware layer (translation, encoding).
    pub middleware_secs: f64,
    /// Time on the wired network (both directions).
    pub wired_secs: f64,
    /// CPU time on the host computer.
    pub host_secs: f64,
}

impl PhaseBreakdown {
    /// Sum of all components.
    pub fn total_secs(&self) -> f64 {
        self.station_secs
            + self.wireless_secs
            + self.middleware_secs
            + self.wired_secs
            + self.host_secs
    }

    /// The share (0..1) a component contributes; keys: `station`,
    /// `wireless`, `middleware`, `wired`, `host`.
    pub fn share(&self, component: &str) -> f64 {
        let total = self.total_secs();
        if total == 0.0 {
            return 0.0;
        }
        let value = match component {
            "station" => self.station_secs,
            "wireless" => self.wireless_secs,
            "middleware" => self.middleware_secs,
            "wired" => self.wired_secs,
            "host" => self.host_secs,
            _ => 0.0,
        };
        value / total
    }
}

/// What the user ended up seeing after a transaction: the rendered page
/// and the host's verdict, as structured data.
///
/// This replaced the removed `CommerceSystem::last_page_text` accessor —
/// the outcome travels on the [`TransactionReport`] itself, so concurrent
/// sessions cannot observe each other's pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionOutcome {
    /// The rendered page body, lines joined with `\n`.
    pub page_text: String,
    /// The rendered page title (empty when the markup had none).
    pub title: String,
    /// HTTP status the host answered with.
    pub status: Status,
}

/// The outcome of one end-to-end transaction (one request/response plus
/// rendering).
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionReport {
    /// Wall-clock latency of the whole transaction.
    pub total: f64,
    /// Per-component latency breakdown (seconds).
    pub breakdown: PhaseBreakdown,
    /// Bytes over the air, station → network.
    pub air_bytes_up: u64,
    /// Bytes over the air, network → station.
    pub air_bytes_down: u64,
    /// Link-layer retransmissions on the air hop.
    pub retransmissions: u32,
    /// Battery energy consumed, joules.
    pub energy_j: f64,
    /// Whether the transaction completed.
    pub success: bool,
    /// Failure description when `success` is false.
    pub failure: Option<String>,
    /// The rendered result, when the transaction completed.
    pub outcome: Option<TransactionOutcome>,
    /// End-to-end execution attempts this report covers (`1` = no
    /// retries). When a retry policy re-drives a transaction, the final
    /// report absorbs the failed attempts' costs and counts them here.
    pub attempts: u32,
}

impl TransactionReport {
    /// A failed transaction with the given reason and whatever costs were
    /// already paid.
    pub fn failed(reason: impl Into<String>) -> Self {
        TransactionReport {
            total: 0.0,
            breakdown: PhaseBreakdown::default(),
            air_bytes_up: 0,
            air_bytes_down: 0,
            retransmissions: 0,
            energy_j: 0.0,
            success: false,
            failure: Some(reason.into()),
            outcome: None,
            attempts: 1,
        }
    }

    /// Total latency as a [`SimDuration`].
    pub fn latency(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total)
    }

    /// The rendered page text, when the transaction produced one.
    pub fn page_text(&self) -> Option<&str> {
        self.outcome.as_ref().map(|o| o.page_text.as_str())
    }

    /// Serialises the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_f64(&mut out, "total", self.total);
        json_f64(&mut out, "station_secs", self.breakdown.station_secs);
        json_f64(&mut out, "wireless_secs", self.breakdown.wireless_secs);
        json_f64(&mut out, "middleware_secs", self.breakdown.middleware_secs);
        json_f64(&mut out, "wired_secs", self.breakdown.wired_secs);
        json_f64(&mut out, "host_secs", self.breakdown.host_secs);
        json_raw(&mut out, "air_bytes_up", &self.air_bytes_up.to_string());
        json_raw(&mut out, "air_bytes_down", &self.air_bytes_down.to_string());
        json_raw(&mut out, "retransmissions", &self.retransmissions.to_string());
        json_f64(&mut out, "energy_j", self.energy_j);
        json_raw(&mut out, "attempts", &self.attempts.to_string());
        json_raw(&mut out, "success", if self.success { "true" } else { "false" });
        match &self.failure {
            Some(f) => json_str(&mut out, "failure", f),
            None => json_raw(&mut out, "failure", "null"),
        }
        match &self.outcome {
            Some(o) => {
                json_str(&mut out, "title", &o.title);
                json_raw(&mut out, "status", &o.status.code().to_string());
            }
            None => json_raw(&mut out, "status", "null"),
        }
        out.push('}');
        out
    }
}

fn to_ns(secs: f64) -> u64 {
    (secs * 1e9).round().max(0.0) as u64
}

/// Purely integral accumulator for transaction statistics.
///
/// Every field is a counter or an integral histogram, so
/// [`WorkloadCounters::merge`] is exactly associative and commutative —
/// two fleets that partition the same sessions differently produce
/// bit-identical merged counters. Latencies and energies are quantised
/// to nanoseconds / nanojoules on entry; the latency distribution is an
/// [`obs::Histogram`] (log-linear, 3% resolution — the bucketing shared
/// with the metrics registry) so percentiles survive merging.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadCounters {
    /// Transactions attempted.
    pub attempted: u64,
    /// Transactions completed.
    pub succeeded: u64,
    /// Sum of successful-transaction latencies, nanoseconds.
    pub latency_ns: u128,
    /// Sum of air bytes (up + down) over successes.
    pub air_bytes: u128,
    /// Sum of energy over successes, nanojoules.
    pub energy_nj: u128,
    /// Link-layer retransmissions over successes.
    pub retransmissions: u64,
    /// Transaction-level retries: exactly `Σ(attempts − 1)` over every
    /// recorded transaction, successes and failures alike (a failed
    /// transaction's spent retries still cost battery and airtime). A
    /// transaction that settles through the degraded fallback counts
    /// once here — as a retry, never as an extra attempted or succeeded
    /// transaction — and the sum equals the `policy.retries` obs
    /// counter over a traced run (both pinned by tests).
    pub retries: u64,
    /// Per-component latency sums over successes, nanoseconds, keyed
    /// `station` / `wireless` / `middleware` / `wired` / `host`.
    pub component_ns: BTreeMap<&'static str, u128>,
    /// Log-linear latency histogram (see [`obs::hist`]).
    pub latency_hist: obs::Histogram,
    /// Failure reason → count.
    pub failures: BTreeMap<String, u64>,
}

impl WorkloadCounters {
    /// Folds one transaction into the counters.
    pub fn record(&mut self, report: &TransactionReport) {
        self.attempted += 1;
        self.retries += report.attempts.saturating_sub(1) as u64;
        if !report.success {
            let reason = report.failure.clone().unwrap_or_else(|| "unknown".into());
            *self.failures.entry(reason).or_default() += 1;
            return;
        }
        self.succeeded += 1;
        let ns = to_ns(report.total);
        self.latency_ns += ns as u128;
        self.air_bytes += (report.air_bytes_up + report.air_bytes_down) as u128;
        self.energy_nj += to_ns(report.energy_j) as u128;
        self.retransmissions += report.retransmissions as u64;
        let b = &report.breakdown;
        for (key, secs) in [
            ("station", b.station_secs),
            ("wireless", b.wireless_secs),
            ("middleware", b.middleware_secs),
            ("wired", b.wired_secs),
            ("host", b.host_secs),
        ] {
            *self.component_ns.entry(key).or_default() += to_ns(secs) as u128;
        }
        self.latency_hist.record(ns);
    }

    /// Adds `other` into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &WorkloadCounters) {
        self.attempted += other.attempted;
        self.succeeded += other.succeeded;
        self.latency_ns += other.latency_ns;
        self.air_bytes += other.air_bytes;
        self.energy_nj += other.energy_nj;
        self.retransmissions += other.retransmissions;
        self.retries += other.retries;
        for (k, v) in &other.component_ns {
            *self.component_ns.entry(k).or_default() += v;
        }
        self.latency_hist.merge(&other.latency_hist);
        for (k, v) in &other.failures {
            *self.failures.entry(k.clone()).or_default() += v;
        }
    }

    /// Nearest-rank percentile of the latency distribution, seconds.
    /// Reports the lower bound of the bucket the rank falls in, so the
    /// value is within 3% below the true percentile.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.latency_hist.percentile(p) as f64 / 1e9
    }

    /// Derives the human-facing summary. A pure function of the counter
    /// state, so summaries of identically merged counters are identical.
    pub fn summary(&self, label: impl Into<String>) -> WorkloadSummary {
        let n = self.succeeded as f64;
        let total_component_ns: u128 = self.component_ns.values().sum();
        let mut component_shares = BTreeMap::new();
        for (k, v) in &self.component_ns {
            let share = if total_component_ns == 0 {
                0.0
            } else {
                *v as f64 / total_component_ns as f64
            };
            component_shares.insert((*k).to_owned(), share);
        }
        WorkloadSummary {
            label: label.into(),
            attempted: self.attempted as usize,
            succeeded: self.succeeded as usize,
            latency_mean: if n == 0.0 {
                0.0
            } else {
                self.latency_ns as f64 / n / 1e9
            },
            latency_p90: self.latency_percentile(90.0),
            air_bytes_mean: if n == 0.0 { 0.0 } else { self.air_bytes as f64 / n },
            energy_mean_j: if n == 0.0 {
                0.0
            } else {
                self.energy_nj as f64 / n / 1e9
            },
            component_shares,
            counters: self.clone(),
        }
    }
}

/// Aggregated results of a workload run.
///
/// All statistics are derived from the embedded [`WorkloadCounters`],
/// so two summaries are equal exactly when their counters are.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Label (application name, configuration, …).
    pub label: String,
    /// Transactions attempted.
    pub attempted: usize,
    /// Transactions completed.
    pub succeeded: usize,
    /// Mean latency over successful transactions (seconds).
    pub latency_mean: f64,
    /// 90th percentile latency (seconds, 3% histogram resolution).
    pub latency_p90: f64,
    /// Mean bytes over the air per transaction (up + down).
    pub air_bytes_mean: f64,
    /// Mean energy per transaction (joules).
    pub energy_mean_j: f64,
    /// Time-weighted per-component shares of latency.
    pub component_shares: BTreeMap<String, f64>,
    /// The mergeable accumulator every statistic above derives from.
    pub counters: WorkloadCounters,
}

impl WorkloadSummary {
    /// Aggregates a batch of reports under `label`.
    pub fn aggregate(label: impl Into<String>, reports: &[TransactionReport]) -> Self {
        let mut counters = WorkloadCounters::default();
        for r in reports {
            counters.record(r);
        }
        counters.summary(label)
    }

    /// Combines two summaries into one covering both workloads.
    ///
    /// Merging happens on the integral counters and the statistics are
    /// re-derived, so the operation is exact: any grouping or ordering
    /// of merges over the same transactions yields bit-identical
    /// summaries. The label of `self` is kept.
    pub fn merge(&self, other: &WorkloadSummary) -> WorkloadSummary {
        let mut counters = self.counters.clone();
        counters.merge(&other.counters);
        counters.summary(self.label.clone())
    }

    /// Success ratio (0..1).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }

    /// Serialises the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_str(&mut out, "label", &self.label);
        json_raw(&mut out, "attempted", &self.attempted.to_string());
        json_raw(&mut out, "succeeded", &self.succeeded.to_string());
        json_f64(&mut out, "latency_mean", self.latency_mean);
        json_f64(&mut out, "latency_p90", self.latency_p90);
        json_f64(&mut out, "air_bytes_mean", self.air_bytes_mean);
        json_f64(&mut out, "energy_mean_j", self.energy_mean_j);
        let shares: Vec<String> = self
            .component_shares
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string_value(k), json_f64_value(*v)))
            .collect();
        json_raw(
            &mut out,
            "component_shares",
            &format!("{{{}}}", shares.join(",")),
        );
        out.push('}');
        out
    }
}

fn json_string_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64_value(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

fn json_entry(out: &mut String, key: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push_str(&json_string_value(key));
    out.push(':');
}

fn json_raw(out: &mut String, key: &str, value: &str) {
    json_entry(out, key);
    out.push_str(value);
}

fn json_str(out: &mut String, key: &str, value: &str) {
    json_entry(out, key);
    out.push_str(&json_string_value(value));
}

fn json_f64(out: &mut String, key: &str, value: f64) {
    json_entry(out, key);
    out.push_str(&json_f64_value(value));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: f64, host: f64, wireless: f64) -> TransactionReport {
        TransactionReport {
            total,
            breakdown: PhaseBreakdown {
                host_secs: host,
                wireless_secs: wireless,
                ..Default::default()
            },
            air_bytes_up: 100,
            air_bytes_down: 900,
            retransmissions: 0,
            energy_j: 0.01,
            success: true,
            failure: None,
            outcome: Some(TransactionOutcome {
                page_text: "ok".into(),
                title: "Page".into(),
                status: Status::Ok,
            }),
            attempts: 1,
        }
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let b = PhaseBreakdown {
            station_secs: 0.1,
            wireless_secs: 0.2,
            middleware_secs: 0.3,
            wired_secs: 0.25,
            host_secs: 0.15,
        };
        let sum: f64 = ["station", "wireless", "middleware", "wired", "host"]
            .iter()
            .map(|c| b.share(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((b.total_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = PhaseBreakdown::default();
        assert_eq!(b.share("host"), 0.0);
        assert_eq!(b.share("unknown"), 0.0);
    }

    #[test]
    fn aggregate_counts_and_averages() {
        let reports = vec![
            report(1.0, 0.6, 0.4),
            report(3.0, 1.8, 1.2),
            TransactionReport::failed("battery died"),
        ];
        let summary = WorkloadSummary::aggregate("test", &reports);
        assert_eq!(summary.attempted, 3);
        assert_eq!(summary.succeeded, 2);
        assert!((summary.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.latency_mean - 2.0).abs() < 1e-12);
        assert!((summary.air_bytes_mean - 1000.0).abs() < 1e-12);
        assert!((summary.component_shares["host"] - 0.6).abs() < 1e-12);
        assert!((summary.component_shares["wireless"] - 0.4).abs() < 1e-12);
        assert_eq!(summary.counters.failures["battery died"], 1);
    }

    #[test]
    fn all_failed_workload_is_zeroes_not_nan() {
        let summary = WorkloadSummary::aggregate("dead", &[TransactionReport::failed("no signal")]);
        assert_eq!(summary.succeeded, 0);
        assert_eq!(summary.latency_mean, 0.0);
        assert_eq!(summary.success_rate(), 0.0);
    }

    #[test]
    fn merge_is_grouping_invariant() {
        let reports: Vec<TransactionReport> = (0..30)
            .map(|i| report(0.1 + i as f64 * 0.07, 0.02, 0.01 + i as f64 * 0.001))
            .collect();
        let whole = WorkloadSummary::aggregate("w", &reports);
        let halves = WorkloadSummary::aggregate("w", &reports[..15])
            .merge(&WorkloadSummary::aggregate("w", &reports[15..]));
        let thirds = WorkloadSummary::aggregate("w", &reports[..10])
            .merge(&WorkloadSummary::aggregate("w", &reports[10..20]))
            .merge(&WorkloadSummary::aggregate("w", &reports[20..]));
        assert_eq!(whole, halves);
        assert_eq!(whole, thirds);
    }

    #[test]
    fn percentiles_survive_merging_within_resolution() {
        let reports: Vec<TransactionReport> =
            (1..=100).map(|i| report(i as f64 * 0.01, 0.0, 0.01)).collect();
        let summary = WorkloadSummary::aggregate("p", &reports);
        // True p90 is 0.90s; histogram reports the bucket lower bound.
        assert!(summary.latency_p90 <= 0.90 + 1e-9, "{}", summary.latency_p90);
        assert!(summary.latency_p90 >= 0.90 * (1.0 - 1.0 / 32.0), "{}", summary.latency_p90);
    }

    #[test]
    fn latency_histogram_uses_the_shared_obs_bucketing() {
        // The extraction into obs::hist must not have changed resolution:
        // one recorded latency lands in exactly the bucket obs computes.
        let mut counters = WorkloadCounters::default();
        counters.record(&report(1.5, 0.5, 0.5));
        let ns = to_ns(1.5);
        assert_eq!(
            counters.latency_hist.raw_buckets().keys().copied().collect::<Vec<_>>(),
            vec![crate::hist::bucket(ns)]
        );
        assert_eq!(counters.latency_hist.count(), 1);
    }

    #[test]
    fn retry_counter_algebra_is_pinned() {
        // A retried success (attempts = 2, e.g. one degraded-fallback
        // swap) folds into ONE attempted transaction, one success and
        // exactly one retry — never a double count.
        let mut swapped = report(1.0, 0.5, 0.5);
        swapped.attempts = 2;
        // A transaction that exhausted three attempts and still failed:
        // one attempted, one failure, two retries.
        let mut exhausted = TransactionReport::failed("wireless outage (handoff in progress)");
        exhausted.attempts = 3;
        let mut counters = WorkloadCounters::default();
        counters.record(&swapped);
        counters.record(&exhausted);
        counters.record(&report(1.0, 0.5, 0.5)); // plain first-try success
        assert_eq!(counters.attempted, 3);
        assert_eq!(counters.succeeded, 2);
        assert_eq!(counters.retries, (2 - 1) + (3 - 1));
        // Attempted always partitions into successes and failures.
        let failures: u64 = counters.failures.values().sum();
        assert_eq!(counters.attempted, counters.succeeded + failures);
    }

    #[test]
    fn reports_serialise_to_json() {
        let r = report(1.0, 0.5, 0.5);
        let json = r.to_json();
        assert!(json.contains("\"success\":true"), "{json}");
        assert!(json.contains("\"status\":200"), "{json}");
        let s = WorkloadSummary::aggregate("x", &[r]);
        assert!(s.to_json().contains("\"label\":\"x\""));
    }
}
