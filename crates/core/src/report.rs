//! Transaction reports and workload aggregation.

use std::collections::BTreeMap;

use serde::Serialize;
use simnet::stats::Sampler;
use simnet::SimDuration;

/// Latency attributed to each of the system's components — the
/// per-component breakdown that makes Figures 1 and 2 measurable.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PhaseBreakdown {
    /// CPU time on the mobile station (or desktop client): request
    /// construction, parsing, rendering.
    pub station_secs: f64,
    /// Time on the wireless hop (both directions, incl. session setup).
    pub wireless_secs: f64,
    /// CPU time in the middleware layer (translation, encoding).
    pub middleware_secs: f64,
    /// Time on the wired network (both directions).
    pub wired_secs: f64,
    /// CPU time on the host computer.
    pub host_secs: f64,
}

impl PhaseBreakdown {
    /// Sum of all components.
    pub fn total_secs(&self) -> f64 {
        self.station_secs
            + self.wireless_secs
            + self.middleware_secs
            + self.wired_secs
            + self.host_secs
    }

    /// The share (0..1) a component contributes; keys: `station`,
    /// `wireless`, `middleware`, `wired`, `host`.
    pub fn share(&self, component: &str) -> f64 {
        let total = self.total_secs();
        if total == 0.0 {
            return 0.0;
        }
        let value = match component {
            "station" => self.station_secs,
            "wireless" => self.wireless_secs,
            "middleware" => self.middleware_secs,
            "wired" => self.wired_secs,
            "host" => self.host_secs,
            _ => 0.0,
        };
        value / total
    }
}

/// The outcome of one end-to-end transaction (one request/response plus
/// rendering).
#[derive(Debug, Clone, Serialize)]
pub struct TransactionReport {
    /// Wall-clock latency of the whole transaction.
    pub total: f64,
    /// Per-component latency breakdown (seconds).
    pub breakdown: PhaseBreakdown,
    /// Bytes over the air, station → network.
    pub air_bytes_up: u64,
    /// Bytes over the air, network → station.
    pub air_bytes_down: u64,
    /// Link-layer retransmissions on the air hop.
    pub retransmissions: u32,
    /// Battery energy consumed, joules.
    pub energy_j: f64,
    /// Whether the transaction completed.
    pub success: bool,
    /// Failure description when `success` is false.
    pub failure: Option<String>,
}

impl TransactionReport {
    /// A failed transaction with the given reason and whatever costs were
    /// already paid.
    pub fn failed(reason: impl Into<String>) -> Self {
        TransactionReport {
            total: 0.0,
            breakdown: PhaseBreakdown::default(),
            air_bytes_up: 0,
            air_bytes_down: 0,
            retransmissions: 0,
            energy_j: 0.0,
            success: false,
            failure: Some(reason.into()),
        }
    }

    /// Total latency as a [`SimDuration`].
    pub fn latency(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total)
    }
}

/// Aggregated results of a workload run.
#[derive(Debug, Serialize)]
pub struct WorkloadSummary {
    /// Label (application name, configuration, …).
    pub label: String,
    /// Transactions attempted.
    pub attempted: usize,
    /// Transactions completed.
    pub succeeded: usize,
    /// Latency stats over successful transactions (seconds).
    pub latency_mean: f64,
    /// 90th percentile latency (seconds).
    pub latency_p90: f64,
    /// Mean bytes over the air per transaction (up + down).
    pub air_bytes_mean: f64,
    /// Mean energy per transaction (joules).
    pub energy_mean_j: f64,
    /// Mean per-component shares of latency.
    pub component_shares: BTreeMap<String, f64>,
}

impl WorkloadSummary {
    /// Aggregates a batch of reports under `label`.
    pub fn aggregate(label: impl Into<String>, reports: &[TransactionReport]) -> Self {
        let latencies = Sampler::new();
        let air = Sampler::new();
        let energy = Sampler::new();
        let mut shares: BTreeMap<String, f64> = BTreeMap::new();
        let mut succeeded = 0usize;
        for r in reports.iter().filter(|r| r.success) {
            succeeded += 1;
            latencies.record(r.total);
            air.record((r.air_bytes_up + r.air_bytes_down) as f64);
            energy.record(r.energy_j);
            for key in ["station", "wireless", "middleware", "wired", "host"] {
                *shares.entry(key.to_owned()).or_default() += r.breakdown.share(key);
            }
        }
        if succeeded > 0 {
            for v in shares.values_mut() {
                *v /= succeeded as f64;
            }
        }
        let lat = latencies.summary();
        WorkloadSummary {
            label: label.into(),
            attempted: reports.len(),
            succeeded,
            latency_mean: lat.mean,
            latency_p90: lat.p90,
            air_bytes_mean: air.summary().mean,
            energy_mean_j: energy.summary().mean,
            component_shares: shares,
        }
    }

    /// Success ratio (0..1).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: f64, host: f64, wireless: f64) -> TransactionReport {
        TransactionReport {
            total,
            breakdown: PhaseBreakdown {
                host_secs: host,
                wireless_secs: wireless,
                ..Default::default()
            },
            air_bytes_up: 100,
            air_bytes_down: 900,
            retransmissions: 0,
            energy_j: 0.01,
            success: true,
            failure: None,
        }
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let b = PhaseBreakdown {
            station_secs: 0.1,
            wireless_secs: 0.2,
            middleware_secs: 0.3,
            wired_secs: 0.25,
            host_secs: 0.15,
        };
        let sum: f64 = ["station", "wireless", "middleware", "wired", "host"]
            .iter()
            .map(|c| b.share(c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((b.total_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = PhaseBreakdown::default();
        assert_eq!(b.share("host"), 0.0);
        assert_eq!(b.share("unknown"), 0.0);
    }

    #[test]
    fn aggregate_counts_and_averages() {
        let reports = vec![
            report(1.0, 0.6, 0.4),
            report(3.0, 1.8, 1.2),
            TransactionReport::failed("battery died"),
        ];
        let summary = WorkloadSummary::aggregate("test", &reports);
        assert_eq!(summary.attempted, 3);
        assert_eq!(summary.succeeded, 2);
        assert!((summary.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.latency_mean - 2.0).abs() < 1e-12);
        assert!((summary.air_bytes_mean - 1000.0).abs() < 1e-12);
        assert!((summary.component_shares["host"] - 0.6).abs() < 1e-12);
        assert!((summary.component_shares["wireless"] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_failed_workload_is_zeroes_not_nan() {
        let summary = WorkloadSummary::aggregate("dead", &[TransactionReport::failed("no signal")]);
        assert_eq!(summary.succeeded, 0);
        assert_eq!(summary.latency_mean, 0.0);
        assert_eq!(summary.success_rate(), 0.0);
    }

    #[test]
    fn reports_serialise_to_json() {
        let r = report(1.0, 0.5, 0.5);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"success\":true"));
        let s = WorkloadSummary::aggregate("x", &[r]);
        assert!(serde_json::to_string(&s)
            .unwrap()
            .contains("\"label\":\"x\""));
    }
}
