//! The assembled systems: Figure 2's six-component MC system and
//! Figure 1's four-component EC baseline.
//!
//! A transaction flows exactly along the figures' arrows: user →
//! station/client → (middleware → wireless, MC only) → wired network →
//! host computer and back, with every hop charging latency, bytes and —
//! on the mobile side — battery energy. The per-component breakdown in
//! each [`TransactionReport`] is the executable counterpart of the
//! figures' block diagrams.

use middleware::{AirFormat, ContentCache, Exchange, Middleware, MobileRequest};

use faults::{classify, FailureClass, FaultKind, FaultPlan, FaultState, RetryPolicy};
use hostsite::db::DurabilityPolicy;
use hostsite::HostComputer;
use obs::{Layer, Recorder};
use rand::rngs::StdRng;
use simnet::rng::rng_for;
use simnet::SimDuration;
use station::browser::ContentKind;
use station::{Battery, DeviceProfile, EmbeddedStore, Microbrowser, RenderMemo, RenderedView};
use std::cell::RefCell;
use std::rc::Rc;

use crate::netpath::{AirLink, WiredPath, WirelessConfig};
use crate::report::{PhaseBreakdown, TransactionOutcome, TransactionReport};

/// Active CPU power draw of a handheld, watts (scaled by OS factor).
const STATION_ACTIVE_W: f64 = 0.35;

/// CPU time a handheld spends sealing/opening one WTLS record per
/// kilobyte of payload, on a 100 MHz reference clock.
const WTLS_CPU_PER_KB: SimDuration = SimDuration::from_micros(400);

/// Sim time a station burns probing a dark access point before giving
/// up on the transaction (the failed-attempt cost of a wireless outage).
const OUTAGE_PROBE: SimDuration = SimDuration::from_millis(500);

/// Sim time a request burns discovering the host is still replaying its
/// journal (connection accepted, service refused).
const HOST_PROBE: SimDuration = SimDuration::from_millis(200);

/// Fixed cost of a host database crash: process restart before journal
/// replay begins.
const DB_RECOVERY_BASE: SimDuration = SimDuration::from_secs(2);

/// Journal replay cost per committed entry during crash recovery.
const DB_RECOVERY_PER_ENTRY: SimDuration = SimDuration::from_millis(5);

/// Host outage after a database crash: restart, replay of the durable
/// journal, and — under a priced [`DurabilityPolicy`] — the
/// fsync-equivalents of re-grouping `replayed` entries into commit
/// batches. The zero-cost default adds nothing over base + per-entry.
pub fn db_recovery_outage_ns(replayed: u64, policy: DurabilityPolicy) -> u64 {
    DB_RECOVERY_BASE
        .as_nanos()
        .saturating_add(DB_RECOVERY_PER_ENTRY.as_nanos().saturating_mul(replayed))
        .saturating_add(
            policy
                .fsync_ns
                .saturating_mul(policy.fsync_equivalents(replayed)),
        )
}

/// Anything that can execute a commerce transaction end to end.
pub trait CommerceSystem {
    /// A label describing the configuration, for reports.
    fn label(&self) -> String;

    /// Executes one request/response transaction.
    fn execute(&mut self, req: &MobileRequest) -> TransactionReport;

    /// The host computer, for application installation.
    fn host_mut(&mut self) -> &mut HostComputer;

}

/// Declarative selection of the middleware component — the WAP gateway
/// or the i-mode service — so a configuration can be described as plain
/// data (and sent across threads) instead of a `Box<dyn Middleware>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MiddlewareKind {
    /// WAP gateway with binary WML encoding (the standard deployment).
    #[default]
    Wap,
    /// WAP gateway shipping textual WML (binary encoder disabled).
    WapTextual,
    /// NTT DoCoMo i-mode service (cHTML pass-through).
    IMode,
}

impl MiddlewareKind {
    /// Every middleware kind, for exhaustive sweeps.
    pub const ALL: [MiddlewareKind; 3] =
        [MiddlewareKind::Wap, MiddlewareKind::WapTextual, MiddlewareKind::IMode];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MiddlewareKind::Wap => "WAP",
            MiddlewareKind::WapTextual => "WAP (textual WML)",
            MiddlewareKind::IMode => "i-mode",
        }
    }

    /// Instantiates the middleware component this kind describes.
    pub fn build(self) -> Box<dyn Middleware> {
        match self {
            MiddlewareKind::Wap => Box::new(middleware::WapGateway::default()),
            MiddlewareKind::WapTextual => {
                Box::new(middleware::WapGateway::without_binary_encoding())
            }
            MiddlewareKind::IMode => Box::new(middleware::IModeService::new()),
        }
    }
}

impl std::fmt::Display for MiddlewareKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative configuration of the deterministic caching hierarchy
/// (DESIGN.md §2.14): the middleware gateway's content cache, the host
/// web server's page cache, and the host database's query cache.
///
/// The default policy is fully disabled, and a system carrying it
/// executes the exact pre-cache path bit for bit. Every knob is in
/// simulated time or plain bytes — never wall clock — so cached fleets
/// stay bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Master switch. Off ⇒ no cache exists at any layer and no cache
    /// metrics are emitted.
    pub enabled: bool,
    /// TTL of the host web server's page cache, sim time. Zero keeps
    /// the page cache off even when `enabled` is set.
    pub host_ttl: SimDuration,
    /// TTL of the middleware gateway's content cache, sim time. Zero
    /// keeps the gateway cache off even when `enabled` is set.
    pub gateway_ttl: SimDuration,
    /// Byte budget each cache layer may hold before LRU eviction.
    pub byte_budget: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy::disabled()
    }
}

impl CachePolicy {
    /// No caching anywhere — the exact pre-cache execution path.
    #[must_use]
    pub fn disabled() -> Self {
        CachePolicy {
            enabled: false,
            host_ttl: SimDuration::ZERO,
            gateway_ttl: SimDuration::ZERO,
            byte_budget: 0,
        }
    }

    /// Workshop defaults: 30 s sim-time TTL at both layers, 256 KiB
    /// per layer, everything on.
    #[must_use]
    pub fn standard() -> Self {
        CachePolicy {
            enabled: true,
            host_ttl: SimDuration::from_secs(30),
            gateway_ttl: SimDuration::from_secs(30),
            byte_budget: 256 * 1024,
        }
    }

    /// Sets both TTLs at once (builder style).
    #[must_use]
    pub fn ttl(mut self, ttl: SimDuration) -> Self {
        self.host_ttl = ttl;
        self.gateway_ttl = ttl;
        self
    }
}

/// A typed, declarative description of every knob an [`McSystem`] is
/// assembled from — the replacement for `McSystem::new`'s positional
/// argument list.
///
/// A `SystemSpec` is plain data (`Clone + Send + Sync`); calling
/// [`SystemSpec::build`] with a provisioned [`HostComputer`] produces
/// the live system with security and caching already applied. The fleet
/// engine builds every per-user system through this type, so a
/// hand-assembled system and a fleet user with the same spec are the
/// same machine.
///
/// ```
/// use mcommerce_core::{MiddlewareKind, SystemSpec};
/// use hostsite::{db::Database, HostComputer};
///
/// let spec = SystemSpec::new()
///     .middleware(MiddlewareKind::IMode)
///     .seed(7)
///     .secure(true);
/// let system = spec.build(HostComputer::new(Database::new(), 7));
/// assert!(system.is_secure());
/// ```
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// The middleware component (component iii).
    pub middleware: MiddlewareKind,
    /// The handset (component ii).
    pub device: DeviceProfile,
    /// The wireless network (component iv).
    pub wireless: WirelessConfig,
    /// The wired path to the host (component v).
    pub wired: WiredPath,
    /// Seed for the system's air-link randomness.
    pub seed: u64,
    /// Whether WTLS-style transport security is on (§8).
    pub secure: bool,
    /// The caching-hierarchy policy (DESIGN.md §2.14).
    pub cache: CachePolicy,
    /// The host database's durability policy (DESIGN.md §2.18). The
    /// default (batch 1, free fsync) is byte-identical to an unpriced
    /// journal.
    pub durability: DurabilityPolicy,
}

impl Default for SystemSpec {
    fn default() -> Self {
        SystemSpec::new()
    }
}

impl SystemSpec {
    /// Workshop defaults: WAP gateway, iPAQ H3870, 802.11b at 20 m, WAN
    /// wired path, seed 1, security off, caches off.
    #[must_use]
    pub fn new() -> Self {
        SystemSpec {
            middleware: MiddlewareKind::Wap,
            device: DeviceProfile::ipaq_h3870(),
            wireless: WirelessConfig::Wlan {
                standard: wireless::WlanStandard::Dot11b,
                distance_m: 20.0,
            },
            wired: WiredPath::wan(),
            seed: 1,
            secure: false,
            cache: CachePolicy::disabled(),
            durability: DurabilityPolicy::default(),
        }
    }

    /// Sets the middleware kind.
    #[must_use]
    pub fn middleware(mut self, kind: MiddlewareKind) -> Self {
        self.middleware = kind;
        self
    }

    /// Sets the device profile.
    #[must_use]
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Sets the wireless configuration.
    #[must_use]
    pub fn wireless(mut self, wireless: WirelessConfig) -> Self {
        self.wireless = wireless;
        self
    }

    /// Sets the wired path.
    #[must_use]
    pub fn wired(mut self, wired: WiredPath) -> Self {
        self.wired = wired;
        self
    }

    /// Sets the air-link seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turns WTLS-style security on or off.
    #[must_use]
    pub fn secure(mut self, secure: bool) -> Self {
        self.secure = secure;
        self
    }

    /// Sets the cache policy applied at build time.
    #[must_use]
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Sets the host database's durability policy.
    #[must_use]
    pub fn durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Assembles the live system around `host` (which should already
    /// have its application programs installed).
    pub fn build(&self, host: HostComputer) -> McSystem {
        let mut system = McSystem::assemble(
            host,
            self.middleware.build(),
            self.device.clone(),
            self.wireless,
            self.wired,
            self.seed,
        );
        system.set_secure(self.secure);
        if self.cache.enabled {
            system.set_cache_policy(self.cache);
        }
        // Seed rows written before build() committed under the default
        // policy and are already durable; only new commits batch.
        system.host.web.db_mut().set_durability(self.durability);
        system
    }
}

/// The mobile station's aggregate state inside an [`McSystem`].
#[derive(Debug)]
pub struct StationState {
    /// The microbrowser (owns the device profile and cookie jar).
    pub browser: Microbrowser,
    /// The battery.
    pub battery: Battery,
    /// The on-device embedded store (§7's embedded database).
    pub store: EmbeddedStore,
}

impl StationState {
    /// Builds station state for a device with a store budget of 64 KB.
    pub fn new(device: DeviceProfile) -> Self {
        let battery = Battery::new(device.battery_j);
        StationState {
            browser: Microbrowser::new(device),
            battery,
            store: EmbeddedStore::new(64 * 1024),
        }
    }
}

/// The six-component mobile commerce system (Figure 2).
pub struct McSystem {
    /// Component (vi): the host computer.
    pub host: HostComputer,
    /// Component (iii): the mobile middleware.
    pub middleware: Box<dyn Middleware>,
    /// Component (ii): the mobile station.
    pub station: StationState,
    wireless: WirelessConfig,
    air: Option<AirLink>,
    wired: WiredPath,
    session_up: bool,
    secure: bool,
    wtls_established: bool,
    rng: StdRng,
    last_outcome: Option<TransactionOutcome>,
    /// Observability sink. `Recorder::Disabled` (the default) skips all
    /// recording; a ring recorder captures per-layer spans in simulated
    /// time and dumps failing transactions.
    recorder: Recorder,
    /// This station's simulated clock, nanoseconds: transactions and
    /// idle time advance it, so spans line up on one per-user timeline.
    clock_ns: u64,
    /// Transactions executed so far (the next transaction's id).
    txn_seq: u64,
    /// The injected-fault schedule, evaluated against `clock_ns`. The
    /// default empty plan is checked with pure clock comparisons and
    /// draws no randomness, so a plan-free system is bit-identical to
    /// one carrying `FaultPlan::none()`.
    faults: FaultPlan,
    /// Cursor over the plan's one-shot faults.
    fault_state: FaultState,
    /// Whether the middleware has been swapped to its degraded fallback.
    middleware_degraded: bool,
    /// The fallback middleware to swap in on gateway/transcoder faults.
    fallback_kind: Option<MiddlewareKind>,
    /// The primary middleware, parked while the fallback serves.
    degraded_primary: Option<Box<dyn Middleware>>,
    /// Until this instant the host refuses service (journal replay).
    host_recovering_until_ns: u64,
    /// WAL fsync nanoseconds inside the last transaction's host share —
    /// the slice the shared-world engine serializes on the log, not the
    /// CPU. Zero under the default free-durability policy.
    last_commit_ns: u64,
    /// The caching hierarchy's configuration (disabled by default).
    cache: CachePolicy,
    /// The gateway content cache, present iff the policy enables it.
    gateway_cache: Option<ContentCache>,
    /// Shard-local render memo (fleet engine only): replays pure
    /// browser renders of repeated payloads across this shard's users.
    render_memo: Option<Rc<RefCell<RenderMemo>>>,
}

impl std::fmt::Debug for McSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McSystem")
            .field("middleware", &self.middleware.name())
            .field("wireless", &self.wireless.name())
            .field("device", &self.station.browser.device().name)
            .finish()
    }
}

impl McSystem {
    /// The one true constructor, reached through [`SystemSpec::build`]
    /// (the positional `McSystem::new` was removed in 0.3.0).
    fn assemble(
        host: HostComputer,
        middleware: Box<dyn Middleware>,
        device: DeviceProfile,
        wireless: WirelessConfig,
        wired: WiredPath,
        seed: u64,
    ) -> Self {
        let air = wireless.air_link();
        McSystem {
            host,
            middleware,
            station: StationState::new(device),
            wireless,
            air,
            wired,
            session_up: false,
            secure: false,
            wtls_established: false,
            rng: rng_for(seed, "mcsystem.air"),
            last_outcome: None,
            recorder: Recorder::Disabled,
            clock_ns: 0,
            txn_seq: 0,
            faults: FaultPlan::none(),
            fault_state: FaultState::default(),
            middleware_degraded: false,
            fallback_kind: None,
            degraded_primary: None,
            host_recovering_until_ns: 0,
            last_commit_ns: 0,
            cache: CachePolicy::disabled(),
            gateway_cache: None,
            render_memo: None,
        }
    }

    /// Attaches the shard-local memos of a fleet shard: the middleware's
    /// transcode memo and the station's render memo. Both cache *pure*
    /// functions of the payload bytes, so an attached system executes
    /// bit-for-bit the same transactions as a bare one — the fleet
    /// engine attaches fresh memos per shard (never across threads) and
    /// resets nothing between users because there is nothing stateful to
    /// reset.
    pub fn attach_shard_memos(
        &mut self,
        transcode: middleware::SharedTranscodeMemo,
        render: Rc<RefCell<RenderMemo>>,
    ) {
        self.middleware.attach_transcode_memo(transcode);
        self.render_memo = Some(render);
    }

    /// Applies a cache policy across the hierarchy: (re)builds the
    /// gateway content cache and configures the host's page and query
    /// caches. Replacing the policy drops anything previously cached.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        self.cache = policy;
        self.gateway_cache = if policy.enabled && policy.gateway_ttl > SimDuration::ZERO {
            Some(ContentCache::new(
                policy.gateway_ttl.as_nanos(),
                policy.byte_budget,
            ))
        } else {
            None
        };
        if policy.enabled && policy.host_ttl > SimDuration::ZERO {
            self.host
                .web
                .configure_page_cache(policy.host_ttl.as_nanos(), policy.byte_budget);
        } else {
            self.host.web.disable_page_cache();
        }
        self.host.web.db_mut().set_query_cache(policy.enabled);
    }

    /// The cache policy in force (disabled by default).
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache
    }

    /// Swaps this system's gateway content cache with `slot`.
    ///
    /// The shared-world fleet engine parks each user's private cache and
    /// swaps the *shared* per-gateway cache in around every transaction,
    /// so one population behind one gateway shares one deck store.
    pub(crate) fn swap_gateway_cache(&mut self, slot: &mut Option<ContentCache>) {
        std::mem::swap(&mut self.gateway_cache, slot);
    }

    /// Installs an observability sink. The default is
    /// [`Recorder::Disabled`], which records nothing and costs nothing.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Removes and returns the observability sink (leaving `Disabled`),
    /// so a runner can export or inspect the recorded trace.
    pub fn take_recorder(&mut self) -> Recorder {
        std::mem::take(&mut self.recorder)
    }

    /// The station's simulated clock: total simulated time this system
    /// has spent executing transactions and idling, nanoseconds.
    pub fn sim_clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Enables WTLS-style transport security (§8): a one-time handshake
    /// plus per-exchange record overhead (bytes on the air, CPU on the
    /// handset). Disabled by default so experiments can measure its cost.
    pub fn set_secure(&mut self, secure: bool) {
        self.secure = secure;
        if !secure {
            self.wtls_established = false;
        }
    }

    /// Whether WTLS-style security is enabled.
    pub fn is_secure(&self) -> bool {
        self.secure
    }

    /// Lets `secs` of user think-time pass: the station idles, drawing
    /// battery at the device/OS idle power (§4.1's battery-life lever).
    /// Returns `false` once the battery is exhausted.
    pub fn idle(&mut self, secs: f64) -> bool {
        self.clock_ns = self.clock_ns.saturating_add(secs_to_ns(secs));
        let watts = self.station.browser.device().idle_power_w();
        self.station.battery.drain(watts * secs)
    }

    /// The wireless configuration in use.
    pub fn wireless(&self) -> WirelessConfig {
        self.wireless
    }

    /// Swaps the wireless network under the running system (used by the
    /// program/data-independence experiment: requirement 5 of §1.1).
    pub fn set_wireless(&mut self, wireless: WirelessConfig) {
        self.wireless = wireless;
        self.air = wireless.air_link();
        self.session_up = false;
        self.wtls_established = false;
    }

    /// Swaps the middleware under the running system (requirement 5).
    pub fn set_middleware(&mut self, middleware: Box<dyn Middleware>) {
        self.middleware = middleware;
        self.session_up = false;
    }

    /// Installs a fault schedule, evaluated against this station's sim
    /// clock. Replacing the plan resets the one-shot cursor.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_state = plan.state();
        self.faults = plan;
    }

    /// The installed fault schedule (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Selects the middleware kind [`execute_with_retry`] swaps in when
    /// the primary path degrades (gateway outage, wedged transcoder).
    ///
    /// [`execute_with_retry`]: McSystem::execute_with_retry
    pub fn set_fallback_middleware(&mut self, kind: Option<MiddlewareKind>) {
        self.fallback_kind = kind;
    }

    /// Whether the system is currently serving through its fallback
    /// middleware.
    pub fn is_middleware_degraded(&self) -> bool {
        self.middleware_degraded
    }

    /// Fires every one-shot fault due at `now_ns`: battery drains hit
    /// the battery, database crashes restart the host and open a
    /// recovery window proportional to the replayed journal.
    fn apply_due_oneshots(&mut self, now_ns: u64) {
        if self.faults.is_empty() {
            return;
        }
        let due: Vec<FaultKind> = self
            .faults
            .oneshots_due(&mut self.fault_state, now_ns)
            .iter()
            .map(|e| e.kind)
            .collect();
        for kind in due {
            match kind {
                FaultKind::BatteryDrain { joules } => {
                    let _ = self.station.battery.drain(joules);
                    self.recorder
                        .instant(now_ns, Layer::Station, "fault: battery drain", self.txn_seq);
                }
                FaultKind::DbCrash => {
                    let policy = self.host.web.db().durability();
                    let replayed = self.host.web.crash_and_recover_db().map_or(0, |n| n as u64);
                    let recovery = db_recovery_outage_ns(replayed, policy);
                    self.host_recovering_until_ns = self
                        .host_recovering_until_ns
                        .max(now_ns.saturating_add(recovery));
                    self.recorder
                        .instant(now_ns, Layer::Host, "fault: db crash, replaying journal", self.txn_seq);
                }
                _ => {}
            }
        }
    }

    /// WAL fsync nanoseconds charged inside the last transaction's host
    /// share. The shared-world engine pulls this out of the host-CPU
    /// lane and serializes it on the log instead.
    pub fn last_commit_ns(&self) -> u64 {
        self.last_commit_ns
    }

    fn content_kind(format: AirFormat) -> ContentKind {
        match format {
            AirFormat::WmlBinary => ContentKind::WmlBinary,
            AirFormat::WmlText => ContentKind::Wml,
            AirFormat::Chtml => ContentKind::Chtml,
            AirFormat::Html => ContentKind::Html,
        }
    }
}

impl CommerceSystem for McSystem {
    fn label(&self) -> String {
        format!(
            "MC[{} / {} / {}]",
            self.middleware.name(),
            self.wireless.name(),
            self.station.browser.device().name
        )
    }

    fn execute(&mut self, req: &MobileRequest) -> TransactionReport {
        let t0 = self.clock_ns;
        // A gateway-cache hit never reaches the host, so the stale WAL
        // share from the previous transaction must not leak into it.
        self.last_commit_ns = 0;
        // One-shot faults due by now (battery drains, host crashes)
        // strike before the transaction leaves the station.
        self.apply_due_oneshots(t0);
        let txn = self.txn_seq;
        self.txn_seq += 1;
        let mut cursor = t0;

        let Some(mut air) = self.air else {
            let reason = format!("no coverage on {}", self.wireless.name());
            obs::metrics::incr("station.txn_failures");
            self.recorder.instant_dyn(cursor, Layer::Wireless, &reason, txn);
            self.recorder.dump_failure(txn, &reason, Layer::Wireless);
            return TransactionReport::failed(reason);
        };
        if self.station.battery.is_exhausted() {
            obs::metrics::incr("station.txn_failures");
            self.recorder
                .instant(cursor, Layer::Station, "battery exhausted", txn);
            self.recorder
                .dump_failure(txn, "battery exhausted", Layer::Station);
            return TransactionReport::failed("battery exhausted");
        }

        // Injected wireless outage: the AP is dark. The station probes,
        // loses its session (forced handoff), and gives up — a retry
        // policy can come back once the window passes.
        if self.faults.outage_active(t0) {
            let reason = "wireless outage (handoff in progress)";
            self.session_up = false;
            self.wtls_established = false;
            let probe_secs = OUTAGE_PROBE.as_secs_f64();
            let probe_energy = self.station.browser.device().idle_power_w() * probe_secs;
            let _ = self.station.battery.drain(probe_energy);
            cursor += OUTAGE_PROBE.as_nanos();
            self.fail_txn(txn, cursor, reason, Layer::Wireless);
            let mut report = TransactionReport::failed(reason);
            report.total = probe_secs;
            report.breakdown.wireless_secs = probe_secs;
            report.energy_j = probe_energy;
            return report;
        }

        // Host still replaying its journal after an injected crash: the
        // connection is accepted but service refused.
        if t0 < self.host_recovering_until_ns {
            let reason = "host database recovering after crash";
            let probe_secs = HOST_PROBE.as_secs_f64();
            cursor += HOST_PROBE.as_nanos();
            self.fail_txn(txn, cursor, reason, Layer::Host);
            let mut report = TransactionReport::failed(reason);
            report.total = probe_secs;
            report.breakdown.wired_secs = probe_secs;
            return report;
        }

        // A loss burst raises the air link's BER for this transaction
        // (the `air` binding is a copy — the baseline link is untouched).
        if let Some(burst) = self.faults.burst_ber(t0) {
            air.ber = air.ber.max(burst);
        }

        obs::metrics::incr("station.transactions");

        let mut breakdown = PhaseBreakdown::default();
        let mut energy = 0.0f64;

        // Station attaches its cookie jar to the outgoing request. An
        // empty jar (the common fleet steady state) borrows the caller's
        // request instead of cloning it.
        let req_with_cookies;
        let req: &MobileRequest = if self.station.browser.cookies().is_empty() {
            req
        } else {
            let mut owned = req.clone();
            for (k, v) in self.station.browser.cookies() {
                owned.cookies.push((k.clone(), v.clone()));
            }
            req_with_cookies = owned;
            &req_with_cookies
        };

        // One-time wireless session establishment (circuit dial-up or
        // packet context activation).
        if !self.session_up {
            breakdown.wireless_secs += air.session_setup.as_secs_f64();
            self.recorder.span(
                cursor,
                air.session_setup.as_nanos(),
                Layer::Wireless,
                "session_setup",
                txn,
            );
            cursor += air.session_setup.as_nanos();
            self.session_up = true;
        }

        // WTLS handshake on first secure contact: two hello flights over
        // the air plus key-agreement CPU on the handset.
        if self.secure && !self.wtls_established {
            let hello_up = air.transfer(security::wtls::HANDSHAKE_BYTES / 2, &mut self.rng);
            let hello_down = air.transfer(security::wtls::HANDSHAKE_BYTES / 2, &mut self.rng);
            breakdown.wireless_secs += (hello_up.elapsed + hello_down.elapsed).as_secs_f64();
            energy += air.tx_energy(&hello_up) + air.rx_energy(&hello_down);
            let hs_ns = (hello_up.elapsed + hello_down.elapsed).as_nanos();
            self.recorder
                .span(cursor, hs_ns, Layer::Wireless, "wtls_handshake", txn);
            cursor += hs_ns;
            // Modular exponentiation on a handheld: scale by clock speed.
            let kx_cost = 20.0 / self.station.browser.device().cpu_mhz as f64;
            breakdown.station_secs += kx_cost;
            let kx_ns = secs_to_ns(kx_cost);
            self.recorder
                .span(cursor, kx_ns, Layer::Station, "wtls_key_exchange", txn);
            cursor += kx_ns;
            self.wtls_established = true;
        }

        // Injected gateway outage: the primary middleware is
        // unreachable. A system serving through its fallback middleware
        // bypasses the failed gateway and is unaffected.
        if !self.middleware_degraded && self.faults.gateway_down(t0) {
            let reason = "middleware gateway unavailable (outage)";
            self.drain(breakdown, energy);
            self.fail_txn(txn, cursor, reason, Layer::Middleware);
            return TransactionReport {
                total: breakdown.total_secs(),
                breakdown,
                air_bytes_up: 0,
                air_bytes_down: 0,
                retransmissions: 0,
                energy_j: energy,
                success: false,
                failure: Some(reason.into()),
                outcome: None,
                attempts: 1,
            };
        }

        // The middleware performs the exchange against the host — unless
        // the gateway content cache holds a fresh adapted deck for this
        // exact (url, device, middleware, cookies) key, in which case
        // neither the wired network nor the host is touched. An active
        // transcoder fault bypasses lookup *and* store: a wedged encoder
        // must not serve — or capture — decks.
        if self.cache.enabled {
            self.host.web.set_sim_now_ns(t0);
        }
        let cache_candidate = self.gateway_cache.is_some()
            && ContentCache::cacheable_request(req)
            && !self.faults.transcode_degraded(t0);
        // Lookups *probe* for an interned key id; keys are interned only
        // when an exchange is actually stored, so never-stored shapes
        // (one-shot search query URLs) don't grow the interner.
        let cache_id = if cache_candidate {
            let device = self.station.browser.device().name;
            let kind = self.middleware.name();
            let cache = self.gateway_cache.as_ref().expect("checked above");
            let id = cache.probe(req, device, kind);
            if id.is_none() {
                let cache = self.gateway_cache.as_mut().expect("checked above");
                cache.record_miss();
            }
            id
        } else {
            None
        };
        let cached = match (self.gateway_cache.as_mut(), cache_id) {
            (Some(cache), Some(id)) => cache.lookup(id, t0),
            _ => None,
        };
        let gateway_hit = cached.is_some();
        let mut ex: Exchange = match cached {
            Some(hit) => {
                obs::metrics::incr("middleware.cache.hits");
                obs::metrics::add("middleware.cache.bytes_saved", hit.content.len() as u64);
                hit
            }
            None => {
                let ex = self.middleware.exchange(&mut self.host, req);
                self.last_commit_ns = self.host.take_commit_ns();
                if cache_candidate {
                    obs::metrics::incr("middleware.cache.misses");
                    if ContentCache::cacheable_exchange(&ex) {
                        let device = self.station.browser.device().name;
                        let kind = self.middleware.name();
                        let cache = self.gateway_cache.as_mut().expect("candidate implies cache");
                        let id = match cache_id {
                            Some(id) => id,
                            None => cache.intern(req, device, kind),
                        };
                        let evicted = cache.store(id, &ex, t0);
                        obs::metrics::add("middleware.cache.evictions", evicted as u64);
                    }
                }
                ex
            }
        };

        // Injected transcoder degradation: the gateway's binary WML
        // encoder is wedged and emits corrupt decks. Only binary-WML
        // paths are affected — the textual fallback sails through.
        if ex.format == AirFormat::WmlBinary
            && !self.middleware_degraded
            && self.faults.transcode_degraded(t0)
        {
            let reason = "transcode degraded (corrupt binary deck)";
            breakdown.middleware_secs += ex.middleware_cpu.as_secs_f64();
            cursor += ex.middleware_cpu.as_nanos();
            self.drain(breakdown, energy);
            self.fail_txn(txn, cursor, reason, Layer::Middleware);
            return TransactionReport {
                total: breakdown.total_secs(),
                breakdown,
                air_bytes_up: 0,
                air_bytes_down: 0,
                retransmissions: 0,
                energy_j: energy,
                success: false,
                failure: Some(reason.into()),
                outcome: None,
                attempts: 1,
            };
        }

        // Security: every over-the-air payload is sealed into a WTLS
        // record (header + sequence + MAC) and costs handset CPU.
        if self.secure {
            ex.uplink_bytes = security::WtlsSession::sealed_size(ex.uplink_bytes);
            ex.downlink_bytes = security::WtlsSession::sealed_size(ex.downlink_bytes);
            let sealed_kb = ((ex.uplink_bytes + ex.downlink_bytes) as u32).div_ceil(1024);
            let scale = 100.0 / self.station.browser.device().cpu_mhz as f64;
            let seal_cost = (WTLS_CPU_PER_KB * sealed_kb).as_secs_f64() * scale;
            breakdown.station_secs += seal_cost;
            let seal_ns = secs_to_ns(seal_cost);
            self.recorder
                .span(cursor, seal_ns, Layer::Station, "wtls_seal", txn);
            cursor += seal_ns;
        }

        // Station CPU: building and serialising the request.
        let device = self.station.browser.device();
        let build_cost = device.parse_cost(ex.uplink_bytes);
        breakdown.station_secs += build_cost.as_secs_f64();
        self.recorder.span(
            cursor,
            build_cost.as_nanos(),
            Layer::Station,
            "build_request",
            txn,
        );
        cursor += build_cost.as_nanos();

        // Extra protocol round trips (e.g. WSP session setup): one small
        // frame each way per round trip.
        let mut rt_elapsed = simnet::SimDuration::ZERO;
        for _ in 0..ex.extra_round_trips {
            let up = air.transfer(32, &mut self.rng);
            let down = air.transfer(32, &mut self.rng);
            breakdown.wireless_secs += (up.elapsed + down.elapsed).as_secs_f64();
            energy += air.tx_energy(&up) + air.rx_energy(&down);
            rt_elapsed += up.elapsed + down.elapsed;
        }
        if ex.extra_round_trips > 0 {
            self.recorder.span(
                cursor,
                rt_elapsed.as_nanos(),
                Layer::Wireless,
                "wsp_round_trips",
                txn,
            );
        }
        cursor += rt_elapsed.as_nanos();

        // Air uplink.
        let up = air.transfer(ex.uplink_bytes, &mut self.rng);
        energy += air.tx_energy(&up);
        breakdown.wireless_secs += up.elapsed.as_secs_f64();
        self.recorder
            .span(cursor, up.elapsed.as_nanos(), Layer::Wireless, "uplink", txn);
        cursor += up.elapsed.as_nanos();
        if up.failed {
            self.drain(breakdown, energy);
            self.fail_txn(txn, cursor, "uplink failed (ARQ exhausted)", Layer::Wireless);
            return TransactionReport {
                total: breakdown.total_secs(),
                breakdown,
                air_bytes_up: up.bytes_on_medium,
                air_bytes_down: 0,
                retransmissions: up.retransmissions,
                energy_j: energy,
                success: false,
                failure: Some("uplink failed (ARQ exhausted)".into()),
                outcome: None,
                attempts: 1,
            };
        }

        // Wired hop both ways, middleware CPU, host CPU. The traversal
        // order of the spans follows Figure 2 (middleware → wired → host
        // → wired), while the breakdown sums stay computed exactly as
        // before. A gateway cache hit never leaves the middleware: both
        // wired legs and the host visit collapse to zero.
        let (wired_up, wired_down) = if gateway_hit {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            (
                self.wired.transfer(ex.wired_bytes.0),
                self.wired.transfer(ex.wired_bytes.1),
            )
        };
        breakdown.wired_secs += (wired_up + wired_down).as_secs_f64();
        breakdown.middleware_secs += ex.middleware_cpu.as_secs_f64();
        breakdown.host_secs += ex.host_cpu.as_secs_f64();
        self.recorder.span(
            cursor,
            ex.middleware_cpu.as_nanos(),
            Layer::Middleware,
            if gateway_hit { "gateway_cache" } else { "gateway" },
            txn,
        );
        cursor += ex.middleware_cpu.as_nanos();
        if !gateway_hit {
            self.recorder
                .span(cursor, wired_up.as_nanos(), Layer::Wired, "wired_up", txn);
            cursor += wired_up.as_nanos();
            self.recorder
                .span(cursor, ex.host_cpu.as_nanos(), Layer::Host, "host", txn);
            cursor += ex.host_cpu.as_nanos();
            self.recorder
                .span(cursor, wired_down.as_nanos(), Layer::Wired, "wired_down", txn);
            cursor += wired_down.as_nanos();
        }

        // Air downlink.
        let down = air.transfer(ex.downlink_bytes, &mut self.rng);
        energy += air.rx_energy(&down);
        breakdown.wireless_secs += down.elapsed.as_secs_f64();
        self.recorder.span(
            cursor,
            down.elapsed.as_nanos(),
            Layer::Wireless,
            "downlink",
            txn,
        );
        cursor += down.elapsed.as_nanos();
        if down.failed {
            self.drain(breakdown, energy);
            self.fail_txn(txn, cursor, "downlink failed (ARQ exhausted)", Layer::Wireless);
            return TransactionReport {
                total: breakdown.total_secs(),
                breakdown,
                air_bytes_up: up.bytes_on_medium,
                air_bytes_down: down.bytes_on_medium,
                retransmissions: up.retransmissions + down.retransmissions,
                energy_j: energy,
                success: false,
                failure: Some("downlink failed (ARQ exhausted)".into()),
                outcome: None,
                attempts: 1,
            };
        }

        // Station: parse + render the content, store cookies.
        let kind = Self::content_kind(ex.format);
        let render = match &self.render_memo {
            Some(memo) => self.station.browser.render_memoized(
                &ex.content,
                kind,
                ex.deck.as_deref(),
                &mut memo.borrow_mut(),
            ),
            None => self
                .station
                .browser
                .render_prepared(&ex.content, kind, ex.deck.as_deref())
                .map(|page| Rc::new(RenderedView::of(page))),
        };
        let render_failure = match &render {
            Ok(view) => {
                breakdown.station_secs += view.page.cost.as_secs_f64();
                self.recorder.span(
                    cursor,
                    view.page.cost.as_nanos(),
                    Layer::Station,
                    "render",
                    txn,
                );
                cursor += view.page.cost.as_nanos();
                self.last_outcome = Some(TransactionOutcome {
                    page_text: view.text.clone(),
                    title: view.page.title.clone(),
                    status: ex.status,
                });
                None
            }
            Err(e) => {
                self.last_outcome = None;
                Some(format!("render failed: {e}"))
            }
        };
        self.station
            .browser
            .accept_cookies(ex.set_cookies.iter().map(|(k, v)| (k.as_str(), v.as_str())));

        // Battery accounting: radio energy plus CPU-active energy.
        let os_factor = self.station.browser.device().os.cpu_overhead_factor();
        energy += breakdown.station_secs * STATION_ACTIVE_W * os_factor;
        let alive = self.station.battery.drain(energy);

        let render_failed = render_failure.is_some();
        let success = ex.status.is_success() && render_failure.is_none() && alive;
        let failure = if !alive {
            Some("battery exhausted mid-transaction".into())
        } else if let Some(f) = render_failure {
            Some(f)
        } else if !ex.status.is_success() {
            Some(format!("host returned {}", ex.status))
        } else {
            None
        };

        if let Some(reason) = &failure {
            // Attribute the failure to the layer that produced it.
            let layer = if !alive || render_failed {
                Layer::Station
            } else {
                Layer::Host
            };
            self.fail_txn(txn, cursor, reason, layer);
        } else if self.recorder.is_enabled() {
            // Root span on the station covering the whole transaction.
            self.recorder
                .span_dyn(t0, cursor - t0, Layer::Application, &req.url, txn);
        }
        self.clock_ns = cursor;

        // Per-layer metrics: service time, air costs, and outcome.
        if obs::metrics::enabled() {
            obs::metrics::add("station.service_ns", secs_to_ns(breakdown.station_secs));
            obs::metrics::add("wireless.service_ns", secs_to_ns(breakdown.wireless_secs));
            obs::metrics::add(
                "middleware.service_ns",
                secs_to_ns(breakdown.middleware_secs),
            );
            obs::metrics::add("wired.service_ns", secs_to_ns(breakdown.wired_secs));
            obs::metrics::add("host.service_ns", secs_to_ns(breakdown.host_secs));
            obs::metrics::add(
                "wireless.retransmissions",
                (up.retransmissions + down.retransmissions) as u64,
            );
            obs::metrics::add(
                "wireless.air_bytes",
                up.bytes_on_medium + down.bytes_on_medium,
            );
            obs::metrics::observe("txn.latency_ns", secs_to_ns(breakdown.total_secs()));
            if !success {
                obs::metrics::incr("station.txn_failures");
            }
        }

        TransactionReport {
            total: breakdown.total_secs(),
            breakdown,
            air_bytes_up: up.bytes_on_medium,
            air_bytes_down: down.bytes_on_medium,
            retransmissions: up.retransmissions + down.retransmissions,
            energy_j: energy,
            success,
            failure,
            outcome: self.last_outcome.clone(),
            attempts: 1,
        }
    }

    fn host_mut(&mut self) -> &mut HostComputer {
        &mut self.host
    }
}

impl McSystem {
    /// Executes one transaction under a [`RetryPolicy`]: failed attempts
    /// are triaged ([`classify`]) and — for transient faults — retried
    /// after exponential, jittered backoff on the station's sim clock
    /// (draining idle battery), or — for degraded-path faults — retried
    /// immediately through the fallback middleware installed with
    /// [`set_fallback_middleware`](McSystem::set_fallback_middleware).
    ///
    /// The final report absorbs every failed attempt's paid costs
    /// (latency, breakdown, energy, air bytes, retransmissions) and
    /// counts all attempts in [`TransactionReport::attempts`]. Backoff
    /// time advances the clock and drains the battery but is user wait,
    /// not transaction latency. The primary middleware is restored once
    /// the transaction settles, so a later gateway window degrades (and
    /// is counted) again.
    ///
    /// Jitter draws come only from `rng` — pass a stream derived from
    /// the scenario seed and user index to keep fleets bit-identical at
    /// any thread count.
    pub fn execute_with_retry(
        &mut self,
        req: &MobileRequest,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> TransactionReport {
        let mut report = self.execute(req);
        if policy.is_none() {
            return report;
        }
        // The retry budget runs from the end of the first attempt.
        let deadline_end = self.clock_ns.saturating_add(policy.deadline.as_nanos());
        let mut attempts: u32 = 1;
        // WAL time accumulates across attempts like every other phase
        // share (each execute() resets the per-transaction slot).
        let mut commit_ns = self.last_commit_ns;
        let mut prior = PhaseBreakdown::default();
        let mut prior_total = 0.0f64;
        let mut prior_energy = 0.0f64;
        let mut prior_up = 0u64;
        let mut prior_down = 0u64;
        let mut prior_retx = 0u32;
        while !report.success && attempts < policy.max_attempts {
            let reason = report.failure.clone().unwrap_or_default();
            match classify(&reason) {
                FailureClass::Permanent => break,
                FailureClass::Degraded => {
                    let Some(kind) = self.fallback_kind else { break };
                    if self.middleware_degraded {
                        // Already on the fallback and still degraded:
                        // another swap cannot help.
                        break;
                    }
                    let primary = std::mem::replace(&mut self.middleware, kind.build());
                    self.degraded_primary = Some(primary);
                    self.middleware_degraded = true;
                    self.session_up = false;
                    obs::metrics::incr("policy.degraded");
                }
                FailureClass::Transient => {
                    let backoff = policy.backoff(attempts, rng);
                    if self.clock_ns.saturating_add(backoff.as_nanos()) > deadline_end {
                        break;
                    }
                    self.recorder.span(
                        self.clock_ns,
                        backoff.as_nanos(),
                        Layer::Application,
                        "retry_backoff",
                        self.txn_seq,
                    );
                    if !self.idle(backoff.as_secs_f64()) {
                        break; // battery died while waiting
                    }
                }
            }
            prior_total += report.total;
            prior.station_secs += report.breakdown.station_secs;
            prior.wireless_secs += report.breakdown.wireless_secs;
            prior.middleware_secs += report.breakdown.middleware_secs;
            prior.wired_secs += report.breakdown.wired_secs;
            prior.host_secs += report.breakdown.host_secs;
            prior_energy += report.energy_j;
            prior_up += report.air_bytes_up;
            prior_down += report.air_bytes_down;
            prior_retx += report.retransmissions;
            attempts += 1;
            obs::metrics::incr("policy.retries");
            report = self.execute(req);
            commit_ns = commit_ns.saturating_add(self.last_commit_ns);
        }
        self.last_commit_ns = commit_ns;
        // Settle: the primary middleware comes back for the next
        // transaction (fresh session, since the gateway path changed).
        if let Some(primary) = self.degraded_primary.take() {
            self.middleware = primary;
            self.middleware_degraded = false;
            self.session_up = false;
        }
        report.attempts = attempts;
        report.total += prior_total;
        report.breakdown.station_secs += prior.station_secs;
        report.breakdown.wireless_secs += prior.wireless_secs;
        report.breakdown.middleware_secs += prior.middleware_secs;
        report.breakdown.wired_secs += prior.wired_secs;
        report.breakdown.host_secs += prior.host_secs;
        report.energy_j += prior_energy;
        report.air_bytes_up += prior_up;
        report.air_bytes_down += prior_down;
        report.retransmissions += prior_retx;
        report
    }

    fn drain(&mut self, breakdown: PhaseBreakdown, radio_energy: f64) {
        let os_factor = self.station.browser.device().os.cpu_overhead_factor();
        let energy = radio_energy + breakdown.station_secs * STATION_ACTIVE_W * os_factor;
        let _ = self.station.battery.drain(energy);
    }

    /// Records a transaction failure: instant event, flight-recorder
    /// dump attributed to `layer`, failure counter, and clock advance.
    fn fail_txn(&mut self, txn: u64, cursor: u64, reason: &str, layer: Layer) {
        obs::metrics::incr("station.txn_failures");
        self.recorder.instant_dyn(cursor, layer, reason, txn);
        self.recorder.dump_failure(txn, reason, layer);
        self.clock_ns = cursor;
    }
}

/// Converts a (non-negative) model duration in seconds to whole
/// nanoseconds, the unit the recorder and metrics registry use.
fn secs_to_ns(secs: f64) -> u64 {
    (secs * 1e9).max(0.0).round() as u64
}

/// The four-component electronic commerce baseline (Figure 1): desktop
/// clients on the wired network — no mobile station, no middleware, no
/// wireless hop.
pub struct EcSystem {
    /// The host computer.
    pub host: HostComputer,
    wired: WiredPath,
    last_outcome: Option<TransactionOutcome>,
}

impl std::fmt::Debug for EcSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcSystem").finish()
    }
}

impl EcSystem {
    /// Assembles the EC baseline.
    pub fn new(host: HostComputer, wired: WiredPath) -> Self {
        EcSystem {
            host,
            wired,
            last_outcome: None,
        }
    }

    /// Desktop client CPU model: parse+render HTML at workstation speed.
    fn client_cost(bytes: usize) -> SimDuration {
        // ~20 MB/s parse+layout on a desktop of the era.
        SimDuration::from_secs_f64(bytes as f64 / 20_000_000.0)
    }
}

impl CommerceSystem for EcSystem {
    fn label(&self) -> String {
        "EC[desktop / wired]".to_owned()
    }

    fn execute(&mut self, req: &MobileRequest) -> TransactionReport {
        let mut breakdown = PhaseBreakdown::default();

        let http_req = match &req.form {
            None => hostsite::HttpRequest::get(&req.url),
            Some(form) => hostsite::HttpRequest::post(&req.url, form.iter().cloned()),
        };
        let mut http_req = http_req;
        for (k, v) in &req.cookies {
            http_req = http_req.with_cookie(k, v);
        }
        if let Some((u, p)) = &req.auth {
            http_req = http_req.with_auth(u, p);
        }

        let req_bytes = http_req.wire_size();
        breakdown.wired_secs += self.wired.transfer(req_bytes).as_secs_f64();
        let (resp, host_cpu) = self.host.process(http_req);
        breakdown.host_secs += host_cpu.as_secs_f64();
        let resp_bytes = resp.wire_size();
        breakdown.wired_secs += self.wired.transfer(resp_bytes).as_secs_f64();
        breakdown.station_secs += Self::client_cost(resp.body.len()).as_secs_f64();

        let parsed = markup::parse::parse(&resp.body);
        let render_ok = parsed.is_ok();
        self.last_outcome = parsed.ok().map(|doc| TransactionOutcome {
            page_text: doc.text_content(),
            title: doc
                .find("title")
                .map(|t| t.text_content())
                .unwrap_or_default(),
            status: resp.status,
        });
        let success = resp.status.is_success() && render_ok;
        TransactionReport {
            total: breakdown.total_secs(),
            breakdown,
            air_bytes_up: 0,
            air_bytes_down: 0,
            retransmissions: 0,
            energy_j: 0.0, // mains-powered
            success,
            failure: if success {
                None
            } else if !render_ok {
                Some("client failed to parse page".into())
            } else {
                Some(format!("host returned {}", resp.status))
            },
            outcome: self.last_outcome.clone(),
            attempts: 1,
        }
    }

    fn host_mut(&mut self) -> &mut HostComputer {
        &mut self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;
    use markup::html;
    use middleware::IModeService;
    use wireless::WlanStandard;

    fn storefront_host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 17);
        let page = html::page(
            "Store",
            vec![
                html::h1("Mobile Store").into(),
                html::p("Everything ships today").into(),
                html::a("/item?sku=1", "A fine widget").into(),
            ],
        );
        host.web.static_page("/", page.to_markup());
        host
    }

    fn wifi() -> WirelessConfig {
        WirelessConfig::Wlan {
            standard: WlanStandard::Dot11b,
            distance_m: 20.0,
        }
    }

    #[test]
    fn mc_transaction_succeeds_with_full_breakdown() {
        let mut sys = SystemSpec::new()
            .device(DeviceProfile::palm_i705())
            .wireless(wifi())
            .seed(1)
            .build(storefront_host());
        let report = sys.execute(&MobileRequest::get("/"));
        assert!(report.success, "{:?}", report.failure);
        // Every component contributed.
        for c in ["station", "wireless", "middleware", "wired", "host"] {
            assert!(
                report.breakdown.share(c) > 0.0,
                "component {c} has zero share"
            );
        }
        assert!(report.air_bytes_down > 0);
        assert!(report.energy_j > 0.0);
        assert!((report.total - report.breakdown.total_secs()).abs() < 1e-12);
    }

    #[test]
    fn ec_transaction_has_no_wireless_or_middleware_share() {
        let mut sys = EcSystem::new(storefront_host(), WiredPath::wan());
        let report = sys.execute(&MobileRequest::get("/"));
        assert!(report.success);
        assert_eq!(report.breakdown.wireless_secs, 0.0);
        assert_eq!(report.breakdown.middleware_secs, 0.0);
        assert!(report.breakdown.host_secs > 0.0);
        assert_eq!(report.energy_j, 0.0);
    }

    #[test]
    fn mc_is_slower_than_ec_but_both_complete() {
        // Figure 1 vs Figure 2: the two added components cost latency.
        let mut ec = EcSystem::new(storefront_host(), WiredPath::wan());
        let mut mc = SystemSpec::new()
            .device(DeviceProfile::palm_i705())
            .wireless(wifi())
            .seed(1)
            .build(storefront_host());
        let ec_report = ec.execute(&MobileRequest::get("/"));
        let mc_report = mc.execute(&MobileRequest::get("/"));
        assert!(ec_report.success && mc_report.success);
        assert!(mc_report.total > ec_report.total);
    }

    #[test]
    fn out_of_coverage_fails_cleanly() {
        let mut sys = SystemSpec::new()
            .wireless(WirelessConfig::Wlan {
                standard: WlanStandard::Bluetooth,
                distance_m: 100.0,
            })
            .seed(1)
            .build(storefront_host());
        let report = sys.execute(&MobileRequest::get("/"));
        assert!(!report.success);
        assert!(report.failure.as_deref().unwrap().contains("no coverage"));
    }

    #[test]
    fn battery_drains_across_transactions_until_death() {
        let mut device = DeviceProfile::palm_i705();
        device.battery_j = 0.02; // nearly dead battery
        let mut sys = SystemSpec::new()
            .device(device)
            .wireless(wifi())
            .seed(1)
            .build(storefront_host());
        let mut died = false;
        for _ in 0..200 {
            let report = sys.execute(&MobileRequest::get("/"));
            if !report.success {
                assert!(report.failure.as_deref().unwrap().contains("battery"));
                died = true;
                break;
            }
        }
        assert!(died, "battery should run out");
    }

    #[test]
    fn cookies_persist_across_transactions() {
        let mut host = storefront_host();
        host.web.route_get(
            "/greet",
            |req: &hostsite::HttpRequest, _ctx: &mut hostsite::ServerCtx<'_>| {
                let known = req.cookies.contains_key("visited");
                let body = html::page(
                    "Greet",
                    vec![html::p(if known {
                        "welcome back"
                    } else {
                        "hello stranger"
                    })
                    .into()],
                );
                hostsite::HttpResponse::ok(body.to_markup()).with_cookie("visited", "1")
            },
        );
        let mut sys = SystemSpec::new()
            .middleware(MiddlewareKind::IMode)
            .device(DeviceProfile::nokia_9290())
            .wireless(wifi())
            .seed(2)
            .build(host);
        sys.execute(&MobileRequest::get("/greet"));
        let _ = sys.execute(&MobileRequest::get("/greet"));
        // The second exchange carried the cookie: host answered differently.
        // Verify via a third fetch of the rendered content.
        let r = sys.execute(&MobileRequest::get("/greet"));
        assert!(r.success);
        let page = sys
            .station
            .browser
            .render(
                html::page("Greet", vec![html::p("welcome back").into()])
                    .to_markup()
                    .as_bytes(),
                station::browser::ContentKind::Html,
            )
            .unwrap();
        assert!(page.lines.iter().any(|l| l.contains("welcome back")));
    }

    #[test]
    fn cellular_first_transaction_pays_session_setup() {
        use wireless::CellularStandard;
        let mut sys = SystemSpec::new()
            .middleware(MiddlewareKind::IMode)
            .device(DeviceProfile::nokia_9290())
            .wireless(WirelessConfig::Cellular {
                standard: CellularStandard::Gsm,
            })
            .seed(3)
            .build(storefront_host());
        let first = sys.execute(&MobileRequest::get("/"));
        let second = sys.execute(&MobileRequest::get("/"));
        assert!(first.success && second.success);
        // GSM circuit setup is 4.5 s — dominates the first transaction.
        assert!(first.breakdown.wireless_secs > second.breakdown.wireless_secs + 4.0);
    }

    #[test]
    fn swapping_components_preserves_host_data() {
        // Requirement 5 (§1.1): program/data independence.
        let mut sys = SystemSpec::new()
            .device(DeviceProfile::palm_i705())
            .wireless(wifi())
            .seed(4)
            .build(storefront_host());
        sys.host
            .web
            .db_mut()
            .create_table("orders", &["id", "what"], &[])
            .unwrap();
        sys.host
            .web
            .db_mut()
            .insert("orders", vec![1.into(), "widget".into()])
            .unwrap();
        assert!(sys.execute(&MobileRequest::get("/")).success);

        sys.set_middleware(Box::new(IModeService::new()));
        sys.set_wireless(WirelessConfig::Cellular {
            standard: wireless::CellularStandard::Gprs,
        });
        assert!(sys.execute(&MobileRequest::get("/")).success);
        // Data survived the component swap untouched.
        assert_eq!(
            sys.host.web.db().get("orders", &1.into()).unwrap().unwrap()[1],
            hostsite::db::Value::Text("widget".into())
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use hostsite::db::Database;
    use markup::html;
    use middleware::WapGateway;
    use simnet::rng::rng_for;
    

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 17);
        host.web.static_page(
            "/",
            html::page("Store", vec![html::p("open for business").into()]).to_markup(),
        );
        host
    }

    fn system() -> McSystem {
        SystemSpec::new().seed(5).build(host())
    }

    #[test]
    fn outage_window_fails_transactions_then_clears() {
        let mut sys = system();
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_secs(1),
            FaultKind::WirelessOutage,
        ));
        let r = sys.execute(&MobileRequest::get("/"));
        assert!(!r.success);
        assert!(r.failure.as_deref().unwrap().contains("wireless outage"));
        // The probe took finite time and energy even though it failed.
        assert!(r.total > 0.0);
        assert!(r.energy_j > 0.0);
        sys.idle(2.0);
        assert!(sys.execute(&MobileRequest::get("/")).success);
    }

    #[test]
    fn db_crash_opens_a_recovery_window_and_replays_the_journal() {
        let mut sys = system();
        sys.set_fault_plan(
            FaultPlan::none().oneshot(SimDuration::from_millis(1), FaultKind::DbCrash),
        );
        assert!(sys.execute(&MobileRequest::get("/")).success, "before the crash");
        sys.idle(0.01); // cross the crash instant
        let r = sys.execute(&MobileRequest::get("/"));
        assert!(!r.success);
        assert!(r.failure.as_deref().unwrap().contains("recovering"), "{:?}", r.failure);
        sys.idle(10.0); // wait out journal replay
        assert!(sys.execute(&MobileRequest::get("/")).success, "after recovery");
    }

    #[test]
    fn battery_drain_oneshot_kills_the_station() {
        let mut sys = system();
        sys.set_fault_plan(
            FaultPlan::none().oneshot(SimDuration::ZERO, FaultKind::BatteryDrain { joules: 1e9 }),
        );
        let r = sys.execute(&MobileRequest::get("/"));
        assert!(!r.success);
        assert!(r.failure.as_deref().unwrap().contains("battery"));
        assert_eq!(classify(r.failure.as_deref().unwrap()), FailureClass::Permanent);
    }

    #[test]
    fn loss_burst_raises_retransmissions() {
        let run = |burst: Option<f64>| {
            let mut sys = system();
            if let Some(ber) = burst {
                sys.set_fault_plan(FaultPlan::none().window(
                    SimDuration::ZERO,
                    SimDuration::from_secs(3600),
                    FaultKind::LossBurst { ber },
                ));
            }
            let mut retx = 0u32;
            for _ in 0..40 {
                retx += sys.execute(&MobileRequest::get("/")).retransmissions;
            }
            retx
        };
        assert!(run(Some(2e-4)) > run(None), "burst BER must cost retransmissions");
    }

    #[test]
    fn retry_rides_out_a_transient_outage() {
        let mut sys = system();
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_millis(600),
            FaultKind::WirelessOutage,
        ));
        let policy = RetryPolicy::standard();
        let mut rng = rng_for(9, "test.retry");
        let r = sys.execute_with_retry(&MobileRequest::get("/"), &policy, &mut rng);
        assert!(r.success, "{:?}", r.failure);
        assert!(r.attempts >= 2, "should have retried, attempts={}", r.attempts);
        // The failed probes' costs are folded into the settled report.
        assert!(r.breakdown.wireless_secs > OUTAGE_PROBE.as_secs_f64());
    }

    #[test]
    fn gateway_outage_degrades_to_the_fallback_middleware() {
        let mut sys = system();
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_secs(3600),
            FaultKind::GatewayOutage,
        ));
        sys.set_fallback_middleware(Some(MiddlewareKind::WapTextual));
        let policy = RetryPolicy::standard();
        let mut rng = rng_for(10, "test.degrade");
        let r = sys.execute_with_retry(&MobileRequest::get("/"), &policy, &mut rng);
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(r.attempts, 2);
        // The primary middleware is restored after the transaction.
        assert!(!sys.is_middleware_degraded());
        assert_eq!(sys.middleware.name(), WapGateway::default().name());
    }

    #[test]
    fn gateway_outage_without_fallback_or_retry_just_fails() {
        let mut sys = system();
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_secs(3600),
            FaultKind::GatewayOutage,
        ));
        let r = sys.execute(&MobileRequest::get("/"));
        assert!(!r.success);
        assert_eq!(
            classify(r.failure.as_deref().unwrap()),
            FailureClass::Degraded
        );
        let policy = RetryPolicy::standard();
        let mut rng = rng_for(11, "test.nofallback");
        // A retrying policy without a fallback cannot fix a degraded path.
        let r = sys.execute_with_retry(&MobileRequest::get("/"), &policy, &mut rng);
        assert!(!r.success);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn transcoder_fault_corrupts_binary_wml_only() {
        let mut sys = system();
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_secs(3600),
            FaultKind::TranscodeDegraded,
        ));
        let r = sys.execute(&MobileRequest::get("/"));
        assert!(!r.success);
        assert!(r.failure.as_deref().unwrap().contains("transcode degraded"));
        // The textual fallback ships no binary deck, so it sails through.
        sys.set_fallback_middleware(Some(MiddlewareKind::WapTextual));
        let policy = RetryPolicy::standard();
        let mut rng = rng_for(12, "test.transcode");
        let r = sys.execute_with_retry(&MobileRequest::get("/"), &policy, &mut rng);
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let run = |plan: Option<FaultPlan>| {
            let mut sys = system();
            if let Some(plan) = plan {
                sys.set_fault_plan(plan);
            }
            let mut out = Vec::new();
            for _ in 0..10 {
                let r = sys.execute(&MobileRequest::get("/"));
                out.push((r.total.to_bits(), r.energy_j.to_bits(), r.retransmissions));
            }
            out
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use hostsite::db::Database;
    use markup::html;
    
    

    fn system() -> McSystem {
        let mut host = HostComputer::new(Database::new(), 71);
        host.web.static_page(
            "/",
            html::page("Store", vec![html::p("open for business").into()]).to_markup(),
        );
        SystemSpec::new().seed(72).build(host)
    }

    #[test]
    fn warm_hits_skip_the_wired_network_and_the_host() {
        let mut sys = system();
        sys.set_cache_policy(CachePolicy::standard());
        let guard = obs::metrics::enable();
        let cold = sys.execute(&MobileRequest::get("/"));
        let warm = sys.execute(&MobileRequest::get("/"));
        drop(guard);
        let metrics = obs::metrics::take();
        assert!(cold.success && warm.success, "{:?}", warm.failure);
        assert_eq!(metrics.counter("middleware.cache.misses"), 1);
        assert_eq!(metrics.counter("middleware.cache.hits"), 1);
        assert!(metrics.counter("middleware.cache.bytes_saved") > 0);
        // The hit never left the middleware.
        assert_eq!(warm.breakdown.wired_secs, 0.0);
        assert_eq!(warm.breakdown.host_secs, 0.0);
        assert!(warm.total < cold.total);
        // Same payload either way.
        assert_eq!(
            warm.outcome.as_ref().unwrap().page_text,
            cold.outcome.as_ref().unwrap().page_text
        );
    }

    #[test]
    fn a_disabled_policy_is_byte_identical_to_no_policy() {
        let run = |policy: Option<CachePolicy>| {
            let mut sys = system();
            if let Some(p) = policy {
                sys.set_cache_policy(p);
            }
            (0..6)
                .map(|_| {
                    let r = sys.execute(&MobileRequest::get("/"));
                    (r.total.to_bits(), r.energy_j.to_bits(), r.air_bytes_down)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(CachePolicy::disabled())));
        // Zero TTLs with the master switch on: the query cache runs (it
        // is sim-time transparent) but the numbers must not move.
        assert_eq!(
            run(None),
            run(Some(CachePolicy {
                enabled: true,
                ..CachePolicy::disabled()
            }))
        );
    }

    #[test]
    fn a_transcoder_fault_bypasses_the_gateway_cache() {
        let mut sys = system();
        sys.set_cache_policy(CachePolicy::standard());
        // Prime the cache, then wedge the transcoder.
        assert!(sys.execute(&MobileRequest::get("/")).success);
        sys.set_fault_plan(FaultPlan::none().window(
            SimDuration::ZERO,
            SimDuration::from_secs(3600),
            FaultKind::TranscodeDegraded,
        ));
        let guard = obs::metrics::enable();
        let r = sys.execute(&MobileRequest::get("/"));
        drop(guard);
        let metrics = obs::metrics::take();
        // The cached deck must not mask the fault.
        assert!(!r.success);
        assert!(r.failure.as_deref().unwrap().contains("transcode degraded"));
        assert_eq!(metrics.counter("middleware.cache.hits"), 0);
    }

    #[test]
    fn ttl_expiry_sends_the_next_request_back_to_the_host() {
        let mut sys = system();
        sys.set_cache_policy(CachePolicy::standard().ttl(SimDuration::from_secs(2)));
        let guard = obs::metrics::enable();
        assert!(sys.execute(&MobileRequest::get("/")).success);
        sys.idle(5.0); // outlive the 2 s TTL
        assert!(sys.execute(&MobileRequest::get("/")).success);
        drop(guard);
        let metrics = obs::metrics::take();
        assert_eq!(metrics.counter("middleware.cache.hits"), 0);
        assert_eq!(metrics.counter("middleware.cache.misses"), 2);
    }
}

#[cfg(test)]
mod secure_tests {
    use super::*;
    use hostsite::db::Database;
    use markup::html;
    use middleware::MobileRequest;
    

    fn system(secure: bool) -> McSystem {
        let mut host = HostComputer::new(Database::new(), 61);
        host.web.static_page(
            "/",
            html::page("S", vec![html::p("hello secure world").into()]).to_markup(),
        );
        SystemSpec::new().seed(62).secure(secure).build(host)
    }

    #[test]
    fn secure_mode_costs_bytes_cpu_and_a_handshake() {
        let mut plain = system(false);
        let mut secure = system(true);
        let p1 = plain.execute(&MobileRequest::get("/"));
        let s1 = secure.execute(&MobileRequest::get("/"));
        assert!(p1.success && s1.success);
        // Sealed records ship more bytes and burn more energy.
        assert!(s1.air_bytes_up > p1.air_bytes_up);
        assert!(s1.air_bytes_down > p1.air_bytes_down);
        assert!(s1.energy_j > p1.energy_j);
        // The handshake shows up only on the first secure transaction.
        let s2 = secure.execute(&MobileRequest::get("/"));
        assert!(s1.breakdown.station_secs > s2.breakdown.station_secs + 0.05);
        // Per-record overhead is a constant number of bytes.
        let p2 = plain.execute(&MobileRequest::get("/"));
        assert_eq!(
            s2.air_bytes_down as i64 - p2.air_bytes_down as i64,
            security::wtls::RECORD_OVERHEAD as i64
        );
    }

    #[test]
    fn disabling_security_removes_the_overhead() {
        let mut sys = system(true);
        let secure = sys.execute(&MobileRequest::get("/"));
        sys.set_secure(false);
        let plain = sys.execute(&MobileRequest::get("/"));
        assert!(secure.air_bytes_down > plain.air_bytes_down);
        assert!(sys.execute(&MobileRequest::get("/")).success);
        assert!(!sys.is_secure());
    }
}
