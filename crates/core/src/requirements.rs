//! Executable checks of §1.1's five requirements for a mobile commerce
//! system.
//!
//! 1. end users can perform transactions "easily, in a timely manner, and
//!    ubiquitously";
//! 2. "products to be personalized or customized upon request";
//! 3. "fully support a wide range of mobile commerce applications";
//! 4. "maximum interoperability" across technologies;
//! 5. "program/data independence … the change of system components does
//!    not affect the existing programs/data".
//!
//! Each check assembles real systems, runs real workloads, and returns a
//! [`RequirementReport`] with evidence — these double as the acceptance
//! tests for the whole model and as the data behind the `independence`
//! experiment.

use hostsite::db::Database;
use hostsite::HostComputer;
use middleware::MobileRequest;
use station::DeviceProfile;
use wireless::{CellularStandard, WlanStandard};

use crate::apps::{all_apps, Application, PaymentsApp};
use crate::netpath::{WiredPath, WirelessConfig};
use crate::system::{CommerceSystem, MiddlewareKind, SystemSpec};
use crate::workload::run_workload;

/// The verdict on one requirement.
#[derive(Debug, Clone)]
pub struct RequirementReport {
    /// Requirement number (1–5, per §1.1).
    pub number: u8,
    /// The paper's phrasing, abbreviated.
    pub requirement: &'static str,
    /// Whether the system satisfied it.
    pub satisfied: bool,
    /// Human-readable evidence.
    pub evidence: String,
}

fn fresh_host(seed: u64, apps: &[Box<dyn Application>]) -> HostComputer {
    let mut host = HostComputer::new(Database::new(), seed);
    for app in apps {
        app.install(&mut host);
    }
    host
}

fn wifi(distance_m: f64) -> WirelessConfig {
    WirelessConfig::Wlan {
        standard: WlanStandard::Dot11b,
        distance_m,
    }
}

/// Requirement 1 — transactions complete ubiquitously (several positions
/// and networks) and in a timely manner (p90 under a budget).
pub fn check_ubiquity(latency_budget_secs: f64) -> RequirementReport {
    let app = PaymentsApp::new();
    let apps: Vec<Box<dyn Application>> = vec![Box::new(PaymentsApp::new())];
    let mut evidence = Vec::new();
    let mut satisfied = true;
    let configs = [
        wifi(10.0),
        wifi(80.0),
        WirelessConfig::Cellular {
            standard: CellularStandard::Gprs,
        },
        WirelessConfig::Cellular {
            standard: CellularStandard::Wcdma,
        },
    ];
    for (i, config) in configs.iter().enumerate() {
        let mut system = SystemSpec::new()
            .middleware(MiddlewareKind::Wap)
            .device(DeviceProfile::ipaq_h3870())
            .wireless(*config)
            .wired(WiredPath::wan())
            .seed(200 + i as u64)
            .build(fresh_host(100 + i as u64, &apps));
        let summary = run_workload(&mut system, &app, 10, 300 + i as u64);
        let ok = summary.success_rate() == 1.0 && summary.latency_p90 <= latency_budget_secs;
        satisfied &= ok;
        evidence.push(format!(
            "{}: success {:.0}%, p90 {:.2}s",
            config.name(),
            summary.success_rate() * 100.0,
            summary.latency_p90
        ));
    }
    RequirementReport {
        number: 1,
        requirement: "transactions are easy, timely, ubiquitous",
        satisfied,
        evidence: evidence.join("; "),
    }
}

/// Requirement 2 — personalization: the same URL yields different content
/// per user once the host has seen them (sessions/cookies).
pub fn check_personalization() -> RequirementReport {
    let mut host = HostComputer::new(Database::new(), 7);
    host.web.route_get(
        "/home",
        |req: &hostsite::HttpRequest, ctx: &mut hostsite::ServerCtx<'_>| {
            let name = req.param("name").unwrap_or("");
            if !name.is_empty() {
                ctx.session.insert("name".into(), name.to_owned());
            }
            let greeting = match ctx.session.get("name") {
                Some(n) => format!("welcome back, {n}"),
                None => "welcome, guest".to_owned(),
            };
            hostsite::HttpResponse::ok(
                markup::html::page("Home", vec![markup::html::p(&greeting).into()]).to_markup(),
            )
        },
    );
    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::IMode)
        .device(DeviceProfile::nokia_9290())
        .wireless(wifi(15.0))
        .wired(WiredPath::wan())
        .seed(17)
        .build(host);
    system.execute(&MobileRequest::get("/home?name=ada"));
    let report = system.execute(&MobileRequest::get("/home"));
    let page = report.page_text().unwrap_or_default().to_owned();
    let satisfied = page.contains("welcome back, ada");
    RequirementReport {
        number: 2,
        requirement: "products/content personalised upon request",
        satisfied,
        evidence: format!("second visit rendered: {page:?}"),
    }
}

/// Requirement 3 — application breadth: all eight Table 1 categories run
/// to completion on one system.
pub fn check_application_breadth() -> RequirementReport {
    let apps = all_apps();
    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::Wap)
        .device(DeviceProfile::toshiba_e740())
        .wireless(wifi(20.0))
        .wired(WiredPath::wan())
        .seed(23)
        .build(fresh_host(21, &apps));
    let mut evidence = Vec::new();
    let mut satisfied = true;
    for app in &apps {
        let summary = run_workload(&mut system, app.as_ref(), 4, 29);
        let ok = summary.success_rate() > 0.95;
        satisfied &= ok;
        evidence.push(format!(
            "{}: {:.0}%",
            app.category(),
            summary.success_rate() * 100.0
        ));
    }
    RequirementReport {
        number: 3,
        requirement: "supports a wide range of MC applications",
        satisfied,
        evidence: evidence.join("; "),
    }
}

/// Requirement 4 — interoperability: every middleware × device × network
/// combination completes the same workload.
pub fn check_interoperability() -> RequirementReport {
    let app = PaymentsApp::new();
    let mut evidence = Vec::new();
    let mut satisfied = true;
    let mut combo = 0u64;
    for kind in [MiddlewareKind::Wap, MiddlewareKind::IMode] {
        for device in [DeviceProfile::palm_i705(), DeviceProfile::ipaq_h3870()] {
            for config in [
                wifi(20.0),
                WirelessConfig::Cellular {
                    standard: CellularStandard::Edge,
                },
            ] {
                combo += 1;
                let apps: Vec<Box<dyn Application>> = vec![Box::new(PaymentsApp::new())];
                let mut system = SystemSpec::new()
                    .middleware(kind)
                    .device(device.clone())
                    .wireless(config)
                    .wired(WiredPath::wan())
                    .seed(500 + combo)
                    .build(fresh_host(400 + combo, &apps));
                let summary = run_workload(&mut system, &app, 3, 600 + combo);
                let ok = summary.success_rate() == 1.0;
                satisfied &= ok;
                evidence.push(format!(
                    "{} × {} × {}: {}",
                    kind,
                    device.name,
                    config.name(),
                    if ok { "ok" } else { "FAIL" }
                ));
            }
        }
    }
    RequirementReport {
        number: 4,
        requirement: "maximum interoperability across technologies",
        satisfied,
        evidence: evidence.join("; "),
    }
}

/// Requirement 5 — program/data independence: swapping middleware and
/// wireless network mid-run leaves existing programs and data working.
pub fn check_independence() -> RequirementReport {
    let app = PaymentsApp::new();
    let apps: Vec<Box<dyn Application>> = vec![Box::new(PaymentsApp::new())];
    let mut system = SystemSpec::new()
        .middleware(MiddlewareKind::Wap)
        .device(DeviceProfile::sony_clie_nr70v())
        .wireless(wifi(20.0))
        .wired(WiredPath::wan())
        .seed(37)
        .build(fresh_host(31, &apps));

    // Phase 1: buy through WAP over Wi-Fi.
    let before = run_workload(&mut system, &app, 3, 41);
    let stock_after_phase1 = system
        .host
        .web
        .db()
        .get("products", &1.into())
        .ok()
        .flatten()
        .map(|r| r[3].to_string());

    // Swap both the middleware and the network components.
    system.set_middleware(MiddlewareKind::IMode.build());
    system.set_wireless(WirelessConfig::Cellular {
        standard: CellularStandard::Wcdma,
    });

    // Phase 2: the same application and data keep working.
    let after = run_workload(&mut system, &app, 3, 43);
    let stock_final = system
        .host
        .web
        .db()
        .get("products", &1.into())
        .ok()
        .flatten()
        .map(|r| r[3].to_string());

    let satisfied = before.success_rate() == 1.0 && after.success_rate() == 1.0;
    RequirementReport {
        number: 5,
        requirement: "program/data independence under component change",
        satisfied,
        evidence: format!(
            "WAP/Wi-Fi phase: {:.0}%; after swap to i-mode/WCDMA: {:.0}%; stock continuity {} -> {}",
            before.success_rate() * 100.0,
            after.success_rate() * 100.0,
            stock_after_phase1.unwrap_or_default(),
            stock_final.unwrap_or_default(),
        ),
    }
}

/// Runs all five checks.
pub fn check_all() -> Vec<RequirementReport> {
    vec![
        check_ubiquity(30.0),
        check_personalization(),
        check_application_breadth(),
        check_interoperability(),
        check_independence(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirement_1_ubiquity_holds_with_a_generous_budget() {
        let report = check_ubiquity(30.0);
        assert!(report.satisfied, "{}", report.evidence);
    }

    #[test]
    fn requirement_2_personalization_holds() {
        let report = check_personalization();
        assert!(report.satisfied, "{}", report.evidence);
    }

    #[test]
    fn requirement_3_breadth_holds() {
        let report = check_application_breadth();
        assert!(report.satisfied, "{}", report.evidence);
    }

    #[test]
    fn requirement_4_interoperability_holds() {
        let report = check_interoperability();
        assert!(report.satisfied, "{}", report.evidence);
    }

    #[test]
    fn requirement_5_independence_holds() {
        let report = check_independence();
        assert!(report.satisfied, "{}", report.evidence);
    }

    #[test]
    fn an_unreasonable_latency_budget_fails_requirement_1() {
        // Sanity: the check is not vacuously true.
        let report = check_ubiquity(0.000_001);
        assert!(!report.satisfied);
    }
}
