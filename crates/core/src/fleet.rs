//! Fleet engine: a deterministic sharded scenario runner.
//!
//! The paper argues an MC system must serve *many* concurrent users
//! (§1: "a potentially huge market"), yet every experiment in this
//! workspace so far drove a single [`McSystem`] by hand. This module
//! scales the model to fleets: a [`Scenario`] describes one population
//! declaratively — device profile × middleware kind × wireless standard
//! × application workload × user count × security — and [`run`] executes
//! the N independent user sessions sharded across OS threads.
//!
//! # Determinism under parallelism
//!
//! The merged result is **bit-for-bit identical regardless of thread
//! count**, because of three rules:
//!
//! 1. *Per-user worlds.* Each simulated user gets a fresh
//!    [`McSystem`] (own host, own battery, own RNG streams) whose seeds
//!    derive from the scenario seed and the **user index** via
//!    [`simnet::rng::sub_seed`] — never from the thread or shard that
//!    happens to execute it.
//! 2. *Integral accumulation.* Shards accumulate
//!    [`WorkloadCounters`] — integer sums and histograms whose merge is
//!    exactly associative and commutative.
//! 3. *Canonical merge order.* Shard results are merged on the
//!    coordinating thread in shard-index order, so even the derived
//!    floating-point statistics are computed by one fixed expression.
//!
//! Threads here are plain `std::thread::scope` workers over disjoint
//! data; there is no I/O to multiplex and no shared mutable state, so
//! this stays within the workspace's no-async-runtime decision
//! (DESIGN.md §1) — parallelism for throughput, not concurrency for
//! coordination.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use hostsite::db::Database;
use hostsite::HostComputer;
use middleware::SharedTranscodeMemo;
use obs::{Metrics, Recorder};
use station::{DeviceProfile, RenderMemo};
use wireless::WlanStandard;

use crate::apps::{for_category, Category};
use crate::merge::{FleetMerger, TraceMerger};
use crate::netpath::{WiredPath, WirelessConfig};
use crate::report::{WorkloadCounters, WorkloadSummary};
use crate::shared::{self, ContentionStats};
use crate::system::{CachePolicy, McSystem, MiddlewareKind, SystemSpec};
use hostsite::db::DurabilityPolicy;
use crate::topology::Topology;
use crate::workload::run_session;

/// A declarative description of one fleet experiment: who the users
/// are, what they run, and over which technology stack.
///
/// A `Scenario` is plain data (`Clone + Send + Sync`), so it can be
/// shared immutably across shard threads; every piece of machinery (the
/// host, the middleware, the RNGs) is constructed *inside* the shard
/// from this description.
///
/// ```
/// use mcommerce_core::{Category, FleetRunner, MiddlewareKind, Scenario};
///
/// let scenario = Scenario::new("quickstart")
///     .middleware(MiddlewareKind::Wap)
///     .app(Category::Commerce)
///     .users(8)
///     .sessions_per_user(2)
///     .seed(42);
/// let run = FleetRunner::new(scenario).run();
/// assert_eq!(run.report.summary.users, 8);
/// assert!(run.report.summary.workload.success_rate() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, used in labels and reports.
    pub name: String,
    /// The handset every user carries.
    pub device: DeviceProfile,
    /// The middleware component (component iii).
    pub middleware: MiddlewareKind,
    /// The wireless network (component iv).
    pub wireless: WirelessConfig,
    /// The wired path to the host (component v).
    pub wired: WiredPath,
    /// The application workload (component i, Table 1).
    pub app: Category,
    /// Number of independent simulated users.
    pub users: u64,
    /// Sessions each user runs.
    pub sessions_per_user: u64,
    /// Whether WTLS-style transport security is on (§8).
    pub secure: bool,
    /// User think time between sessions, seconds of sim time: the
    /// station idles (draining idle battery) and the user's clock moves
    /// through any scheduled fault windows. Zero (the default) keeps
    /// the pre-existing back-to-back behaviour.
    pub think_secs: f64,
    /// Root seed every per-user stream derives from.
    pub seed: u64,
    /// Fault schedule installed on every user's system (each user's
    /// windows are evaluated against their own sim clock). Empty by
    /// default — and an empty plan draws no randomness, so a fleet
    /// carrying `FaultPlan::none()` is bit-identical to a plan-free one.
    pub faults: faults::FaultPlan,
    /// Per-transaction retry policy. [`RetryPolicy::none`] (the
    /// default) keeps the exact pre-policy execution path.
    pub retry: faults::RetryPolicy,
    /// Fallback middleware for graceful degradation under gateway or
    /// transcoder faults.
    pub fallback: Option<MiddlewareKind>,
    /// Cache policy applied to every user's system. Disabled by default
    /// — and a disabled policy executes the exact pre-cache path, so a
    /// cache-free fleet is bit-identical to one carrying
    /// `CachePolicy::disabled()`. Caches are strictly per-user (each
    /// user owns a full system), preserving thread-count invariance.
    pub cache: CachePolicy,
    /// Durability policy for every user's host database. The default
    /// (batch 1, free fsync) executes the exact pre-WAL-pricing path.
    pub durability: DurabilityPolicy,
    /// Drive each user through [`Application::search_session`] instead
    /// of the regular sessions: the browse → search → refine → purchase
    /// workload whose query strings give every cache tier a
    /// high-cardinality key space. Off by default.
    pub search_heavy: bool,
}

impl Scenario {
    /// A scenario with workshop defaults: one user running one Commerce
    /// session on an iPAQ over 802.11b at 20 m through the WAP gateway,
    /// security off, seed 1.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            device: DeviceProfile::ipaq_h3870(),
            middleware: MiddlewareKind::Wap,
            wireless: WirelessConfig::Wlan {
                standard: WlanStandard::Dot11b,
                distance_m: 20.0,
            },
            wired: WiredPath::wan(),
            app: Category::Commerce,
            users: 1,
            sessions_per_user: 1,
            secure: false,
            think_secs: 0.0,
            seed: 1,
            faults: faults::FaultPlan::none(),
            retry: faults::RetryPolicy::none(),
            fallback: None,
            cache: CachePolicy::disabled(),
            durability: DurabilityPolicy::default(),
            search_heavy: false,
        }
    }

    /// Sets the device profile.
    #[must_use]
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Sets the middleware kind.
    #[must_use]
    pub fn middleware(mut self, kind: MiddlewareKind) -> Self {
        self.middleware = kind;
        self
    }

    /// Sets the wireless configuration.
    #[must_use]
    pub fn wireless(mut self, wireless: WirelessConfig) -> Self {
        self.wireless = wireless;
        self
    }

    /// Sets the wired path.
    #[must_use]
    pub fn wired(mut self, wired: WiredPath) -> Self {
        self.wired = wired;
        self
    }

    /// Sets the application workload.
    #[must_use]
    pub fn app(mut self, app: Category) -> Self {
        self.app = app;
        self
    }

    /// Sets the user count.
    #[must_use]
    pub fn users(mut self, users: u64) -> Self {
        self.users = users;
        self
    }

    /// Sets sessions per user.
    #[must_use]
    pub fn sessions_per_user(mut self, sessions: u64) -> Self {
        self.sessions_per_user = sessions;
        self
    }

    /// Turns WTLS-style security on or off.
    #[must_use]
    pub fn secure(mut self, secure: bool) -> Self {
        self.secure = secure;
        self
    }

    /// Switches users onto the search-heavy session variant.
    #[must_use]
    pub fn search_heavy(mut self, search_heavy: bool) -> Self {
        self.search_heavy = search_heavy;
        self
    }

    /// The `session`-th session for this scenario: the search-heavy
    /// variant when [`Scenario::search_heavy`] is set, the app's
    /// regular sessions otherwise. Every runner (per-user fleet and
    /// shared world) routes through here so the switch cannot drift.
    pub(crate) fn session_steps(
        &self,
        app: &dyn crate::apps::Application,
        session_seed: u64,
        session: u64,
    ) -> Vec<crate::apps::Step> {
        if self.search_heavy {
            app.search_session(session_seed, session)
        } else {
            app.session(session_seed, session)
        }
    }

    /// Sets the root seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the think time between sessions, seconds of sim time.
    #[must_use]
    pub fn think_time(mut self, secs: f64) -> Self {
        self.think_secs = secs;
        self
    }

    /// Installs a fault schedule on every user's system.
    #[must_use]
    pub fn faults(mut self, plan: faults::FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the per-transaction retry policy.
    #[must_use]
    pub fn retry(mut self, policy: faults::RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Selects the fallback middleware swapped in when the primary path
    /// degrades (requires a retrying policy to take effect).
    #[must_use]
    pub fn fallback_middleware(mut self, kind: MiddlewareKind) -> Self {
        self.fallback = Some(kind);
        self
    }

    /// Sets the cache policy applied to every user's system.
    #[must_use]
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Sets the durability policy for every user's host database.
    #[must_use]
    pub fn durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Label summarising the configuration for reports.
    pub fn label(&self) -> String {
        format!(
            "{}: {} × {} × {} × {}{} × {} user(s)",
            self.name,
            self.app,
            self.middleware,
            self.wireless.name(),
            self.device.name,
            if self.secure { " × WTLS" } else { "" },
            self.users,
        )
    }

    /// The typed [`SystemSpec`] for one user of this scenario — the
    /// scenario's stack with the user's derived air-link seed.
    pub fn spec_for_user(&self, user: u64) -> SystemSpec {
        SystemSpec::new()
            .middleware(self.middleware)
            .device(self.device.clone())
            .wireless(self.wireless)
            .wired(self.wired)
            .seed(simnet::rng::sub_seed(self.seed, "fleet.air", user))
            .secure(self.secure)
            .cache(self.cache)
            .durability(self.durability)
    }

    /// Builds the fully provisioned system for one user: fresh host with
    /// the application installed, middleware, device, networks — seeded
    /// purely from the scenario seed and the user index, all through
    /// [`Scenario::spec_for_user`].
    pub fn system_for_user(&self, user: u64) -> McSystem {
        let app = for_category(self.app);
        let mut host = HostComputer::new(
            Database::new(),
            simnet::rng::sub_seed(self.seed, "fleet.host", user),
        );
        app.install(&mut host);
        let mut system = self.spec_for_user(user).build(host);
        if !self.faults.is_empty() {
            system.set_fault_plan(self.faults.clone());
        }
        system.set_fallback_middleware(self.fallback);
        system
    }

    /// [`Scenario::system_for_user`] with a shard's scratch memos
    /// attached: the gateway reuses translations and the browser reuses
    /// renders across the users this shard executes. Hits replay
    /// byte-identical results (see [`ShardScratch`]), so the system
    /// behaves bit-for-bit like a scratch-free build — only faster.
    pub fn system_for_user_in(&self, user: u64, scratch: &ShardScratch) -> McSystem {
        let mut system = self.system_for_user(user);
        scratch.attach(&mut system);
        system
    }

    /// Runs one user's complete workload, folding every transaction
    /// into `counters`. Depends only on `(scenario, user)`.
    pub fn run_user(&self, user: u64, counters: &mut WorkloadCounters) {
        let mut system = self.system_for_user(user);
        self.run_user_on(&mut system, user, counters);
    }

    /// [`Scenario::run_user`] with a shard's scratch memos attached —
    /// the fleet engines' inner loop. Identical counters to
    /// [`Scenario::run_user`] (memo hits are byte-for-byte replays).
    pub fn run_user_in(&self, user: u64, counters: &mut WorkloadCounters, scratch: &ShardScratch) {
        let mut system = self.system_for_user_in(user, scratch);
        self.run_user_on(&mut system, user, counters);
    }

    /// The shared inner loop of [`Scenario::run_user`] and
    /// [`Scenario::run_user_traced`]: drives `system` through this
    /// user's sessions. Depends only on `(scenario, user)` and the
    /// state of `system`.
    fn run_user_on(&self, system: &mut McSystem, user: u64, counters: &mut WorkloadCounters) {
        let app = for_category(self.app);
        let session_seed = simnet::rng::sub_seed(self.seed, "fleet.session", user);
        if self.retry.is_none() {
            for session in 0..self.sessions_per_user {
                if session > 0 && self.think_secs > 0.0 {
                    system.idle(self.think_secs);
                }
                let steps = self.session_steps(app.as_ref(), session_seed, session);
                for report in run_session(system, &steps) {
                    counters.record(&report);
                }
            }
        } else {
            // Jitter stream keyed by (seed, user), never by thread or
            // shard — the determinism rule the module docs state.
            let mut retry_rng = simnet::rng::rng_for_indexed(self.seed, "fleet.retry", user);
            for session in 0..self.sessions_per_user {
                if session > 0 && self.think_secs > 0.0 {
                    system.idle(self.think_secs);
                }
                let steps = self.session_steps(app.as_ref(), session_seed, session);
                for report in
                    crate::workload::run_session_with_policy(system, &steps, &self.retry, &mut retry_rng)
                {
                    counters.record(&report);
                }
            }
        }
    }

    /// Like [`Scenario::run_user`], but with the flight recorder and the
    /// metrics registry enabled: returns the user's trace events, any
    /// failure dumps, and the metrics the layers published.
    ///
    /// The workload itself is **identical** to the untraced run — the
    /// recorder only observes, so `counters` comes out the same either
    /// way (pinned by a unit test below).
    pub fn run_user_traced(&self, user: u64, counters: &mut WorkloadCounters) -> UserTrace {
        let guard = obs::metrics::enable();
        let mut trace = self.run_user_traced_with(user, counters, RecorderKind::Ring, None, None);
        drop(guard);
        trace.metrics = obs::metrics::take();
        trace
    }

    /// [`Scenario::run_user_traced`] with an explicit recorder choice:
    /// [`RecorderKind::Disabled`] keeps the metrics registry on but
    /// skips the flight-recorder ring (no events, no dumps). A shard
    /// passes its [`obs::RingScratch`] so the ring buffer is allocated
    /// once per shard, not once per user.
    ///
    /// Metric *scoping* is the caller's job: this function neither
    /// enables nor drains the thread's registry, so a fleet shard can
    /// hold one [`obs::metrics::enable`] guard across all its users and
    /// [`obs::metrics::take`] once per shard — `Metrics::merge` is
    /// associative and commutative, so shard-level accumulation merges
    /// to the same fleet totals as per-user draining (pinned by
    /// `tests/trace_props.rs`). The returned [`UserTrace::metrics`] is
    /// therefore empty here.
    fn run_user_traced_with(
        &self,
        user: u64,
        counters: &mut WorkloadCounters,
        recorder: RecorderKind,
        scratch: Option<&ShardScratch>,
        mut ring: Option<&mut obs::RingScratch>,
    ) -> UserTrace {
        let mut system = match scratch {
            Some(scratch) => self.system_for_user_in(user, scratch),
            None => self.system_for_user(user),
        };
        system.set_recorder(match recorder {
            RecorderKind::Ring => match ring.as_deref_mut() {
                Some(ring) => {
                    Recorder::ring_recycled(obs::recorder::DEFAULT_RING_CAPACITY, user, ring)
                }
                None => Recorder::ring_for_user(user),
            },
            RecorderKind::Disabled => Recorder::Disabled,
        });
        self.run_user_on(&mut system, user, counters);
        let recorder = system.take_recorder();
        let (events, dumps) = match ring {
            Some(ring) => recorder.into_parts_recycling(ring),
            None => recorder.into_parts(),
        };
        UserTrace {
            events,
            dumps,
            metrics: obs::Metrics::default(),
        }
    }
}

/// Shard-lifetime scratch state: memo tables for the pure, body-keyed
/// stages of the transaction pipeline — the gateway's translation
/// (HTML→WML→WBXML, HTML→cHTML) and the browser's render. One scratch
/// lives per shard thread (or per island in the shared engine); the
/// `Rc` handles are cloned into every system the shard builds and never
/// cross threads.
///
/// This is the arena discipline of the F9 work: allocations that are
/// logically transaction-lifetime (parsed documents, encoded decks,
/// rendered lines) get built once per *distinct input* per shard and
/// replayed by refcount for the rest of the shard's users. Because the
/// memoised stages are pure functions of their keys, a hit is
/// byte-identical to a fresh computation — summaries, traces, and the
/// cross-thread F9 digest are unchanged by scratch attachment, shard
/// layout, or population (pinned by tests below).
#[derive(Debug, Default)]
pub struct ShardScratch {
    transcode: SharedTranscodeMemo,
    render: Rc<RefCell<RenderMemo>>,
}

impl ShardScratch {
    /// A fresh, empty scratch for one shard thread or island.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches this scratch's memos to a freshly built system.
    fn attach(&self, system: &mut McSystem) {
        system.attach_shard_memos(self.transcode.clone(), self.render.clone());
    }

    /// Translation lookups answered from the memo, across every system
    /// this scratch served.
    pub fn transcode_hits(&self) -> u64 {
        self.transcode.borrow().hits()
    }

    /// Render lookups answered from the memo.
    pub fn render_hits(&self) -> u64 {
        self.render.borrow().hits()
    }
}

/// One user's telemetry from a traced run: sim-time trace events (in
/// emission order), flight-recorder dumps for failed transactions, and
/// the metrics counters/histograms the layers published.
#[derive(Debug, Default)]
pub struct UserTrace {
    /// Trace events in sim-time order for this user.
    pub events: Vec<obs::TraceEvent>,
    /// Flight-recorder dumps, one per failed transaction.
    pub dumps: Vec<obs::FlightDump>,
    /// Counters and histograms published while this user ran.
    pub metrics: obs::Metrics,
}

/// The merged telemetry of a traced fleet run.
///
/// Per-user traces are concatenated in **user-index order** and metrics
/// merged the same way, so — like [`FleetSummary`] — a `FleetTrace` is
/// byte-for-byte identical however many threads executed the fleet
/// (pinned by `tests/trace_props.rs`).
#[derive(Debug, Default)]
pub struct FleetTrace {
    /// Every user's trace events, concatenated in user-index order.
    pub events: Vec<obs::TraceEvent>,
    /// Every flight-recorder dump, in user-index order.
    pub dumps: Vec<obs::FlightDump>,
    /// Fleet-wide merged metrics.
    pub metrics: obs::Metrics,
}

impl FleetTrace {
    /// Renders the fleet's events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        obs::export::to_jsonl(&self.events)
    }

    /// Renders the fleet's events as a Chrome `trace_event` JSON
    /// document for `chrome://tracing` / Perfetto.
    pub fn to_chrome_json(&self) -> String {
        obs::export::to_chrome_trace(&self.events)
    }
}

/// The deterministic, thread-count-independent result of a fleet run.
///
/// Two runs of the same [`Scenario`] compare equal however many threads
/// executed them — the property `tests/fleet_props.rs` pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// The scenario label this fleet executed.
    pub scenario: String,
    /// Number of simulated users.
    pub users: u64,
    /// The merged workload statistics across every user.
    pub workload: WorkloadSummary,
}

impl FleetSummary {
    /// Merges per-shard workload summaries (in shard-index order) into
    /// the fleet total.
    pub fn merge(scenario: &Scenario, shards: &[WorkloadSummary]) -> FleetSummary {
        let mut merger = FleetMerger::new();
        for (shard, summary) in shards.iter().enumerate() {
            merger.push(shard as u64, summary);
        }
        FleetSummary {
            scenario: scenario.label(),
            users: scenario.users,
            workload: merger.finish().summary(scenario.label()),
        }
    }

    /// Transactions attempted across the fleet.
    pub fn transactions(&self) -> u64 {
        self.workload.attempted as u64
    }
}

/// A fleet execution: the deterministic summary plus the (inherently
/// machine-dependent) wall-clock measurements.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// OS threads the fleet was sharded across.
    pub threads: usize,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// The thread-count-independent merged result.
    pub summary: FleetSummary,
}

impl FleetReport {
    /// Transactions executed per wall-clock second.
    pub fn throughput_tps(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.summary.transactions() as f64 / self.wall_secs
    }
}

/// Number of worker threads [`FleetRunner`] uses by default: the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Which observability sink each user gets in a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecorderKind {
    /// A per-user flight-recorder ring: sim-time spans, instants and
    /// failure dumps (the default).
    #[default]
    Ring,
    /// No recorder: the metrics registry still runs, but no trace
    /// events or dumps are captured — cheaper tracing for metric-only
    /// experiments.
    Disabled,
}

/// Execution mechanics for one fleet run: how many OS threads, whether
/// telemetry is captured, and through which recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Worker threads the fleet is sharded across (clamped to ≥ 1 and
    /// to the available parallel units: users in an isolated world,
    /// islands in a shared one).
    pub threads: usize,
    /// Whether to run with the metrics registry and per-user recorders
    /// enabled and merge a [`FleetTrace`].
    pub traced: bool,
    /// The recorder installed per user when `traced` is set.
    pub recorder: RecorderKind,
    /// Fixed sim-time bin width for shared-resource time-series, or
    /// `None` (the default) for no telemetry. Only shared topologies
    /// have shared resources to sample; the isolated engine ignores it.
    pub telemetry_bin_ns: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: default_threads(),
            traced: false,
            recorder: RecorderKind::Ring,
            telemetry_bin_ns: None,
        }
    }
}

impl RunConfig {
    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables telemetry capture.
    #[must_use]
    pub fn traced(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }

    /// Selects the per-user recorder used when tracing.
    #[must_use]
    pub fn recorder(mut self, recorder: RecorderKind) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enables shared-resource time-series at the default bin width
    /// ([`obs::timeseries::DEFAULT_BIN_NS`]), or disables them.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry_bin_ns = enabled.then_some(obs::timeseries::DEFAULT_BIN_NS);
        self
    }

    /// Enables shared-resource time-series with an explicit bin width.
    #[must_use]
    pub fn telemetry_bin_ns(mut self, bin_ns: u64) -> Self {
        self.telemetry_bin_ns = Some(bin_ns);
        self
    }
}

/// Everything one fleet execution produced.
#[derive(Debug)]
pub struct FleetRun {
    /// The deterministic summary plus wall-clock measurements.
    pub report: FleetReport,
    /// Merged telemetry, present iff the run was traced.
    pub trace: Option<FleetTrace>,
    /// Shared-resource contention telemetry, present iff the topology
    /// was shared.
    pub contention: Option<ContentionStats>,
    /// Fixed-bin resource time-series (cell airtime, gateway CPU and
    /// cache hit-rate, host CPU and queue depth), present iff telemetry
    /// was requested on a shared topology. Merged across islands into
    /// canonical name order, so exports are byte-identical at any
    /// thread count.
    pub timeseries: Option<obs::Telemetry>,
}

/// The single entry point for executing fleets: a [`Scenario`] (who the
/// users are and what they run), a [`Topology`] (what infrastructure
/// they share), and a [`RunConfig`] (how the simulation executes).
///
/// Replaces the `fleet::run` / `run_on` / `run_traced_on` trio:
///
/// ```
/// use mcommerce_core::{FleetRunner, Scenario, Topology};
///
/// let scenario = Scenario::new("storefront").users(6).seed(9);
/// // Legacy per-user worlds (the default topology):
/// let isolated = FleetRunner::new(scenario.clone()).threads(2).run();
/// // The same population contending for one cell, gateway and host:
/// let shared = FleetRunner::new(scenario)
///     .topology(Topology::shared())
///     .threads(2)
///     .run();
/// assert_eq!(isolated.report.summary.users, 6);
/// assert!(shared.contention.unwrap().transactions > 0);
/// ```
///
/// Every knob is plain data, so a runner can be built once and run
/// repeatedly; results are bit-identical for a fixed scenario, topology
/// and seed regardless of `threads`.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    scenario: Scenario,
    topology: Topology,
    config: RunConfig,
}

impl FleetRunner {
    /// A runner over `scenario` with the default isolated topology and
    /// default [`RunConfig`].
    pub fn new(scenario: Scenario) -> Self {
        FleetRunner {
            scenario,
            topology: Topology::isolated(),
            config: RunConfig::default(),
        }
    }

    /// Sets the infrastructure topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables telemetry capture.
    #[must_use]
    pub fn traced(mut self, traced: bool) -> Self {
        self.config.traced = traced;
        self
    }

    /// Selects the per-user recorder used when tracing.
    #[must_use]
    pub fn recorder(mut self, recorder: RecorderKind) -> Self {
        self.config.recorder = recorder;
        self
    }

    /// Enables shared-resource time-series at the default bin width.
    /// See [`RunConfig::telemetry`].
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.config = self.config.telemetry(enabled);
        self
    }

    /// Enables shared-resource time-series with an explicit bin width.
    #[must_use]
    pub fn telemetry_bin_ns(mut self, bin_ns: u64) -> Self {
        self.config = self.config.telemetry_bin_ns(bin_ns);
        self
    }

    /// Replaces the whole [`RunConfig`] at once.
    #[must_use]
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The scenario this runner executes.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Executes the fleet and returns everything it produced.
    ///
    /// Isolated topologies run the legacy per-user engine; shared
    /// topologies run the island engine in [`crate::shared`]. Either
    /// way the summary — and the trace and time-series, when captured —
    /// is byte-identical at any thread count.
    pub fn run(&self) -> FleetRun {
        if self.topology.is_shared() {
            self.run_shared()
        } else if self.config.traced {
            let (report, trace) = self.run_isolated_traced();
            FleetRun {
                report,
                trace: Some(trace),
                contention: None,
                timeseries: None,
            }
        } else {
            FleetRun {
                report: self.run_isolated(),
                trace: None,
                contention: None,
                timeseries: None,
            }
        }
    }

    /// The legacy per-user engine: users sharded across threads in
    /// contiguous index ranges, per-shard counters **streamed** back to
    /// the coordinator as each shard completes and folded in shard-index
    /// order through [`FleetMerger`] — the merge overlaps the slowest
    /// shard's tail instead of waiting for it.
    fn run_isolated(&self) -> FleetReport {
        let scenario = &self.scenario;
        let started = Instant::now();
        let shards = self.config.threads.clamp(1, scenario.users.max(1) as usize);
        let chunk = scenario.users.div_ceil(shards as u64).max(1);

        let mut merger = FleetMerger::new();
        thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(u64, WorkloadCounters)>();
            for shard in 0..shards as u64 {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut counters = WorkloadCounters::default();
                    let scratch = ShardScratch::new();
                    let lo = shard * chunk;
                    let hi = (lo + chunk).min(scenario.users);
                    for user in lo..hi {
                        scenario.run_user_in(user, &mut counters, &scratch);
                    }
                    // The receiver outlives the scope, so a send only
                    // fails after a coordinator panic — already fatal.
                    let _ = tx.send((shard, counters));
                });
            }
            drop(tx);
            // Merge in arrival order while late shards still run; the
            // merger's reorder buffer restores shard-index order. The
            // channel closes when the last shard drops its sender.
            for (shard, counters) in rx {
                merger.push_counters(shard, counters);
            }
        });

        FleetReport {
            threads: shards,
            wall_secs: started.elapsed().as_secs_f64(),
            summary: FleetSummary {
                scenario: scenario.label(),
                users: scenario.users,
                workload: merger.finish().summary(scenario.label()),
            },
        }
    }

    /// The legacy per-user engine with telemetry: identical sharding to
    /// [`FleetRunner::run_isolated`], but each user's trace is sent to
    /// the coordinator the moment that user finishes. [`TraceMerger`]
    /// streams arrivals into the fleet trace in global user-index order
    /// — the canonical merge discipline — so at no point does any shard
    /// hold its whole population's telemetry, which at fleet scale was
    /// the run's peak-memory high-water mark.
    fn run_isolated_traced(&self) -> (FleetReport, FleetTrace) {
        let scenario = &self.scenario;
        let recorder = self.config.recorder;
        let started = Instant::now();
        let shards = self.config.threads.clamp(1, scenario.users.max(1) as usize);
        let chunk = scenario.users.div_ceil(shards as u64).max(1);

        enum ShardMsg {
            /// One user finished; the box keeps the channel payload small.
            User(u64, Box<UserTrace>),
            /// A whole shard finished: its counters and its accumulated
            /// metrics registry are ready to fold.
            Done(u64, WorkloadCounters, Box<Metrics>),
        }

        let mut fleet_merger = FleetMerger::new();
        let mut trace_merger = TraceMerger::for_users(scenario.users);
        let mut shard_metrics: Vec<(u64, Metrics)> = Vec::new();
        thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            for shard in 0..shards as u64 {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut counters = WorkloadCounters::default();
                    let scratch = ShardScratch::new();
                    let mut ring = obs::RingScratch::default();
                    // One metrics scope for the whole shard: the
                    // registry accumulates across users and drains
                    // once, instead of paying a take-and-merge per
                    // user. `Metrics::merge` is commutative, so the
                    // fleet totals are unchanged.
                    let guard = obs::metrics::enable();
                    let lo = shard * chunk;
                    let hi = (lo + chunk).min(scenario.users);
                    for user in lo..hi {
                        let trace = scenario.run_user_traced_with(
                            user,
                            &mut counters,
                            recorder,
                            Some(&scratch),
                            Some(&mut ring),
                        );
                        let _ = tx.send(ShardMsg::User(user, Box::new(trace)));
                    }
                    drop(guard);
                    let _ = tx.send(ShardMsg::Done(
                        shard,
                        counters,
                        Box::new(obs::metrics::take()),
                    ));
                });
            }
            drop(tx);
            for msg in rx {
                match msg {
                    ShardMsg::User(user, trace) => trace_merger.push(user, *trace),
                    ShardMsg::Done(shard, counters, metrics) => {
                        fleet_merger.push_counters(shard, counters);
                        shard_metrics.push((shard, *metrics));
                    }
                }
            }
        });
        let mut trace = trace_merger.finish();
        // Shard-index order for determinism's sake; the merge is
        // commutative anyway.
        shard_metrics.sort_unstable_by_key(|&(shard, _)| shard);
        for (_, metrics) in &shard_metrics {
            trace.metrics.merge(metrics);
        }

        (
            FleetReport {
                threads: shards,
                wall_secs: started.elapsed().as_secs_f64(),
                summary: FleetSummary {
                    scenario: scenario.label(),
                    users: scenario.users,
                    workload: fleet_merger.finish().summary(scenario.label()),
                },
            },
            trace,
        )
    }

    /// The shared-world island engine (see [`crate::shared`]): islands
    /// sharded across threads, outcomes merged in island-index order,
    /// traces re-sorted into global user-index order.
    fn run_shared(&self) -> FleetRun {
        let scenario = &self.scenario;
        let started = Instant::now();
        let islands = self.topology.host_count();
        let threads = self.config.threads.clamp(1, islands.max(1) as usize);

        let outcomes = shared::run_islands(
            scenario,
            &self.topology,
            threads,
            self.config.traced,
            self.config.recorder,
            self.config.telemetry_bin_ns,
        );

        // Users land in island order; the canonical trace order is the
        // global user index, same as the isolated engine. The merger's
        // reorder buffer restores it without a collect-then-sort pass.
        let mut counters = WorkloadCounters::default();
        let mut stats = ContentionStats::default();
        let mut island_metrics = obs::Metrics::default();
        let mut trace_merger = self
            .config
            .traced
            .then(|| TraceMerger::for_users(scenario.users));
        let mut timeseries = self.config.telemetry_bin_ns.map(obs::Telemetry::new);
        for outcome in outcomes {
            counters.merge(&outcome.counters);
            stats.merge(&outcome.stats);
            if let Some(merger) = trace_merger.as_mut() {
                for (user, trace) in outcome.traces {
                    merger.push(user, trace);
                }
            }
            if let Some(metrics) = outcome.metrics.as_ref() {
                island_metrics.merge(metrics);
            }
            // Island series are disjoint (names embed global resource
            // indices) and bins merge commutatively, so fold order is
            // irrelevant — the export walks names canonically anyway.
            if let (Some(merged), Some(island)) = (timeseries.as_mut(), outcome.telemetry) {
                merged.merge(island);
            }
        }
        // Metrics interleave inside an island, so they merge at island
        // granularity (island-index order) on top of the streamed trace.
        let trace = trace_merger.map(|merger| {
            let mut trace = merger.finish();
            trace.metrics.merge(&island_metrics);
            trace
        });

        let report = FleetReport {
            threads,
            wall_secs: started.elapsed().as_secs_f64(),
            summary: FleetSummary {
                scenario: scenario.label(),
                users: scenario.users,
                workload: counters.summary(scenario.label()),
            },
        };
        FleetRun {
            report,
            trace,
            contention: Some(stats),
            timeseries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario::new("unit")
            .app(Category::Commerce)
            .users(6)
            .sessions_per_user(2)
            .seed(7)
    }

    // Thin helpers over the FleetRunner entry point keep the
    // assertions below readable.
    fn run_on(scenario: &Scenario, threads: usize) -> FleetReport {
        FleetRunner::new(scenario.clone())
            .threads(threads)
            .run()
            .report
    }

    fn run_traced_on(scenario: &Scenario, threads: usize) -> (FleetReport, FleetTrace) {
        let run = FleetRunner::new(scenario.clone())
            .threads(threads)
            .traced(true)
            .run();
        (run.report, run.trace.expect("traced run carries a trace"))
    }

    #[test]
    fn untraced_runs_carry_no_trace_or_contention() {
        let run = FleetRunner::new(small()).threads(2).run();
        assert!(run.trace.is_none());
        assert!(run.contention.is_none());
        assert!(run.timeseries.is_none());
    }

    #[test]
    fn disabled_recorder_keeps_metrics_but_drops_events() {
        let run = FleetRunner::new(small())
            .threads(2)
            .traced(true)
            .recorder(RecorderKind::Disabled)
            .run();
        let trace = run.trace.expect("traced");
        assert!(trace.events.is_empty());
        assert!(trace.dumps.is_empty());
        assert!(trace.metrics.counter("station.transactions") > 0);
    }

    #[test]
    fn shared_topology_produces_contention_stats() {
        let run = FleetRunner::new(small())
            .topology(Topology::shared())
            .threads(2)
            .run();
        let stats = run.contention.expect("shared runs report contention");
        assert_eq!(stats.transactions, 24);
        assert_eq!(run.report.summary.users, 6);
        assert!(run.report.summary.workload.success_rate() > 0.99);
    }

    #[test]
    fn fleet_runs_and_users_succeed() {
        let report = run_on(&small(), 2);
        let s = &report.summary;
        assert_eq!(s.users, 6);
        // PaymentsApp sessions are two steps each: 6 users × 2 sessions × 2.
        assert_eq!(s.transactions(), 24);
        assert_eq!(s.workload.succeeded, 24, "{:?}", s.workload.counters.failures);
        assert!(report.wall_secs >= 0.0);
    }

    #[test]
    fn shard_count_does_not_change_the_summary() {
        let scenario = small();
        let one = run_on(&scenario, 1).summary;
        let three = run_on(&scenario, 3).summary;
        let many = run_on(&scenario, 64).summary; // clamped to one per user
        assert_eq!(one, three);
        assert_eq!(one, many);
    }

    #[test]
    fn users_are_independent_worlds() {
        // Same scenario, disjoint user prefixes: the first users' results
        // are unchanged by how many other users exist.
        let a = {
            let mut c = WorkloadCounters::default();
            small().users(2).run_user(1, &mut c);
            c
        };
        let b = {
            let mut c = WorkloadCounters::default();
            small().users(100).run_user(1, &mut c);
            c
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differentiate_fleets() {
        let x = run_on(&small().seed(1), 2).summary;
        let y = run_on(&small().seed(2), 2).summary;
        // Same shape of workload…
        assert_eq!(x.transactions(), y.transactions());
        // …but different stochastic outcomes (latency streams differ).
        assert_ne!(x.workload.counters.latency_ns, y.workload.counters.latency_ns);
    }

    #[test]
    fn every_category_fleet_completes() {
        for category in Category::ALL {
            let report = run_on(
                &Scenario::new("breadth").app(category).users(2).seed(11),
                2,
            );
            assert!(
                report.summary.workload.success_rate() > 0.95,
                "{category}: {:?}",
                report.summary.workload.counters.failures
            );
        }
    }

    #[test]
    fn secure_fleets_cost_more_energy() {
        let base = Scenario::new("wtls").users(4).sessions_per_user(2).seed(3);
        let plain = run_on(&base.clone(), 2).summary;
        let secure = run_on(&base.secure(true), 2).summary;
        assert!(
            secure.workload.energy_mean_j > plain.workload.energy_mean_j,
            "{} !> {}",
            secure.workload.energy_mean_j,
            plain.workload.energy_mean_j
        );
    }

    #[test]
    fn tracing_does_not_change_the_workload() {
        let scenario = small();
        let mut plain = WorkloadCounters::default();
        scenario.run_user(3, &mut plain);
        let mut traced = WorkloadCounters::default();
        let trace = scenario.run_user_traced(3, &mut traced);
        assert_eq!(plain, traced, "recorder must only observe");
        assert!(!trace.events.is_empty());
        assert!(trace.metrics.counter("station.transactions") > 0);
    }

    #[test]
    fn traced_fleet_matches_untraced_summary() {
        let scenario = small();
        let untraced = run_on(&scenario, 2).summary;
        let (report, trace) = run_traced_on(&scenario, 2);
        assert_eq!(report.summary, untraced);
        assert_eq!(
            trace.metrics.counter("station.transactions"),
            untraced.transactions()
        );
        // Every event carries the layer taxonomy; spot-check the first
        // transaction traverses wireless and host layers.
        use obs::Layer;
        assert!(trace.events.iter().any(|e| e.layer == Layer::Wireless));
        assert!(trace.events.iter().any(|e| e.layer == Layer::Host));
        assert!(trace.events.iter().any(|e| e.layer == Layer::Application));
    }

    #[test]
    fn zero_fault_plan_and_none_policy_are_byte_identical_to_defaults() {
        let plain = run_on(&small(), 2).summary;
        let armed = run_on(
            &small()
                .faults(faults::FaultPlan::none())
                .retry(faults::RetryPolicy::none()),
            2,
        )
        .summary;
        assert_eq!(plain, armed);
    }

    #[test]
    fn retry_policy_improves_availability_under_a_fault_storm() {
        use crate::system::MiddlewareKind;
        let storm = faults::FaultPlan::storm(77, simnet::SimDuration::from_secs(60), 1.5);
        let base = small()
            .users(8)
            .sessions_per_user(8)
            .think_time(3.0)
            .faults(storm);
        let bare = run_on(&base.clone(), 2).summary;
        let hardened = run_on(
            &base
                .retry(faults::RetryPolicy::standard())
                .fallback_middleware(MiddlewareKind::WapTextual),
            2,
        )
        .summary;
        assert!(
            hardened.workload.success_rate() > bare.workload.success_rate(),
            "retry {} must beat bare {} ({:?})",
            hardened.workload.success_rate(),
            bare.workload.success_rate(),
            bare.workload.counters.failures,
        );
        assert!(hardened.workload.counters.retries > 0);
        assert_eq!(bare.workload.counters.retries, 0);
    }

    #[test]
    fn workload_retry_counters_match_the_policy_metric() {
        let storm = faults::FaultPlan::storm(77, simnet::SimDuration::from_secs(60), 1.5);
        let scenario = small()
            .users(6)
            .sessions_per_user(6)
            .think_time(3.0)
            .faults(storm)
            .retry(faults::RetryPolicy::standard())
            .fallback_middleware(MiddlewareKind::WapTextual);
        let (report, trace) = run_traced_on(&scenario, 2);
        let counters = &report.summary.workload.counters;
        assert!(counters.retries > 0);
        // Every re-drive increments `policy.retries` exactly once, and
        // the counter fold adds exactly attempts−1 per settled
        // transaction: a degraded-fallback success is one retry, never
        // a double count. The two tallies must agree.
        assert_eq!(trace.metrics.counter("policy.retries"), counters.retries);
    }

    #[test]
    fn cached_fleets_hit_every_cache_layer() {
        use crate::system::CachePolicy;
        // Standard policy: the gateway cache intercepts repeat GETs
        // before they reach the host.
        let scenario = small()
            .users(3)
            .sessions_per_user(3)
            .cache(CachePolicy::standard());
        let (report, trace) = run_traced_on(&scenario, 2);
        assert!(report.summary.workload.success_rate() > 0.99);
        assert!(trace.metrics.counter("middleware.cache.hits") > 0);
        // The gateway-cache span shows up on the sim-time timeline.
        assert!(trace.events.iter().any(|e| e.name == "gateway_cache"));

        // Gateway TTL zero: repeat GETs reach the host and the page
        // cache answers them instead.
        let host_only = CachePolicy {
            gateway_ttl: simnet::SimDuration::ZERO,
            ..CachePolicy::standard()
        };
        let (report, trace) = run_traced_on(&small().sessions_per_user(3).cache(host_only), 1);
        assert!(report.summary.workload.success_rate() > 0.99);
        assert_eq!(trace.metrics.counter("middleware.cache.hits"), 0);
        assert!(trace.metrics.counter("host.page_cache.hits") > 0);
    }

    #[test]
    fn faulted_fleets_are_thread_count_invariant() {
        let scenario = small()
            .users(6)
            .sessions_per_user(6)
            .think_time(4.0)
            .faults(faults::FaultPlan::storm(13, simnet::SimDuration::from_secs(90), 1.5))
            .retry(faults::RetryPolicy::standard())
            .fallback_middleware(crate::system::MiddlewareKind::WapTextual);
        let one = run_on(&scenario, 1).summary;
        let many = run_on(&scenario, 64).summary;
        assert_eq!(one, many);
    }

    #[test]
    fn scenario_system_is_a_usable_single_system() {
        use crate::system::CommerceSystem;
        let mut system = Scenario::new("solo").system_for_user(0);
        let report = system.execute(&middleware::MobileRequest::get("/shop"));
        assert!(report.success, "{:?}", report.failure);
        assert!(report.outcome.is_some());
    }
}
