//! Workload runner: drives application sessions through a commerce system.

use faults::RetryPolicy;
use rand::rngs::StdRng;

use crate::apps::{Application, Step};
use crate::report::{TransactionReport, WorkloadSummary};
use crate::system::{CommerceSystem, McSystem};

/// Marks `report` failed when the step's expectation is missing from the
/// rendered page. Narrow screens wrap words onto new lines, so the
/// comparison is whitespace-normalised.
pub(crate) fn check_expectation(report: &mut TransactionReport, step: &Step) {
    if !report.success {
        return;
    }
    if let Some(expect) = &step.expect {
        let page = normalise(report.page_text().unwrap_or_default());
        if !page.contains(&normalise(expect)) {
            report.success = false;
            report.failure = Some(format!("expected {expect:?} on page, got {:.60?}…", page));
        }
    }
}

/// Runs one session (a sequence of steps) through `system`, returning a
/// report per step. A step whose expectation is not met on the rendered
/// page is marked failed even if the transport succeeded.
pub fn run_session(system: &mut dyn CommerceSystem, steps: &[Step]) -> Vec<TransactionReport> {
    let mut reports = Vec::with_capacity(steps.len());
    for step in steps {
        let mut report = system.execute(&step.req);
        check_expectation(&mut report, step);
        reports.push(report);
    }
    reports
}

/// Runs one session through an [`McSystem`] under a [`RetryPolicy`]:
/// each step executes via [`McSystem::execute_with_retry`], so transient
/// injected faults are retried with backoff and degraded-path faults
/// fall back to the alternate middleware. Expectations are checked on
/// the settled (post-retry) report.
pub fn run_session_with_policy(
    system: &mut McSystem,
    steps: &[Step],
    policy: &RetryPolicy,
    rng: &mut StdRng,
) -> Vec<TransactionReport> {
    let mut reports = Vec::with_capacity(steps.len());
    for step in steps {
        let mut report = system.execute_with_retry(&step.req, policy, rng);
        check_expectation(&mut report, step);
        reports.push(report);
    }
    reports
}

/// Collapses all whitespace runs (including line breaks from screen
/// wrapping) into single spaces.
fn normalise(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Runs `app` sessions on an [`McSystem`] with user *think time* between
/// steps, draining the battery at idle power, until the battery dies or
/// `max_sessions` complete. Returns `(sessions completed, hours of use)`
/// — the §4.1 battery-life experiment.
pub fn run_until_battery_dies(
    system: &mut McSystem,
    app: &dyn Application,
    think_secs: f64,
    max_sessions: u64,
    seed: u64,
) -> (u64, f64) {
    let mut elapsed_secs = 0.0;
    for index in 0..max_sessions {
        let steps = app.session(seed, index);
        for step in &steps {
            if !system.idle(think_secs) {
                return (index, elapsed_secs / 3600.0);
            }
            elapsed_secs += think_secs;
            let report = system.execute(&step.req);
            elapsed_secs += report.total;
            if !report.success
                && report
                    .failure
                    .as_deref()
                    .is_some_and(|f| f.contains("battery"))
            {
                return (index, elapsed_secs / 3600.0);
            }
        }
    }
    (max_sessions, elapsed_secs / 3600.0)
}

/// Runs `sessions` sessions of `app` on an [`McSystem`] while the user
/// *walks*: before every step the walker advances and the station's
/// distance to its WLAN access point (assumed at the walk's origin) is
/// updated. Transactions attempted out of coverage fail and are counted —
/// the "ubiquitously" requirement measured against physics.
///
/// Returns the aggregated summary plus the farthest distance reached.
pub fn run_walking_workload(
    system: &mut McSystem,
    app: &dyn Application,
    walker: &mut wireless::mobility::Waypoint,
    standard: wireless::WlanStandard,
    step_secs: f64,
    sessions: u64,
    seed: u64,
) -> (WorkloadSummary, f64) {
    use crate::netpath::WirelessConfig;
    let origin = wireless::mobility::Point::new(0.0, 0.0);
    let mut reports = Vec::new();
    let mut max_distance = 0.0f64;
    for index in 0..sessions {
        for step in app.session(seed, index) {
            let position = walker.advance(step_secs);
            let distance = position.distance_to(origin);
            max_distance = max_distance.max(distance);
            system.set_wireless(WirelessConfig::Wlan {
                standard,
                distance_m: distance,
            });
            let mut report = system.execute(&step.req);
            if report.success {
                if let Some(expect) = &step.expect {
                    let page = normalise(report.page_text().unwrap_or_default());
                    if !page.contains(&normalise(expect)) {
                        report.success = false;
                        report.failure = Some(format!("expected {expect:?} missing"));
                    }
                }
            }
            reports.push(report);
        }
    }
    (
        WorkloadSummary::aggregate(
            format!("walking {} on {}", app.category(), standard),
            &reports,
        ),
        max_distance,
    )
}

/// Runs `sessions` sessions of `app` through `system` and aggregates.
///
/// The application must already be [installed](Application::install) on
/// the system's host.
pub fn run_workload(
    system: &mut dyn CommerceSystem,
    app: &dyn Application,
    sessions: u64,
    seed: u64,
) -> WorkloadSummary {
    let mut reports = Vec::new();
    for index in 0..sessions {
        let steps = app.session(seed, index);
        reports.extend(run_session(system, &steps));
    }
    WorkloadSummary::aggregate(
        format!("{} on {}", app.category(), system.label()),
        &reports,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{all_apps, PaymentsApp};
    use crate::netpath::{WiredPath, WirelessConfig};
    use crate::system::{EcSystem, McSystem};
    use hostsite::db::Database;
    use hostsite::HostComputer;
    
    use station::DeviceProfile;
    use wireless::WlanStandard;

    fn mc_system(host: HostComputer) -> McSystem {
        crate::system::SystemSpec::new()
            .wireless(WirelessConfig::Wlan {
                standard: WlanStandard::Dot11b,
                distance_m: 25.0,
            })
            .seed(11)
            .build(host)
    }

    #[test]
    fn payments_workload_completes_on_wap() {
        let mut host = HostComputer::new(Database::new(), 1);
        let app = PaymentsApp::new();
        app.install(&mut host);
        let mut system = mc_system(host);
        let summary = run_workload(&mut system, &app, 10, 42);
        assert_eq!(summary.attempted, 20); // two steps per session
        assert_eq!(summary.succeeded, 20, "all payment steps should pass");
        assert!(summary.latency_mean > 0.0);
    }

    #[test]
    fn all_eight_categories_run_on_the_mc_system() {
        // Table 1's whole catalogue on one host, one system.
        let mut host = HostComputer::new(Database::new(), 2);
        let apps = all_apps();
        for app in &apps {
            app.install(&mut host);
        }
        let mut system = mc_system(host);
        for app in &apps {
            let summary = run_workload(&mut system, app.as_ref(), 5, 7);
            assert!(
                summary.success_rate() > 0.95,
                "{}: success {:.2} ({} of {})",
                app.category(),
                summary.success_rate(),
                summary.succeeded,
                summary.attempted
            );
        }
    }

    #[test]
    fn failed_expectations_are_reported_as_failures() {
        let mut host = HostComputer::new(Database::new(), 3);
        let app = PaymentsApp::new();
        app.install(&mut host);
        let mut system = mc_system(host);
        let steps = vec![crate::apps::Step::expecting(
            middleware::MobileRequest::get("/shop"),
            "text that is definitely not on the page",
        )];
        let reports = run_session(&mut system, &steps);
        assert!(!reports[0].success);
        assert!(reports[0].failure.as_deref().unwrap().contains("expected"));
    }

    #[test]
    fn same_workload_runs_on_the_ec_baseline() {
        let mut host = HostComputer::new(Database::new(), 4);
        let app = PaymentsApp::new();
        app.install(&mut host);
        let mut system = EcSystem::new(host, WiredPath::wan());
        let summary = run_workload(&mut system, &app, 5, 9);
        assert_eq!(summary.succeeded, summary.attempted);
    }

    #[test]
    fn walking_user_succeeds_inside_coverage_and_fails_beyond() {
        use simnet::rng::rng_for;
        use wireless::mobility::{Point, Waypoint};

        let app = PaymentsApp::new();
        let mut host = HostComputer::new(Database::new(), 6);
        app.install(&mut host);
        let mut system = mc_system(host);

        // A walk confined to a 60 m box around the AP: always in coverage.
        let mut near_walk =
            Waypoint::new(Point::new(0.0, 0.0), 60.0, 60.0, 1.4, rng_for(21, "near"));
        let (near, near_max) = run_walking_workload(
            &mut system,
            &app,
            &mut near_walk,
            WlanStandard::Dot11b,
            30.0,
            8,
            22,
        );
        assert!(near_max < 100.0);
        assert_eq!(
            near.succeeded, near.attempted,
            "inside coverage everything works"
        );

        // A walk ranging out to 400 m: some attempts land out of coverage.
        let app2 = PaymentsApp::new();
        let mut host = HostComputer::new(Database::new(), 7);
        app2.install(&mut host);
        let mut system = mc_system(host);
        let mut far_walk =
            Waypoint::new(Point::new(0.0, 0.0), 150.0, 150.0, 10.0, rng_for(23, "far"));
        let (far, far_max) = run_walking_workload(
            &mut system,
            &app2,
            &mut far_walk,
            WlanStandard::Dot11b,
            30.0,
            8,
            24,
        );
        assert!(
            far_max > 100.0,
            "walk must leave coverage, reached {far_max}"
        );
        assert!(
            far.succeeded < far.attempted,
            "out-of-coverage attempts must fail"
        );
        assert!(far.succeeded > 0, "but in-coverage attempts still succeed");
    }

    #[test]
    fn workloads_run_on_imode_too() {
        let mut host = HostComputer::new(Database::new(), 5);
        let app = PaymentsApp::new();
        app.install(&mut host);
        let mut system = crate::system::SystemSpec::new()
            .middleware(crate::system::MiddlewareKind::IMode)
            .device(DeviceProfile::nokia_9290())
            .wireless(WirelessConfig::Cellular {
                standard: wireless::CellularStandard::Gprs,
            })
            .seed(12)
            .build(host);
        let summary = run_workload(&mut system, &app, 5, 13);
        assert_eq!(summary.succeeded, summary.attempted);
    }
}
