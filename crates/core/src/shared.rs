//! The shared-world contention engine.
//!
//! The legacy fleet engine gives every user a private world, so nothing
//! ever queues. This module runs a [`Scenario`] on a shared
//! [`Topology`]: stations in one cell contend for its airtime, one WAP
//! gateway transcodes for everyone behind it, and one host computer
//! (web server + database + caches) serves the whole population.
//!
//! # Islands
//!
//! The topology's modulo wiring partitions the world into **islands** —
//! one host, the gateways that reach it, their cells, and the users in
//! those cells. Nothing crosses an island boundary, so islands are the
//! unit of parallelism: each island is simulated sequentially and
//! deterministically on one thread, islands are distributed over
//! threads in contiguous index ranges, and island results are merged in
//! island-index order. That is the whole cross-shard story — the
//! deterministic "event exchange" degenerates to *no* exchange, by
//! construction (DESIGN.md §2.15 and the ADR discuss the alternatives).
//!
//! # Inside an island
//!
//! Each user still owns a per-user [`McSystem`] (their station, battery,
//! RNG streams — seeded by user index exactly as the legacy engine
//! does), but the *shared* pieces are swapped in around every
//! transaction: the island's one [`HostComputer`] replaces the user's
//! private host, and the gateway's one shared
//! [`ContentCache`](middleware::ContentCache) replaces the user's
//! private cache. A deterministic event queue keyed by
//! `(ready time, global user index)` decides who transacts next.
//!
//! The analytic transaction then executes atomically at its start time,
//! and contention is charged *post hoc*: the transaction's per-phase
//! service times are admitted, in path order (uplink → gateway → wired →
//! host → downlink), to FCFS single-server models of the cell, the
//! gateway and the host. The waits those admissions return are folded
//! into the transaction's latency and the user's clock. A zero-service
//! stage never touches its server, so with one user — or no overlap —
//! every wait is exactly zero and the shared world reproduces the
//! legacy per-user world bit for bit (pinned by
//! `tests/shared_world_props.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::thread;

use hostsite::db::Database;
use hostsite::HostComputer;
use middleware::ContentCache;
use obs::timeseries::{SeriesId, SeriesKind, Telemetry};
use obs::Recorder;
use simnet::contend::{DetQueue, FcfsServer};
use simnet::rng::{rng_for_indexed, sub_seed};
use wireless::CellAirtime;

use crate::apps::{for_category, Step};
use crate::fleet::{RecorderKind, Scenario, UserTrace};
use crate::report::{TransactionReport, WorkloadCounters};
use crate::system::{CommerceSystem, McSystem};
use crate::topology::Topology;
use crate::workload::check_expectation;

/// Contention telemetry a shared-world run accumulates, merged across
/// islands in island-index order (deterministic at any thread count).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentionStats {
    /// Transactions executed across the shared world.
    pub transactions: u64,
    /// Transactions that waited on at least one shared resource.
    pub contended_transactions: u64,
    /// Total medium-access wait behind shared cells, nanoseconds.
    pub cell_wait_ns: u64,
    /// Total queueing wait behind shared gateways, nanoseconds.
    pub gateway_wait_ns: u64,
    /// Total queueing wait behind shared hosts, nanoseconds.
    pub host_wait_ns: u64,
    /// Total airtime the cells actually carried, nanoseconds.
    pub cell_busy_ns: u64,
    /// Fresh lookups answered by the shared gateway caches.
    pub gateway_cache_hits: u64,
    /// Shared gateway-cache lookups that missed.
    pub gateway_cache_misses: u64,
    /// Islands the world decomposed into.
    pub islands: u64,
    /// The latest user sim-clock at the end of the run, nanoseconds.
    pub horizon_ns: u64,
}

impl ContentionStats {
    /// Total wait on every shared resource, nanoseconds.
    pub fn total_wait_ns(&self) -> u64 {
        self.cell_wait_ns + self.gateway_wait_ns + self.host_wait_ns
    }

    /// Hit rate of the shared gateway caches (0 when never consulted).
    pub fn gateway_hit_rate(&self) -> f64 {
        let total = self.gateway_cache_hits + self.gateway_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.gateway_cache_hits as f64 / total as f64
    }

    /// Folds another island's stats into this one (island order!).
    pub fn merge(&mut self, other: &ContentionStats) {
        self.transactions += other.transactions;
        self.contended_transactions += other.contended_transactions;
        self.cell_wait_ns += other.cell_wait_ns;
        self.gateway_wait_ns += other.gateway_wait_ns;
        self.host_wait_ns += other.host_wait_ns;
        self.cell_busy_ns += other.cell_busy_ns;
        self.gateway_cache_hits += other.gateway_cache_hits;
        self.gateway_cache_misses += other.gateway_cache_misses;
        self.islands += other.islands;
        self.horizon_ns = self.horizon_ns.max(other.horizon_ns);
    }
}

/// What one island's simulation produces.
pub(crate) struct IslandOutcome {
    pub counters: WorkloadCounters,
    /// `(global user index, trace)` pairs, present iff tracing was on.
    pub traces: Vec<(u64, UserTrace)>,
    /// Island-level metrics (users interleave inside an island, so
    /// metrics are per island, merged in island order).
    pub metrics: Option<obs::Metrics>,
    pub stats: ContentionStats,
    /// Fixed-bin resource series, present iff telemetry was on. Series
    /// names embed global resource indices, so island sets are disjoint
    /// and merge into one canonical fleet-wide set.
    pub telemetry: Option<Telemetry>,
}

/// The island's registered series handles plus the host queue-depth
/// tracker. Purely observational: it reads grant/wait results the
/// contention engine already computed and never feeds anything back,
/// so enabling telemetry cannot perturb the simulation.
struct IslandTelemetry {
    t: Telemetry,
    /// Per local cell index: airtime busy fraction.
    cell_util: Vec<SeriesId>,
    /// Per local gateway index: transcode CPU busy fraction.
    gw_util: Vec<SeriesId>,
    /// Per local gateway index: shared content-cache hit rate.
    gw_cache: Vec<SeriesId>,
    /// Host CPU busy fraction.
    host_util: SeriesId,
    /// WAL (group-commit log) busy fraction; registered only when the
    /// scenario prices durability, so default-policy artefacts carry
    /// exactly the pre-WAL track set.
    host_wal_util: Option<SeriesId>,
    /// Host queue depth (jobs in service or waiting), sampled at each
    /// arrival.
    host_queue: SeriesId,
    /// Completion times of host jobs still in flight, for the
    /// queue-depth gauge.
    host_inflight: BinaryHeap<Reverse<u64>>,
}

impl IslandTelemetry {
    fn new(bin_ns: u64, island: u64, cells: &[u64], gateways: &[u64], priced_wal: bool) -> Self {
        let mut t = Telemetry::new(bin_ns);
        let cell_util = cells
            .iter()
            .map(|&c| t.register(&format!("cell{c:04}.airtime_util"), SeriesKind::Utilization))
            .collect();
        let gw_util = gateways
            .iter()
            .map(|&g| t.register(&format!("gateway{g:04}.cpu_util"), SeriesKind::Utilization))
            .collect();
        let gw_cache = gateways
            .iter()
            .map(|&g| t.register(&format!("gateway{g:04}.cache_hit_rate"), SeriesKind::Rate))
            .collect();
        let host_util = t.register(&format!("host{island:04}.cpu_util"), SeriesKind::Utilization);
        let host_wal_util = priced_wal
            .then(|| t.register(&format!("host{island:04}.wal_util"), SeriesKind::Utilization));
        let host_queue = t.register(&format!("host{island:04}.queue_depth"), SeriesKind::Gauge);
        IslandTelemetry {
            t,
            cell_util,
            gw_util,
            gw_cache,
            host_util,
            host_wal_util,
            host_queue,
            host_inflight: BinaryHeap::new(),
        }
    }

    /// Samples the host queue depth at `arrival_ns` given the job just
    /// admitted completes at `completion_ns`. Jobs whose completion
    /// time has passed leave the queue first, so the sample counts the
    /// admitted job plus everything still ahead of or beside it.
    fn sample_host_queue(&mut self, arrival_ns: u64, completion_ns: u64) {
        while let Some(&Reverse(done)) = self.host_inflight.peek() {
            if done > arrival_ns {
                break;
            }
            self.host_inflight.pop();
        }
        self.host_inflight.push(Reverse(completion_ns));
        let depth = self.host_inflight.len() as u64;
        self.t.sample(self.host_queue, arrival_ns, depth);
    }
}

/// One user's pending work, drained by the island event loop.
struct UserState {
    user: u64,
    cell: usize,
    gateway: usize,
    system: McSystem,
    actions: VecDeque<Action>,
    retry_rng: Option<rand::rngs::StdRng>,
}

enum Action {
    /// Think time between sessions, seconds.
    Think(f64),
    /// One application step.
    Txn(Box<Step>),
}

/// Runs every island of the shared world across `threads` OS threads,
/// returning island outcomes in island-index order.
pub(crate) fn run_islands(
    scenario: &Scenario,
    topology: &Topology,
    threads: usize,
    traced: bool,
    recorder: RecorderKind,
    telemetry_bin_ns: Option<u64>,
) -> Vec<IslandOutcome> {
    let islands = topology.host_count();
    let workers = threads.clamp(1, islands.max(1) as usize);
    let chunk = islands.div_ceil(workers as u64).max(1);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers as u64)
            .map(|worker| {
                let scenario = &*scenario;
                let topology = &*topology;
                scope.spawn(move || {
                    let lo = worker * chunk;
                    let hi = (lo + chunk).min(islands);
                    (lo..hi)
                        .map(|island| {
                            run_island(
                                scenario,
                                topology,
                                island,
                                traced,
                                recorder,
                                telemetry_bin_ns,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("island worker panicked"))
            .collect()
    })
}

/// Simulates one island sequentially and deterministically.
fn run_island(
    scenario: &Scenario,
    topology: &Topology,
    island: u64,
    traced: bool,
    recorder: RecorderKind,
    telemetry_bin_ns: Option<u64>,
) -> IslandOutcome {
    let users: Vec<u64> = (0..scenario.users)
        .filter(|&u| topology.island_of_user(u, scenario.users) == island)
        .collect();
    let mut stats = ContentionStats {
        islands: 1,
        ..ContentionStats::default()
    };
    if users.is_empty() {
        return IslandOutcome {
            counters: WorkloadCounters::default(),
            traces: Vec::new(),
            metrics: traced.then(obs::Metrics::default),
            stats,
            telemetry: telemetry_bin_ns.map(Telemetry::new),
        };
    }

    let app = for_category(scenario.app);

    // The island's shared host: same seed derivation as the legacy
    // engine gives user `island`'s private host, so a one-host,
    // one-user world is bit-identical to legacy user 0.
    let mut shared_host = HostComputer::new(
        Database::new(),
        sub_seed(scenario.seed, "fleet.host", island),
    );
    app.install(&mut shared_host);
    if scenario.cache.enabled && scenario.cache.host_ttl > simnet::SimDuration::ZERO {
        shared_host.web.configure_page_cache(
            scenario.cache.host_ttl.as_nanos(),
            scenario.cache.byte_budget,
        );
    } else {
        shared_host.web.disable_page_cache();
    }
    shared_host
        .web
        .db_mut()
        .set_query_cache(scenario.cache.enabled);
    // Seed rows installed above are already durable; only live-traffic
    // commits batch under a priced policy.
    shared_host.web.db_mut().set_durability(scenario.durability);

    // The island's shared infrastructure, indexed locally. Local order
    // follows global index order, so resource identity is canonical.
    let gateways: Vec<u64> = (0..topology.gateway_count())
        .filter(|&g| topology.host_of_gateway(g) == island)
        .collect();
    let cells: Vec<u64> = (0..topology.cell_count())
        .filter(|&c| gateways.contains(&topology.gateway_of_cell(c)))
        .collect();
    let mut cell_air: Vec<CellAirtime> = cells.iter().map(|_| CellAirtime::new()).collect();
    let mut gateway_cpu: Vec<FcfsServer> = gateways.iter().map(|_| FcfsServer::new()).collect();
    let mut gateway_caches: Vec<Option<ContentCache>> = gateways
        .iter()
        .map(|_| {
            (scenario.cache.enabled && scenario.cache.gateway_ttl > simnet::SimDuration::ZERO)
                .then(|| {
                    ContentCache::new(
                        scenario.cache.gateway_ttl.as_nanos(),
                        scenario.cache.byte_budget,
                    )
                })
        })
        .collect();
    let mut host = HostLanes {
        cpu: FcfsServer::new(),
        wal: FcfsServer::new(),
    };
    let mut telemetry = telemetry_bin_ns.map(|bin_ns| {
        IslandTelemetry::new(
            bin_ns,
            island,
            &cells,
            &gateways,
            !scenario.durability.is_zero_cost(),
        )
    });

    // Per-user state: the private system (station, battery, RNG streams
    // — exactly the legacy per-user build) plus the queued actions. The
    // island owns one scratch; memo hits replay byte-identically.
    let scratch = crate::fleet::ShardScratch::new();
    let mut states: Vec<UserState> = users
        .iter()
        .map(|&user| {
            let mut system = scenario.system_for_user_in(user, &scratch);
            if traced {
                system.set_recorder(match recorder {
                    RecorderKind::Ring => Recorder::ring_for_user(user),
                    RecorderKind::Disabled => Recorder::Disabled,
                });
            }
            let session_seed = sub_seed(scenario.seed, "fleet.session", user);
            let mut actions = VecDeque::new();
            for session in 0..scenario.sessions_per_user {
                if session > 0 && scenario.think_secs > 0.0 {
                    actions.push_back(Action::Think(scenario.think_secs));
                }
                for step in scenario.session_steps(app.as_ref(), session_seed, session) {
                    actions.push_back(Action::Txn(Box::new(step)));
                }
            }
            let cell = topology.cell_of_user(user, scenario.users);
            let gateway = topology.gateway_of_cell(cell);
            UserState {
                user,
                cell: cells.iter().position(|&c| c == cell).expect("own cell"),
                gateway: gateways
                    .iter()
                    .position(|&g| g == gateway)
                    .expect("own gateway"),
                system,
                actions,
                retry_rng: (!scenario.retry.is_none())
                    .then(|| rng_for_indexed(scenario.seed, "fleet.retry", user)),
            }
        })
        .collect();

    let metrics_guard = traced.then(obs::metrics::enable);

    // The deterministic event loop: earliest ready time first, global
    // user index breaking ties. Each user has at most one outstanding
    // event, so keys are unique.
    let mut queue = DetQueue::new();
    for state in &states {
        if !state.actions.is_empty() {
            queue.push(state.system.sim_clock_ns(), state.user);
        }
    }
    let mut counters = WorkloadCounters::default();
    while let Some((_, user)) = queue.pop() {
        let idx = states
            .binary_search_by_key(&user, |s| s.user)
            .expect("scheduled user exists");
        let state = &mut states[idx];
        match state.actions.pop_front().expect("scheduled user has work") {
            Action::Think(secs) => {
                state.system.idle(secs);
            }
            Action::Txn(step) => {
                let t0_ns = state.system.sim_clock_ns();
                let cache_before = telemetry
                    .as_ref()
                    .map(|_| cache_counters(&gateway_caches[state.gateway]));
                let mut report = execute_shared(
                    state,
                    &step,
                    scenario,
                    &mut shared_host,
                    &mut gateway_caches,
                );
                if let (Some(tele), Some((hits0, lookups0))) = (&mut telemetry, cache_before) {
                    let (hits, lookups) = cache_counters(&gateway_caches[state.gateway]);
                    let id = tele.gw_cache[state.gateway];
                    tele.t.record_rate(id, t0_ns, hits - hits0, lookups - lookups0);
                }
                check_expectation(&mut report, &step);
                charge_contention(
                    state,
                    &mut report,
                    &mut cell_air,
                    &mut gateway_cpu,
                    &mut host,
                    &mut stats,
                    telemetry.as_mut(),
                );
                counters.record(&report);
            }
        }
        if !state.actions.is_empty() {
            queue.push(state.system.sim_clock_ns(), state.user);
        }
    }

    drop(metrics_guard);
    let metrics = traced.then(obs::metrics::take);

    for cache in gateway_caches.iter().flatten() {
        stats.gateway_cache_hits += cache.hits();
        stats.gateway_cache_misses += cache.misses();
    }
    for cell in &cell_air {
        stats.cell_busy_ns += cell.busy_ns();
    }
    for state in &states {
        stats.horizon_ns = stats.horizon_ns.max(state.system.sim_clock_ns());
    }

    let traces = if traced {
        states
            .iter_mut()
            .map(|state| {
                let (events, dumps) = state.system.take_recorder().into_parts();
                (
                    state.user,
                    UserTrace {
                        events,
                        dumps,
                        metrics: obs::Metrics::default(),
                    },
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    IslandOutcome {
        counters,
        traces,
        metrics,
        stats,
        telemetry: telemetry.map(|tele| tele.t),
    }
}

/// `(hits, lookups)` of a shared gateway cache slot (zeros when the
/// gateway runs uncached).
fn cache_counters(cache: &Option<ContentCache>) -> (u64, u64) {
    cache
        .as_ref()
        .map_or((0, 0), |c| (c.hits(), c.hits() + c.misses()))
}

/// Executes one step with the island's shared host and shared gateway
/// cache swapped in around the user's private system.
fn execute_shared(
    state: &mut UserState,
    step: &Step,
    scenario: &Scenario,
    shared_host: &mut HostComputer,
    gateway_caches: &mut [Option<ContentCache>],
) -> TransactionReport {
    std::mem::swap(&mut state.system.host, shared_host);
    state
        .system
        .swap_gateway_cache(&mut gateway_caches[state.gateway]);
    let report = match &mut state.retry_rng {
        None => state.system.execute(&step.req),
        Some(rng) => state.system.execute_with_retry(&step.req, &scenario.retry, rng),
    };
    state
        .system
        .swap_gateway_cache(&mut gateway_caches[state.gateway]);
    std::mem::swap(&mut state.system.host, shared_host);
    report
}

/// The shared host's two serial lanes. The WAL is its own resource:
/// concurrent writers contend on the log tail, not on the host CPU —
/// and zero-service admissions are free, so the default durability
/// policy never touches the WAL lane.
struct HostLanes {
    cpu: FcfsServer,
    wal: FcfsServer,
}

/// Admits the transaction's per-phase service times to the shared FCFS
/// resources in path order and folds the resulting waits into the
/// report, the per-phase breakdown, and the user's clock. Zero-service
/// stages are skipped, so an uncontended transaction is untouched.
fn charge_contention(
    state: &mut UserState,
    report: &mut TransactionReport,
    cell_air: &mut [CellAirtime],
    gateway_cpu: &mut [FcfsServer],
    host: &mut HostLanes,
    stats: &mut ContentionStats,
    mut telemetry: Option<&mut IslandTelemetry>,
) {
    stats.transactions += 1;
    let end_ns = state.system.sim_clock_ns();
    let air_ns = to_ns(report.breakdown.wireless_secs);
    let up_ns = air_ns / 2;
    let down_ns = air_ns - up_ns;
    let gw_ns = to_ns(report.breakdown.middleware_secs);
    let wired_ns = to_ns(report.breakdown.wired_secs);
    let host_ns = to_ns(report.breakdown.host_secs);
    // The WAL share of the host phase serializes on the group-commit
    // log, not the CPU — a transaction that paid for an fsync holds the
    // log while others queue behind it. Zero under the default policy.
    let wal_ns = state.system.last_commit_ns().min(host_ns);
    let cpu_ns = host_ns - wal_ns;

    // Walk the path from the transaction's start, carrying waits
    // forward so a delayed uplink delays the gateway arrival, and so on.
    // Telemetry records each granted busy interval as it is computed —
    // reads only, in the same deterministic event order as the charges.
    let start_ns = end_ns.saturating_sub(to_ns(report.total));
    let mut cursor = start_ns;
    let up = cell_air[state.cell].request(cursor, up_ns);
    if let Some(tele) = telemetry.as_deref_mut() {
        tele.t.record_busy(tele.cell_util[state.cell], up.start_ns, up_ns);
    }
    cursor = up.start_ns + up_ns;
    let gw_wait = gateway_cpu[state.gateway].admit(cursor, gw_ns);
    if let Some(tele) = telemetry.as_deref_mut() {
        tele.t
            .record_busy(tele.gw_util[state.gateway], cursor + gw_wait, gw_ns);
    }
    cursor += gw_wait + gw_ns + wired_ns;
    let cpu_wait = host.cpu.admit(cursor, cpu_ns);
    if let Some(tele) = telemetry.as_deref_mut() {
        tele.t.record_busy(tele.host_util, cursor + cpu_wait, cpu_ns);
        if cpu_ns > 0 {
            tele.sample_host_queue(cursor, cursor + cpu_wait + cpu_ns);
        }
    }
    cursor += cpu_wait + cpu_ns;
    let wal_wait = host.wal.admit(cursor, wal_ns);
    if let Some(tele) = telemetry.as_deref_mut() {
        if let (Some(id), true) = (tele.host_wal_util, wal_ns > 0) {
            tele.t.record_busy(id, cursor + wal_wait, wal_ns);
        }
    }
    cursor += wal_wait + wal_ns;
    // Both host lanes fold into the report's host share.
    let host_wait = cpu_wait + wal_wait;
    let down = cell_air[state.cell].request(cursor, down_ns);
    if let Some(tele) = telemetry {
        tele.t
            .record_busy(tele.cell_util[state.cell], down.start_ns, down_ns);
    }

    let cell_wait = up.wait_ns + down.wait_ns;
    let total_wait = cell_wait + gw_wait + host_wait;
    stats.cell_wait_ns += cell_wait;
    stats.gateway_wait_ns += gw_wait;
    stats.host_wait_ns += host_wait;
    if total_wait > 0 {
        stats.contended_transactions += 1;
        report.total += total_wait as f64 / 1e9;
        report.breakdown.wireless_secs += cell_wait as f64 / 1e9;
        report.breakdown.middleware_secs += gw_wait as f64 / 1e9;
        report.breakdown.host_secs += host_wait as f64 / 1e9;
        // The user's clock moves past the waits (idle battery draw,
        // like any other waiting) — an uncontended transaction skips
        // this entirely, preserving bit-identity with the legacy world.
        state.system.idle(total_wait as f64 / 1e9);
    }
}

/// Seconds → whole nanoseconds, matching the engine's quantisation.
fn to_ns(secs: f64) -> u64 {
    (secs * 1e9).max(0.0).round() as u64
}
