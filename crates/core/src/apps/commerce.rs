//! Commerce: mobile transactions and payments (Table 1, row 1).
//!
//! A storefront whose checkout drives the full `security` payment
//! protocol: the application program signs an authorization request with
//! the station's shared MAC key, the gateway places a hold, capture
//! settles funds, and the rendered page carries the receipt's
//! authorization code. Tampering and replay failures surface as refused
//! checkouts — §8's integrity/authentication requirements, observable
//! from the handset.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

use hostsite::db::{DbError, Value};
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use security::{Mac, PaymentGateway, PaymentRequest};
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The payments application.
pub struct PaymentsApp {
    client_mac: Mac,
}

impl Default for PaymentsApp {
    fn default() -> Self {
        Self::new()
    }
}

impl PaymentsApp {
    /// Creates the application with its well-known (simulated) shared key.
    pub fn new() -> Self {
        PaymentsApp {
            client_mac: Mac::new(b"mc-payments-shared-key"),
        }
    }
}

/// Catalogue seeded at install time: `(sku, name, price_cents, stock)`.
const CATALOG: [(i64, &str, i64, i64); 4] = [
    (1, "wireless earpiece", 2_999, 40),
    (2, "leather PDA case", 1_950, 60),
    (3, "spare stylus pack", 650, 200),
    (4, "travel charger", 1_450, 80),
];

impl Application for PaymentsApp {
    fn category(&self) -> Category {
        Category::Commerce
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table(
            "products",
            &["sku", "name", "price_cents", "stock"],
            &["name"],
        )
        .expect("fresh database");
        for (sku, name, price, stock) in CATALOG {
            db.insert(
                "products",
                vec![sku.into(), name.into(), price.into(), stock.into()],
            )
            .expect("seed products");
        }
        // Full-text search over product names. Registration is engine
        // configuration (not journaled), so the pristine-page journal
        // pinning above is unaffected; a DbCrash drops the postings and
        // recovery re-registers and rebuilds them from the base rows.
        db.create_fts("products", "name").expect("fresh database");

        let gateway = {
            let mut gw = PaymentGateway::new(self.client_mac, Mac::new(b"mc-payments-gateway-key"));
            // Every simulated shopper shares one demo account per run.
            gw.open_account("shopper", 500_000);
            Rc::new(RefCell::new(gw))
        };
        let client_mac = self.client_mac;

        // The storefront page is a pure function of the products table.
        // Every freshly installed world starts from the same constant
        // CATALOG, so the pristine-state page is process-constant: it is
        // rendered once and shared across all worlds (and threads). The
        // journal length pins "pristine" exactly — any database write in
        // this world (a purchase, in shared topologies) falls back to a
        // fresh render of the current rows.
        static PRISTINE_SHOP_PAGE: OnceLock<HttpResponse> = OnceLock::new();
        let seeded_journal = host.web.db().journal().len();
        host.web
            .route_get("/shop", move |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                if ctx.db.journal().len() == seeded_journal {
                    if let Some(resp) = PRISTINE_SHOP_PAGE.get() {
                        return resp.clone();
                    }
                }
                let rows = match ctx.db.select("products", |_| true) {
                    Ok(rows) => rows,
                    Err(_) => return HttpResponse::error(Status::ServerError, "db error"),
                };
                let items: Vec<markup::Node> = rows
                    .iter()
                    .map(|r| {
                        html::a(
                            &format!("/shop/buy?sku={}", r[0]),
                            &format!("{} — {} cents ({} left)", r[1], r[2], r[3]),
                        )
                        .into()
                    })
                    .collect();
                let mut body = vec![html::h1("Mobile Shop").into()];
                body.extend(items);
                let resp = HttpResponse::from_page(html::page("Shop", body));
                if ctx.db.journal().len() == seeded_journal {
                    let _ = PRISTINE_SHOP_PAGE.set(resp.clone());
                }
                resp
            });

        // Catalog search: ranked full-text lookup over the inverted
        // index. Results are keyed by an unbounded query-string space,
        // so the page is marked `no_store` — neither the host page cache
        // nor the gateway content cache admits it; repeat queries are
        // served by the DB's capped search memo instead.
        host.web.route_get(
            "/shop/search",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(q) = req.param("q") else {
                    return HttpResponse::error(Status::BadRequest, "missing query");
                };
                let rows = match ctx.db.search("products", q) {
                    Ok(rows) => rows,
                    Err(_) => return HttpResponse::error(Status::ServerError, "db error"),
                };
                let items: Vec<markup::Node> = rows
                    .iter()
                    .map(|r| {
                        html::a(
                            &format!("/shop/buy?sku={}", r[0]),
                            &format!("{} — {} cents ({} left)", r[1], r[2], r[3]),
                        )
                        .into()
                    })
                    .collect();
                let mut body = vec![
                    html::h1("Search results").into(),
                    html::p(&format!("{} match(es)", rows.len())).into(),
                ];
                body.extend(items);
                HttpResponse::from_page(html::page("Search", body)).with_no_store()
            },
        );

        host.web.route_post(
            "/shop/buy",
            move |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(sku) = req.param("sku").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad sku");
                };
                let Some(nonce) = req.param("nonce").and_then(|s| s.parse::<u64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "missing payment nonce");
                };

                // Two-phase order: authorize the payment (places a hold,
                // no money moves), then reserve stock; if the reservation
                // fails, void the hold; only then capture. Neither a
                // refused payment nor an out-of-stock item leaves the
                // other side half-committed.
                let order_id = nonce; // unique per purchase in this workload
                let Ok(Some(product)) = ctx.db.get("products", &sku.into()) else {
                    return HttpResponse::error(Status::BadRequest, "no such product");
                };
                let Value::Int(price) = product[2] else {
                    return HttpResponse::error(Status::ServerError, "bad product row");
                };
                let name = product[1].to_string();

                let mut gw = gateway.borrow_mut();
                let pay_req =
                    PaymentRequest::signed(&client_mac, order_id, price as u64, "shopper", nonce);
                if let Err(e) = gw.authorize(&pay_req) {
                    return HttpResponse::error(
                        Status::BadRequest,
                        html::page(
                            "Refused",
                            vec![html::p(&format!("payment refused: {e}")).into()],
                        )
                        .to_markup(),
                    );
                }

                // Reserve the item under the hold.
                let reserved: Result<(), DbError> = ctx.db.transaction(|tx| {
                    let mut row =
                        (*tx.get("products", &sku.into())?.ok_or(DbError::NotFound)?).clone();
                    let Value::Int(stock) = row[3] else {
                        return Err(DbError::NotFound);
                    };
                    if stock == 0 {
                        return Err(DbError::NotFound);
                    }
                    row[3] = (stock - 1).into();
                    tx.update("products", row)
                });
                if reserved.is_err() {
                    let _ = gw.void(order_id);
                    return HttpResponse::error(Status::BadRequest, "out of stock");
                }
                let receipt = match gw.capture(order_id) {
                    Ok(r) => r,
                    Err(e) => {
                        return HttpResponse::error(
                            Status::ServerError,
                            html::page(
                                "Error",
                                vec![html::p(&format!("capture failed: {e}")).into()],
                            )
                            .to_markup(),
                        )
                    }
                };
                HttpResponse::from_page(html::page(
                    "Receipt",
                    vec![
                        html::h1("Payment complete").into(),
                        html::p(&format!("You bought: {name}")).into(),
                        html::p(&format!("Receipt auth code {}", receipt.auth_code)).into(),
                    ],
                ))
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "payments.session", index);
        let sku = CATALOG[rng.random_range(0..CATALOG.len())].0;
        let nonce: u64 = (index << 20) | rng.random_range(0..1u64 << 20);
        vec![
            Step::expecting(MobileRequest::get("/shop"), "Mobile Shop"),
            Step::expecting(
                MobileRequest::post(
                    "/shop/buy",
                    vec![
                        ("sku".into(), sku.to_string()),
                        ("nonce".into(), nonce.to_string()),
                    ],
                ),
                "Payment complete",
            ),
        ]
    }

    /// The search-heavy shape: browse → search → repeat the search
    /// (served warm by the DB memo when caching is on) → refine with a
    /// second term → purchase the found product. Every session carries a
    /// unique noise token in its queries, so the fleet's query strings
    /// form the high-cardinality key space the cache tiers must survive;
    /// the token matches no product (df = 0) and never changes results.
    fn search_session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "payments.search_session", index);
        let (sku, name, _, _) = CATALOG[rng.random_range(0..CATALOG.len())];
        let nonce: u64 = (index << 20) | rng.random_range(0..1u64 << 20);
        let mut words = name.split(' ');
        let first = words.next().expect("product names have words");
        let last = words.next_back().expect("product names have two words");
        let noise: u32 = rng.random();
        let q1 = format!("{last}+x{noise:08x}");
        let q2 = format!("{first}+{last}+x{noise:08x}");
        // Browse, search, re-check the results, refine to a narrower
        // query and re-check twice more while deciding, then buy. The
        // re-checks are what a covering-TTL search memo serves; the
        // noise token keeps the query strings high-cardinality across
        // sessions and users.
        vec![
            Step::expecting(MobileRequest::get("/shop"), "Mobile Shop"),
            Step::expecting(MobileRequest::get(&format!("/shop/search?q={q1}")), name),
            Step::expecting(MobileRequest::get(&format!("/shop/search?q={q1}")), name),
            Step::expecting(MobileRequest::get(&format!("/shop/search?q={q2}")), name),
            Step::expecting(MobileRequest::get(&format!("/shop/search?q={q2}")), name),
            Step::expecting(MobileRequest::get(&format!("/shop/search?q={q2}")), name),
            Step::expecting(
                MobileRequest::post(
                    "/shop/buy",
                    vec![
                        ("sku".into(), sku.to_string()),
                        ("nonce".into(), nonce.to_string()),
                    ],
                ),
                "Payment complete",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 1);
        PaymentsApp::new().install(&mut host);
        host
    }

    #[test]
    fn catalog_is_browsable() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/shop"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("wireless earpiece"));
        assert!(resp.body.contains("2999 cents"));
    }

    #[test]
    fn purchase_decrements_stock_and_issues_receipt() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/shop/buy",
            vec![
                ("sku".to_owned(), "3".to_owned()),
                ("nonce".to_owned(), "77".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        assert!(resp.body.contains("Receipt auth code"));
        assert!(resp.body.contains("spare stylus pack"));
        let row = host.web.db().get("products", &3.into()).unwrap().unwrap();
        assert_eq!(row[3], Value::Int(199));
    }

    #[test]
    fn replayed_nonce_is_refused_and_stock_restored_semantics_hold() {
        let mut host = host();
        let buy = |host: &mut HostComputer, nonce: &str| {
            host.process(HttpRequest::post(
                "/shop/buy",
                vec![
                    ("sku".to_owned(), "1".to_owned()),
                    ("nonce".to_owned(), nonce.to_owned()),
                ],
            ))
            .0
        };
        assert_eq!(buy(&mut host, "42").status, Status::Ok);
        let replay = buy(&mut host, "42");
        assert_eq!(replay.status, Status::BadRequest);
        assert!(replay.body.contains("replayed request"), "{}", replay.body);
        // The refused replay must not leak stock: exactly one unit sold.
        let row = host.web.db().get("products", &1.into()).unwrap().unwrap();
        assert_eq!(
            row[3],
            Value::Int(39),
            "refused payments must not consume stock"
        );
    }

    #[test]
    fn out_of_stock_refusal_releases_the_payment_hold() {
        let mut host = host();
        // Drain sku 1 (40 units).
        for nonce in 0..40 {
            let (resp, _) = host.process(HttpRequest::post(
                "/shop/buy",
                vec![
                    ("sku".to_owned(), "1".to_owned()),
                    ("nonce".to_owned(), nonce.to_string()),
                ],
            ));
            assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        }
        // 41st attempt: payment authorizes, stock fails, hold must be
        // voided so the shopper's funds are not stranded.
        let (resp, _) = host.process(HttpRequest::post(
            "/shop/buy",
            vec![
                ("sku".to_owned(), "1".to_owned()),
                ("nonce".to_owned(), "4141".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::BadRequest);
        // A follow-up purchase of another item with the full remaining
        // balance succeeds — proof the hold was released. 40 earpieces at
        // 2999 = 119,960 of the 500,000 balance; the voided 2999 hold
        // would otherwise still count against available funds.
        let (resp, _) = host.process(HttpRequest::post(
            "/shop/buy",
            vec![
                ("sku".to_owned(), "2".to_owned()),
                ("nonce".to_owned(), "4242".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
    }

    #[test]
    fn missing_parameters_are_rejected() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/shop/buy",
            vec![("sku".to_owned(), "1".to_owned())],
        ));
        assert_eq!(resp.status, Status::BadRequest);
        let (resp, _) = host.process(HttpRequest::post(
            "/shop/buy",
            vec![
                ("sku".to_owned(), "no".to_owned()),
                ("nonce".to_owned(), "1".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn sessions_use_distinct_nonces() {
        let app = PaymentsApp::new();
        let a = app.session(1, 0);
        let b = app.session(1, 1);
        let nonce = |steps: &[Step]| {
            steps[1]
                .req
                .form
                .as_ref()
                .unwrap()
                .iter()
                .find(|(k, _)| k == "nonce")
                .unwrap()
                .1
                .clone()
        };
        assert_ne!(nonce(&a), nonce(&b));
    }
}
