//! Enterprise resource planning (Table 1, row 3).
//!
//! "Resource management — all companies": field workers pull their task
//! queues onto handhelds, claim work, consume parts from stock, and close
//! tasks. Stock consumption and task state change in one transaction, so
//! the resource ledger never drifts.

use hostsite::db::{DbError, Value};
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The resource-management application.
#[derive(Debug, Default)]
pub struct ErpApp;

/// Parts stocked at install: `(part, quantity)`.
const STOCK: [(&str, i64); 3] = [("compressor", 40), ("valve kit", 120), ("filter", 300)];

/// Seeded tasks: `(id, site, part_needed)`.
const TASKS: [(i64, &str, &str); 60] = {
    // 60 tasks cycling over 3 sites and the 3 parts.
    let mut tasks = [(0i64, "", ""); 60];
    let sites = ["plant A", "plant B", "depot C"];
    let parts = ["compressor", "valve kit", "filter"];
    let mut i = 0;
    while i < 60 {
        tasks[i] = (i as i64, sites[i % 3], parts[(i / 3) % 3]);
        i += 1;
    }
    tasks
};

impl Application for ErpApp {
    fn category(&self) -> Category {
        Category::Erp
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table("stock", &["part", "qty"], &[])
            .expect("fresh database");
        db.create_table(
            "tasks",
            &["id", "site", "part", "state", "worker"],
            &["state"],
        )
        .expect("fresh database");
        for (part, qty) in STOCK {
            db.insert("stock", vec![part.into(), qty.into()])
                .expect("seed stock");
        }
        for (id, site, part) in TASKS {
            db.insert(
                "tasks",
                vec![
                    id.into(),
                    site.into(),
                    part.into(),
                    "open".into(),
                    "".into(),
                ],
            )
            .expect("seed tasks");
        }

        // Task queue for a worker: open tasks, first five.
        host.web.route_get(
            "/erp/tasks",
            |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let open = ctx
                    .db
                    .select_eq("tasks", "state", &"open".into())
                    .unwrap_or_default();
                let mut body: Vec<markup::Node> =
                    vec![html::h1(&format!("Open tasks: {}", open.len())).into()];
                for t in open.iter().take(5) {
                    body.push(
                        html::a(
                            &format!("/erp/complete?task={}", t[0]),
                            &format!("task {} at {} needs {}", t[0], t[1], t[2]),
                        )
                        .into(),
                    );
                }
                HttpResponse::ok(html::page("Task queue", body).to_markup())
            },
        );

        // Complete a task: consume its part from stock atomically.
        host.web.route_post(
            "/erp/complete",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(task) = req.param("task").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad task id");
                };
                let worker = req.param("worker").unwrap_or("crew").to_owned();
                let result: Result<String, DbError> = ctx.db.transaction(|tx| {
                    let mut row =
                        (*tx.get("tasks", &task.into())?.ok_or(DbError::NotFound)?).clone();
                    if row[3] != Value::Text("open".into()) {
                        return Err(DbError::NotFound); // already done
                    }
                    let part = row[2].to_string();
                    let mut stock = (*tx
                        .get("stock", &part.clone().into())?
                        .ok_or(DbError::NotFound)?)
                    .clone();
                    let Value::Int(qty) = stock[1] else {
                        return Err(DbError::NotFound);
                    };
                    if qty == 0 {
                        return Err(DbError::NotFound); // no parts left
                    }
                    stock[1] = (qty - 1).into();
                    tx.update("stock", stock)?;
                    row[3] = "done".into();
                    row[4] = worker.clone().into();
                    tx.update("tasks", row)?;
                    Ok(part)
                });
                match result {
                    Ok(part) => HttpResponse::ok(
                        html::page(
                            "Task complete",
                            vec![
                                html::p(&format!("task {task} closed, one {part} consumed")).into()
                            ],
                        )
                        .to_markup(),
                    ),
                    // A colleague got there first (or parts ran out): a normal
                    // outcome for field crews, reported as a page, not an error.
                    Err(_) => HttpResponse::ok(
                        html::page(
                            "Task unavailable",
                            vec![html::p(&format!(
                                "task {task} is already closed or out of parts"
                            ))
                            .into()],
                        )
                        .to_markup(),
                    ),
                }
            },
        );

        // Stock levels dashboard.
        host.web.route_get(
            "/erp/stock",
            |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let rows = ctx.db.select("stock", |_| true).unwrap_or_default();
                let pairs: Vec<(String, String)> = rows
                    .iter()
                    .map(|r| (r[0].to_string(), r[1].to_string()))
                    .collect();
                let table = html::table(pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())));
                HttpResponse::ok(
                    html::page("Stock", vec![html::h1("Stock levels").into(), table.into()])
                        .to_markup(),
                )
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "erp.session", index);
        let task = rng.random_range(0..TASKS.len() as i64);
        let worker = format!("crew-{}", rng.random_range(1..6u32));
        vec![
            Step::expecting(MobileRequest::get("/erp/tasks"), "Open tasks"),
            // A random task may already be closed by an earlier session —
            // judge this step by transport only and check the ledger via
            // the stock dashboard instead.
            Step::fire(MobileRequest::post(
                "/erp/complete",
                vec![("task".into(), task.to_string()), ("worker".into(), worker)],
            )),
            Step::expecting(MobileRequest::get("/erp/stock"), "Stock levels"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 8);
        ErpApp.install(&mut host);
        host
    }

    #[test]
    fn completing_a_task_consumes_stock() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/erp/complete",
            vec![
                ("task".to_owned(), "0".to_owned()),
                ("worker".to_owned(), "crew-1".to_owned()),
            ],
        ));
        assert!(resp.body.contains("task 0 closed"), "{}", resp.body);
        let stock = host
            .web
            .db()
            .get("stock", &"compressor".into())
            .unwrap()
            .unwrap();
        assert_eq!(stock[1], Value::Int(39));
        let task = host.web.db().get("tasks", &0.into()).unwrap().unwrap();
        assert_eq!(task[3], Value::Text("done".into()));
        assert_eq!(task[4], Value::Text("crew-1".into()));
    }

    #[test]
    fn double_completion_is_refused_and_consumes_nothing_extra() {
        let mut host = host();
        host.process(HttpRequest::post(
            "/erp/complete",
            vec![("task".to_owned(), "1".to_owned())],
        ));
        let (resp, _) = host.process(HttpRequest::post(
            "/erp/complete",
            vec![("task".to_owned(), "1".to_owned())],
        ));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("already closed"), "{}", resp.body);
        let stock = host
            .web
            .db()
            .get("stock", &"compressor".into())
            .unwrap()
            .unwrap();
        assert_eq!(stock[1], Value::Int(39));
    }

    #[test]
    fn task_queue_shrinks_as_work_completes() {
        let mut host = host();
        let (before, _) = host.process(HttpRequest::get("/erp/tasks"));
        assert!(before.body.contains("Open tasks: 60"));
        for id in 0..5 {
            host.process(HttpRequest::post(
                "/erp/complete",
                vec![("task".to_owned(), id.to_string())],
            ));
        }
        let (after, _) = host.process(HttpRequest::get("/erp/tasks"));
        assert!(after.body.contains("Open tasks: 55"), "{}", after.body);
    }

    #[test]
    fn stock_dashboard_reflects_the_ledger() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/erp/stock"));
        assert!(resp.body.contains("compressor"));
        assert!(resp.body.contains("40"));
    }
}
