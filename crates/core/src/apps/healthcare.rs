//! Health care: patient record accessing (Table 1, row 5).
//!
//! Clinicians pull patient records and append vitals from the bedside.
//! Records are behind an authentication realm (§7's "DBM-based
//! authentication databases") — unauthenticated access is refused, which
//! the session workflow exercises both ways.

use hostsite::db::{DbError, Value};
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The patient-records application.
#[derive(Debug, Default)]
pub struct HealthCareApp;

/// Clinician credentials provisioned at install.
pub const CLINICIAN: (&str, &str) = ("dr-grey", "rounds2003");

const PATIENTS: [(i64, &str, &str); 4] = [
    (1, "J. Doe", "post-op day 2, stable"),
    (2, "M. Smith", "admitted for observation"),
    (3, "A. Chen", "scheduled for imaging"),
    (4, "R. Patel", "discharge pending"),
];

impl Application for HealthCareApp {
    fn category(&self) -> Category {
        Category::HealthCare
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table("patients", &["id", "name", "notes"], &[])
            .expect("fresh database");
        db.create_table(
            "vitals",
            &["id", "patient", "pulse", "temp_x10"],
            &["patient"],
        )
        .expect("fresh database");
        for (id, name, notes) in PATIENTS {
            db.insert("patients", vec![id.into(), name.into(), notes.into()])
                .expect("seed patients");
        }

        // Everything under /ward requires clinician credentials.
        host.web.protect(
            "/ward",
            vec![(CLINICIAN.0.to_owned(), CLINICIAN.1.to_owned())],
        );

        host.web.route_get(
            "/ward/patient",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad patient id");
                };
                let Ok(Some(patient)) = ctx.db.get("patients", &id.into()) else {
                    return HttpResponse::error(Status::NotFound, "no such patient");
                };
                let vitals = ctx
                    .db
                    .select_eq("vitals", "patient", &id.into())
                    .unwrap_or_default();
                let mut body: Vec<markup::Node> = vec![
                    html::h1(&format!("Record: {}", patient[1])).into(),
                    html::p(&patient[2].to_string()).into(),
                ];
                for v in vitals.iter().rev().take(3) {
                    let temp = match v[3] {
                        Value::Int(t) => t as f64 / 10.0,
                        _ => 0.0,
                    };
                    body.push(html::p(&format!("vitals: pulse {} temp {:.1}", v[2], temp)).into());
                }
                HttpResponse::ok(html::page("Patient record", body).to_markup())
            },
        );

        host.web.route_post(
            "/ward/vitals",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(patient) = req.param("patient").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad patient id");
                };
                let pulse: i64 = req.param("pulse").and_then(|s| s.parse().ok()).unwrap_or(0);
                let temp_x10: i64 = req
                    .param("temp_x10")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(370);
                let result: Result<(), DbError> = ctx.db.transaction(|tx| {
                    tx.get("patients", &patient.into())?
                        .ok_or(DbError::NotFound)?;
                    let id = (tx.len("vitals")? as i64) + 1;
                    tx.insert(
                        "vitals",
                        vec![id.into(), patient.into(), pulse.into(), temp_x10.into()],
                    )
                });
                match result {
                    Ok(()) => HttpResponse::ok(
                        html::page(
                            "Vitals recorded",
                            vec![html::p(&format!("vitals recorded for patient {patient}")).into()],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::NotFound, "no such patient"),
                }
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "healthcare.session", index);
        let patient = PATIENTS[rng.random_range(0..PATIENTS.len())].0;
        let pulse = rng.random_range(55..110i64);
        vec![
            Step::expecting(
                MobileRequest::post(
                    "/ward/vitals",
                    vec![
                        ("patient".into(), patient.to_string()),
                        ("pulse".into(), pulse.to_string()),
                        ("temp_x10".into(), "368".into()),
                    ],
                )
                .with_auth(CLINICIAN.0, CLINICIAN.1),
                "vitals recorded",
            ),
            Step::expecting(
                MobileRequest::get(&format!("/ward/patient?id={patient}"))
                    .with_auth(CLINICIAN.0, CLINICIAN.1),
                "Record:",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 5);
        HealthCareApp.install(&mut host);
        host
    }

    #[test]
    fn unauthenticated_access_is_refused() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/ward/patient?id=1"));
        assert_eq!(resp.status, Status::Unauthorized);
        let (resp, _) =
            host.process(HttpRequest::get("/ward/patient?id=1").with_auth("dr-grey", "wrongpass"));
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn clinician_reads_records_and_appends_vitals() {
        let mut host = host();
        host.process(
            HttpRequest::post(
                "/ward/vitals",
                vec![
                    ("patient".to_owned(), "2".to_owned()),
                    ("pulse".to_owned(), "72".to_owned()),
                    ("temp_x10".to_owned(), "371".to_owned()),
                ],
            )
            .with_auth(CLINICIAN.0, CLINICIAN.1),
        );
        let (resp, _) = host
            .process(HttpRequest::get("/ward/patient?id=2").with_auth(CLINICIAN.0, CLINICIAN.1));
        assert!(resp.body.contains("Record: M. Smith"));
        assert!(resp.body.contains("pulse 72"));
        assert!(resp.body.contains("temp 37.1"));
    }

    #[test]
    fn vitals_for_unknown_patient_roll_back() {
        let mut host = host();
        let (resp, _) = host.process(
            HttpRequest::post(
                "/ward/vitals",
                vec![("patient".to_owned(), "99".to_owned())],
            )
            .with_auth(CLINICIAN.0, CLINICIAN.1),
        );
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(host.web.db().len("vitals").unwrap(), 0);
    }

    #[test]
    fn record_shows_only_recent_vitals() {
        let mut host = host();
        for pulse in 60..70 {
            host.process(
                HttpRequest::post(
                    "/ward/vitals",
                    vec![
                        ("patient".to_owned(), "1".to_owned()),
                        ("pulse".to_owned(), pulse.to_string()),
                    ],
                )
                .with_auth(CLINICIAN.0, CLINICIAN.1),
            );
        }
        let (resp, _) = host
            .process(HttpRequest::get("/ward/patient?id=1").with_auth(CLINICIAN.0, CLINICIAN.1));
        assert!(resp.body.contains("pulse 69"));
        assert!(
            !resp.body.contains("pulse 60"),
            "only the latest three show"
        );
    }
}
