//! Education: mobile classrooms and labs (Table 1, row 2).
//!
//! Students pull lesson cards from the field and submit quiz answers;
//! scores accumulate per student. Lessons are deliberately text-heavy
//! (multi-card decks after WAP translation) so this workload exercises
//! deck pagination on small devices.

use hostsite::db::{DbError, Value};
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The mobile-classroom application.
#[derive(Debug, Default)]
pub struct EducationApp;

/// Course id, title, and the correct answer to its quiz.
const COURSES: [(i64, &str, &str); 3] = [
    (1, "Wireless networks 101", "gateway"),
    (2, "Mobile commerce basics", "middleware"),
    (3, "Handheld programming", "battery"),
];

impl Application for EducationApp {
    fn category(&self) -> Category {
        Category::Education
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table("courses", &["id", "title", "answer"], &[])
            .expect("fresh database");
        db.create_table("scores", &["student", "points"], &[])
            .expect("fresh database");
        for (id, title, answer) in COURSES {
            db.insert("courses", vec![id.into(), title.into(), answer.into()])
                .expect("seed courses");
        }

        host.web.route_get(
            "/learn/lesson",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("course").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad course id");
                };
                let Ok(Some(course)) = ctx.db.get("courses", &id.into()) else {
                    return HttpResponse::error(Status::NotFound, "no such course");
                };
                let mut body: Vec<markup::Node> = vec![html::h1(&course[1].to_string()).into()];
                for section in 1..=6 {
                    body.push(
                        html::p(&format!(
                            "Section {section}: the key concept here is explained at length, \
                         with worked examples a student can follow on a handheld screen \
                         between classes or on the bus."
                        ))
                        .into(),
                    );
                }
                body.push(
                    html::form(&format!("/learn/quiz?course={id}"), "answer", "Submit").into(),
                );
                HttpResponse::ok(html::page("Lesson", body).to_markup())
            },
        );

        host.web.route_post(
            "/learn/quiz",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("course").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad course id");
                };
                let student = req.param("student").unwrap_or("anon").to_owned();
                let answer = req.param("answer").unwrap_or("").to_owned();
                let Ok(Some(course)) = ctx.db.get("courses", &id.into()) else {
                    return HttpResponse::error(Status::NotFound, "no such course");
                };
                let correct = course[2] == Value::Text(answer.clone());
                if correct {
                    let result: Result<i64, DbError> = ctx.db.transaction(|tx| {
                        let points = match tx.get("scores", &student.clone().into())? {
                            Some(row) => match row[1] {
                                Value::Int(p) => p,
                                _ => 0,
                            },
                            None => {
                                tx.insert("scores", vec![student.clone().into(), 0i64.into()])?;
                                0
                            }
                        };
                        tx.update("scores", vec![student.clone().into(), (points + 10).into()])?;
                        Ok(points + 10)
                    });
                    match result {
                        Ok(points) => HttpResponse::ok(
                            html::page(
                                "Quiz result",
                                vec![html::p(&format!(
                                    "correct! {student} now has {points} points"
                                ))
                                .into()],
                            )
                            .to_markup(),
                        ),
                        Err(_) => HttpResponse::error(Status::ServerError, "db error"),
                    }
                } else {
                    HttpResponse::ok(
                        html::page(
                            "Quiz result",
                            vec![html::p("not quite - review the lesson and retry").into()],
                        )
                        .to_markup(),
                    )
                }
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "education.session", index);
        let (course, _, answer) = COURSES[rng.random_range(0..COURSES.len())];
        let student = format!("student-{}", index % 20);
        vec![
            Step::expecting(
                MobileRequest::get(&format!("/learn/lesson?course={course}")),
                "Section 1",
            ),
            Step::expecting(
                MobileRequest::post(
                    &format!("/learn/quiz?course={course}"),
                    vec![
                        ("student".into(), student),
                        ("answer".into(), answer.into()),
                    ],
                ),
                "correct!",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 7);
        EducationApp.install(&mut host);
        host
    }

    #[test]
    fn lessons_are_long_form_content() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/learn/lesson?course=1"));
        assert!(resp.body.contains("Section 6"));
        assert!(
            resp.body.len() > 800,
            "lesson should be deck-paginating size"
        );
    }

    #[test]
    fn correct_answers_accumulate_points() {
        let mut host = host();
        for _ in 0..3 {
            host.process(HttpRequest::post(
                "/learn/quiz?course=2",
                vec![
                    ("student".to_owned(), "sam".to_owned()),
                    ("answer".to_owned(), "middleware".to_owned()),
                ],
            ));
        }
        let row = host.web.db().get("scores", &"sam".into()).unwrap().unwrap();
        assert_eq!(row[1], Value::Int(30));
    }

    #[test]
    fn wrong_answers_score_nothing() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/learn/quiz?course=1",
            vec![
                ("student".to_owned(), "kim".to_owned()),
                ("answer".to_owned(), "router".to_owned()),
            ],
        ));
        assert!(resp.body.contains("not quite"));
        assert!(host
            .web
            .db()
            .get("scores", &"kim".into())
            .unwrap()
            .is_none());
    }

    #[test]
    fn unknown_course_is_404() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/learn/lesson?course=9"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
