//! Travel and ticketing (Table 1, row 8).
//!
//! Flight search, seat-safe booking and ticket retrieval — the "travel
//! management" workload for "travel industry and ticket sales". Bookings
//! decrement seats inside a database transaction, so overselling is
//! impossible even under concurrent sessions.

use hostsite::db::{DbError, Value};
use hostsite::{ContentFormat, HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The travel and ticketing application.
#[derive(Debug, Default)]
pub struct TravelApp;

/// Seeded flights: `(id, from, to, departs, seats)`.
const FLIGHTS: [(i64, &str, &str, &str, i64); 6] = [
    (100, "ATL", "ORD", "08:10", 120),
    (101, "ATL", "ORD", "17:45", 80),
    (102, "ORD", "DEN", "09:30", 140),
    (103, "DEN", "SFO", "11:05", 90),
    (104, "ATL", "DEN", "13:20", 60),
    (105, "ORD", "SFO", "15:55", 110),
];

impl Application for TravelApp {
    fn category(&self) -> Category {
        Category::Travel
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table(
            "flights",
            &["id", "orig", "dest", "departs", "seats"],
            &["orig"],
        )
        .expect("fresh database");
        db.create_table("tickets", &["id", "flight", "passenger"], &["flight"])
            .expect("fresh database");
        for (id, from, to, dep, seats) in FLIGHTS {
            db.insert(
                "flights",
                vec![id.into(), from.into(), to.into(), dep.into(), seats.into()],
            )
            .expect("seed flights");
        }

        // Search by origin. This route practises §7's content negotiation:
        // clients that accept cHTML (i-mode handsets) get a natively
        // compact page, so the middleware can pass it through unfiltered.
        host.web.route_get(
            "/travel/search",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(orig) = req.param("from") else {
                    return HttpResponse::error(Status::BadRequest, "need from");
                };
                let flights = match ctx.db.select_eq("flights", "orig", &orig.into()) {
                    Ok(rows) => rows,
                    Err(_) => return HttpResponse::error(Status::ServerError, "db error"),
                };
                let mut body: Vec<markup::Node> =
                    vec![html::h1(&format!("Flights from {orig}")).into()];
                if flights.is_empty() {
                    body.push(html::p("no flights found").into());
                }
                for f in &flights {
                    body.push(
                        html::a(
                            &format!("/travel/book?flight={}", f[0]),
                            &format!("{} to {} departing {} ({} seats)", f[1], f[2], f[3], f[4]),
                        )
                        .into(),
                    );
                }
                let page = html::page("Search", body);
                if req.accept == ContentFormat::Chtml {
                    // Author-side compaction: already valid cHTML, marked as
                    // such so i-mode ships it without filtering.
                    let compact = markup::transcode::html_to_chtml(&page);
                    HttpResponse::ok(compact.to_markup()).with_format(ContentFormat::Chtml)
                } else {
                    HttpResponse::ok(page.to_markup())
                }
            },
        );

        // Book a seat.
        host.web.route_post(
            "/travel/book",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(flight) = req.param("flight").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad flight");
                };
                let passenger = req.param("passenger").unwrap_or("guest").to_owned();
                let ticket_id: Result<i64, DbError> = ctx.db.transaction(|tx| {
                    let mut row = (*tx
                        .get("flights", &flight.into())?
                        .ok_or(DbError::NotFound)?)
                    .clone();
                    let Value::Int(seats) = row[4] else {
                        return Err(DbError::NotFound);
                    };
                    if seats == 0 {
                        return Err(DbError::NotFound); // sold out
                    }
                    row[4] = (seats - 1).into();
                    tx.update("flights", row)?;
                    // Allocate past the highest id ever issued (rows are in
                    // primary-key order); counting rows would reuse ids after
                    // a cancellation.
                    let ticket_id = tx
                        .select("tickets", |_| true)?
                        .last()
                        .and_then(|r| match r[0] {
                            Value::Int(id) => Some(id),
                            _ => None,
                        })
                        .unwrap_or(0)
                        + 1;
                    tx.insert(
                        "tickets",
                        vec![ticket_id.into(), flight.into(), passenger.clone().into()],
                    )?;
                    Ok(ticket_id)
                });
                match ticket_id {
                    Ok(id) => HttpResponse::ok(
                        html::page(
                            "Booked",
                            vec![
                                html::h1("Ticket issued").into(),
                                html::p(&format!("ticket {id} on flight {flight} for {passenger}"))
                                    .into(),
                                html::a(&format!("/travel/ticket?id={id}"), "View ticket").into(),
                            ],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::BadRequest, "sold out or unknown flight"),
                }
            },
        );

        // Cancel a ticket: delete it and return the seat, atomically.
        host.web.route_post(
            "/travel/cancel",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad ticket id");
                };
                let result: Result<i64, DbError> = ctx.db.transaction(|tx| {
                    let ticket = tx.get("tickets", &id.into())?.ok_or(DbError::NotFound)?;
                    let Value::Int(flight) = ticket[1] else {
                        return Err(DbError::NotFound);
                    };
                    tx.delete("tickets", &id.into())?;
                    let mut row = (*tx
                        .get("flights", &flight.into())?
                        .ok_or(DbError::NotFound)?)
                    .clone();
                    let Value::Int(seats) = row[4] else {
                        return Err(DbError::NotFound);
                    };
                    row[4] = (seats + 1).into();
                    tx.update("flights", row)?;
                    Ok(flight)
                });
                match result {
                    Ok(flight) => HttpResponse::ok(
                        html::page(
                            "Cancelled",
                            vec![html::p(&format!(
                                "ticket {id} cancelled, seat returned to flight {flight}"
                            ))
                            .into()],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::NotFound, "no such ticket"),
                }
            },
        );

        // Retrieve a ticket.
        host.web.route_get(
            "/travel/ticket",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad ticket id");
                };
                match ctx.db.get("tickets", &id.into()) {
                    Ok(Some(row)) => HttpResponse::ok(
                        html::page(
                            "Ticket",
                            vec![html::p(&format!(
                                "ticket {id}: flight {} passenger {}",
                                row[1], row[2]
                            ))
                            .into()],
                        )
                        .to_markup(),
                    ),
                    Ok(None) => HttpResponse::error(Status::NotFound, "no such ticket"),
                    Err(_) => HttpResponse::error(Status::ServerError, "db error"),
                }
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "travel.session", index);
        let (_, orig, _, _, _) = FLIGHTS[rng.random_range(0..FLIGHTS.len())];
        let flight = FLIGHTS
            .iter()
            .find(|f| f.1 == orig)
            .expect("origin exists")
            .0;
        let passenger = format!("rider-{index}");
        vec![
            Step::expecting(
                MobileRequest::get(&format!("/travel/search?from={orig}")),
                format!("Flights from {orig}"),
            ),
            Step::expecting(
                MobileRequest::post(
                    "/travel/book",
                    vec![
                        ("flight".into(), flight.to_string()),
                        ("passenger".into(), passenger.clone()),
                    ],
                ),
                "Ticket issued",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 4);
        TravelApp.install(&mut host);
        host
    }

    #[test]
    fn search_lists_flights_by_origin() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/travel/search?from=ATL"));
        assert!(resp.body.contains("ATL to ORD"));
        assert!(resp.body.contains("ATL to DEN"));
        assert!(!resp.body.contains("ORD to SFO"));
    }

    #[test]
    fn booking_decrements_seats_and_issues_retrievable_ticket() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/travel/book",
            vec![
                ("flight".to_owned(), "104".to_owned()),
                ("passenger".to_owned(), "alice".to_owned()),
            ],
        ));
        assert!(resp.body.contains("Ticket issued"), "{}", resp.body);
        let row = host.web.db().get("flights", &104.into()).unwrap().unwrap();
        assert_eq!(row[4], Value::Int(59));
        let (ticket, _) = host.process(HttpRequest::get("/travel/ticket?id=1"));
        assert!(ticket.body.contains("passenger alice"));
    }

    #[test]
    fn sold_out_flights_refuse_booking() {
        let mut host = host();
        // Drain flight 104's 60 seats.
        for _ in 0..60 {
            let (resp, _) = host.process(HttpRequest::post(
                "/travel/book",
                vec![("flight".to_owned(), "104".to_owned())],
            ));
            assert_eq!(resp.status, Status::Ok);
        }
        let (resp, _) = host.process(HttpRequest::post(
            "/travel/book",
            vec![("flight".to_owned(), "104".to_owned())],
        ));
        assert_eq!(resp.status, Status::BadRequest);
        let row = host.web.db().get("flights", &104.into()).unwrap().unwrap();
        assert_eq!(row[4], Value::Int(0), "never oversold");
    }

    #[test]
    fn booking_still_works_after_a_cancellation() {
        // Regression: ticket ids must not be reused after cancellation,
        // or the id collides and every later booking is refused.
        let mut host = host();
        for _ in 0..2 {
            let (resp, _) = host.process(HttpRequest::post(
                "/travel/book",
                vec![("flight".to_owned(), "100".to_owned())],
            ));
            assert_eq!(resp.status, Status::Ok);
        }
        host.process(HttpRequest::post(
            "/travel/cancel",
            vec![("id".to_owned(), "1".to_owned())],
        ));
        let (resp, _) = host.process(HttpRequest::post(
            "/travel/book",
            vec![("flight".to_owned(), "100".to_owned())],
        ));
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        assert!(
            resp.body.contains("ticket 3"),
            "fresh id, not a reused one: {}",
            resp.body
        );
    }

    #[test]
    fn cancellation_returns_the_seat_and_voids_the_ticket() {
        let mut host = host();
        host.process(HttpRequest::post(
            "/travel/book",
            vec![
                ("flight".to_owned(), "100".to_owned()),
                ("passenger".to_owned(), "zoe".to_owned()),
            ],
        ));
        assert_eq!(
            host.web.db().get("flights", &100.into()).unwrap().unwrap()[4],
            Value::Int(119)
        );
        let (resp, _) = host.process(HttpRequest::post(
            "/travel/cancel",
            vec![("id".to_owned(), "1".to_owned())],
        ));
        assert!(resp.body.contains("seat returned"), "{}", resp.body);
        assert_eq!(
            host.web.db().get("flights", &100.into()).unwrap().unwrap()[4],
            Value::Int(120),
            "seat restored"
        );
        assert!(host.web.db().get("tickets", &1.into()).unwrap().is_none());
        // Double cancel fails cleanly and changes nothing.
        let (resp, _) = host.process(HttpRequest::post(
            "/travel/cancel",
            vec![("id".to_owned(), "1".to_owned())],
        ));
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(
            host.web.db().get("flights", &100.into()).unwrap().unwrap()[4],
            Value::Int(120)
        );
    }

    #[test]
    fn search_negotiates_chtml_for_imode_clients() {
        let mut host = host();
        let (html_resp, _) = host.process(HttpRequest::get("/travel/search?from=ATL"));
        assert_eq!(html_resp.format, ContentFormat::Html);
        let (chtml_resp, _) = host
            .process(HttpRequest::get("/travel/search?from=ATL").with_accept(ContentFormat::Chtml));
        assert_eq!(chtml_resp.format, ContentFormat::Chtml);
        let doc = markup::parse::parse(&chtml_resp.body).unwrap();
        markup::chtml::validate(&doc).unwrap();
        assert!(doc.text_content().contains("ATL to ORD"));
    }

    #[test]
    fn missing_ticket_is_404() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/travel/ticket?id=99"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
