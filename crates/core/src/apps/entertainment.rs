//! Entertainment: music/video/game downloads (Table 1, row 4).
//!
//! The bandwidth-heavy category — §5.1 notes W-CDMA's higher speeds let
//! users "download video images and other bandwidth-intensive content".
//! Downloads return bodies sized to the item (tens of kilobytes), which
//! makes this the workload where the wireless standard's data rate, not
//! its latency, dominates.

use hostsite::db::Value;
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The downloads application.
#[derive(Debug, Default)]
pub struct EntertainmentApp;

/// Seeded items: `(id, title, kind, kilobytes)`.
const ITEMS: [(i64, &str, &str, i64); 5] = [
    (1, "ringtone: nocturne", "music", 8),
    (2, "wallpaper: skyline", "image", 16),
    (3, "game: block drop", "game", 24),
    (4, "trailer: night train", "video", 30),
    (5, "single: morning light", "music", 20),
];

impl Application for EntertainmentApp {
    fn category(&self) -> Category {
        Category::Entertainment
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table(
            "media",
            &["id", "title", "kind", "kb", "downloads"],
            &["kind"],
        )
        .expect("fresh database");
        for (id, title, kind, kb) in ITEMS {
            db.insert(
                "media",
                vec![id.into(), title.into(), kind.into(), kb.into(), 0i64.into()],
            )
            .expect("seed media");
        }

        host.web
            .route_get("/media", |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let rows = ctx.db.select("media", |_| true).unwrap_or_default();
                let mut body: Vec<markup::Node> = vec![html::h1("Downloads").into()];
                for r in &rows {
                    body.push(
                        html::a(
                            &format!("/media/download?id={}", r[0]),
                            &format!("{} [{}] {} KB", r[1], r[2], r[3]),
                        )
                        .into(),
                    );
                }
                HttpResponse::ok(html::page("Media store", body).to_markup())
            });

        host.web.route_get(
            "/media/download",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad media id");
                };
                let Ok(Some(row)) = ctx.db.get("media", &id.into()) else {
                    return HttpResponse::error(Status::NotFound, "no such item");
                };
                let mut row = (*row).clone();
                let Value::Int(kb) = row[3] else {
                    return HttpResponse::error(Status::ServerError, "bad row");
                };
                // Count the download.
                if let Value::Int(n) = row[4] {
                    row[4] = (n + 1).into();
                    let _ = ctx.db.update("media", row.clone());
                }
                // The "payload": content bytes inline in the page (base64-ish
                // filler sized to the item), so the network actually carries it.
                let blob = "QUJDRA==".repeat((kb as usize * 1024) / 8);
                HttpResponse::ok(
                    html::page(
                        "Download",
                        vec![
                            html::h1(&format!("Delivering {}", row[1])).into(),
                            html::p(&format!("content follows ({kb} KB)")).into(),
                            markup::Element::new("pre").with_text(blob).into(),
                        ],
                    )
                    .to_markup(),
                )
            },
        );

        host.web.route_get(
            "/media/top",
            |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let mut rows = ctx.db.select("media", |_| true).unwrap_or_default();
                rows.sort_by_key(|r| match r[4] {
                    Value::Int(n) => -n,
                    _ => 0,
                });
                let top = rows
                    .first()
                    .map(|r| format!("most downloaded: {} ({} downloads)", r[1], r[4]))
                    .unwrap_or_else(|| "no downloads yet".to_owned());
                HttpResponse::ok(html::page("Charts", vec![html::p(&top).into()]).to_markup())
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "entertainment.session", index);
        let (id, title, _, _) = ITEMS[rng.random_range(0..ITEMS.len())];
        vec![
            Step::expecting(MobileRequest::get("/media"), "Downloads"),
            Step::expecting(
                MobileRequest::get(&format!("/media/download?id={id}")),
                format!("Delivering {title}"),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 6);
        EntertainmentApp.install(&mut host);
        host
    }

    #[test]
    fn downloads_carry_payload_sized_to_the_item() {
        let mut host = host();
        let (small, _) = host.process(HttpRequest::get("/media/download?id=1"));
        let (large, _) = host.process(HttpRequest::get("/media/download?id=4"));
        assert_eq!(small.status, Status::Ok);
        assert!(small.body.len() > 8 * 1024);
        assert!(large.body.len() > 28 * 1024);
        assert!(large.body.len() > small.body.len() * 3);
    }

    #[test]
    fn download_counter_feeds_the_charts() {
        let mut host = host();
        for _ in 0..3 {
            host.process(HttpRequest::get("/media/download?id=3"));
        }
        host.process(HttpRequest::get("/media/download?id=1"));
        let (charts, _) = host.process(HttpRequest::get("/media/top"));
        assert!(charts.body.contains("block drop"), "{}", charts.body);
        assert!(charts.body.contains("3 downloads"));
    }

    #[test]
    fn catalogue_lists_every_item() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/media"));
        for (_, title, _, _) in ITEMS {
            assert!(resp.body.contains(title));
        }
    }

    #[test]
    fn unknown_item_is_404() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/media/download?id=77"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
