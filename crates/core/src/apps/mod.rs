//! The mobile commerce applications of Table 1 (component i).
//!
//! | Category | Major applications | Clients |
//! |---|---|---|
//! | Commerce | mobile transactions and payments | businesses |
//! | Education | mobile classrooms and labs | schools and training centers |
//! | Enterprise resource planning | resource management | all companies |
//! | Entertainment | music/video/game downloads | entertainment industry |
//! | Health care | patient record accessing | hospitals and nursing homes |
//! | Inventory tracking and dispatching | product tracking and dispatching | delivery services and transportation |
//! | Traffic | global positioning, directions, and traffic advisories | transportation and auto industries |
//! | Travel and ticketing | travel management | travel industry and ticket sales |
//!
//! Each category is a real [`Application`]: an installer that provisions
//! the host computer (database schema, seed data, application-program
//! routes) plus a deterministic generator of user *sessions* — sequences
//! of requests with expected outcomes — that the workload runner drives
//! through any [`crate::CommerceSystem`].

pub mod commerce;
pub mod education;
pub mod entertainment;
pub mod erp;
pub mod healthcare;
pub mod inventory;
pub mod traffic;
pub mod travel;

use hostsite::HostComputer;
use middleware::MobileRequest;

pub use commerce::PaymentsApp;
pub use education::EducationApp;
pub use entertainment::EntertainmentApp;
pub use erp::ErpApp;
pub use healthcare::HealthCareApp;
pub use inventory::InventoryApp;
pub use traffic::TrafficApp;
pub use travel::TravelApp;

/// The application categories of Table 1, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Mobile transactions and payments.
    Commerce,
    /// Mobile classrooms and labs.
    Education,
    /// Enterprise resource planning.
    Erp,
    /// Music/video/game downloads.
    Entertainment,
    /// Patient record accessing.
    HealthCare,
    /// Product tracking and dispatching.
    Inventory,
    /// Global positioning, directions, traffic advisories.
    Traffic,
    /// Travel management and ticketing.
    Travel,
}

impl Category {
    /// All eight Table 1 categories.
    pub const ALL: [Category; 8] = [
        Category::Commerce,
        Category::Education,
        Category::Erp,
        Category::Entertainment,
        Category::HealthCare,
        Category::Inventory,
        Category::Traffic,
        Category::Travel,
    ];

    /// The category name (Table 1 column 1).
    pub fn name(self) -> &'static str {
        match self {
            Category::Commerce => "Commerce",
            Category::Education => "Education",
            Category::Erp => "Enterprise resource planning",
            Category::Entertainment => "Entertainment",
            Category::HealthCare => "Health care",
            Category::Inventory => "Inventory tracking and dispatching",
            Category::Traffic => "Traffic",
            Category::Travel => "Travel and ticketing",
        }
    }

    /// The major applications (Table 1 column 2).
    pub fn major_applications(self) -> &'static str {
        match self {
            Category::Commerce => "Mobile transactions and payments",
            Category::Education => "Mobile classrooms and labs",
            Category::Erp => "Resource management",
            Category::Entertainment => "Music/video/game downloads",
            Category::HealthCare => "Patient record accessing",
            Category::Inventory => "Product tracking and dispatching",
            Category::Traffic => "A global positioning, directions, and traffic advisories",
            Category::Travel => "Travel management",
        }
    }

    /// The client industries (Table 1 column 3).
    pub fn clients(self) -> &'static str {
        match self {
            Category::Commerce => "Businesses",
            Category::Education => "Schools and training centers",
            Category::Erp => "All companies",
            Category::Entertainment => "Entertainment industry",
            Category::HealthCare => "Hospitals and nursing homes",
            Category::Inventory => "Delivery services and transportation",
            Category::Traffic => "Transportation and auto industries",
            Category::Travel => "Travel industry and ticket sales",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a user session: the request to issue and, optionally, a
/// substring that must appear on the rendered page if the step worked.
#[derive(Debug, Clone)]
pub struct Step {
    /// The request.
    pub req: MobileRequest,
    /// Expected substring of the rendered page text.
    pub expect: Option<String>,
}

impl Step {
    /// A step with an expectation.
    pub fn expecting(req: MobileRequest, expect: impl Into<String>) -> Self {
        Step {
            req,
            expect: Some(expect.into()),
        }
    }

    /// A step whose success is judged only by transport/status.
    pub fn fire(req: MobileRequest) -> Self {
        Step { req, expect: None }
    }
}

/// A Table 1 application: host-side provisioning plus a session generator.
pub trait Application {
    /// Which Table 1 category this application realises.
    fn category(&self) -> Category;

    /// Provisions the host computer: schema, seed data, routes.
    fn install(&self, host: &mut HostComputer);

    /// Generates the `index`-th user session deterministically under
    /// `seed`.
    fn session(&self, seed: u64, index: u64) -> Vec<Step>;

    /// The search-heavy variant of [`Application::session`] (browse →
    /// search → refine → purchase), used when a scenario sets
    /// `search_heavy`. Applications without a search workload fall back
    /// to their regular sessions.
    fn search_session(&self, seed: u64, index: u64) -> Vec<Step> {
        self.session(seed, index)
    }
}

/// All eight applications, ready to install.
pub fn all_apps() -> Vec<Box<dyn Application>> {
    Category::ALL.iter().map(|c| for_category(*c)).collect()
}

/// Instantiates the application realising `category` — the factory the
/// fleet runner uses so every thread can build its own application from
/// a plain [`Category`] value.
pub fn for_category(category: Category) -> Box<dyn Application> {
    match category {
        Category::Commerce => Box::new(PaymentsApp::new()),
        Category::Education => Box::new(EducationApp),
        Category::Erp => Box::new(ErpApp),
        Category::Entertainment => Box::new(EntertainmentApp),
        Category::HealthCare => Box::new(HealthCareApp),
        Category::Inventory => Box::new(InventoryApp),
        Category::Traffic => Box::new(TrafficApp),
        Category::Travel => Box::new(TravelApp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows_with_distinct_categories() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        let mut cats: Vec<&str> = apps.iter().map(|a| a.category().name()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats.len(), 8);
    }

    #[test]
    fn table1_columns_match_the_paper() {
        assert_eq!(
            Category::Commerce.major_applications(),
            "Mobile transactions and payments"
        );
        assert_eq!(
            Category::HealthCare.clients(),
            "Hospitals and nursing homes"
        );
        assert_eq!(
            Category::Inventory.name(),
            "Inventory tracking and dispatching"
        );
        assert_eq!(
            Category::Travel.clients(),
            "Travel industry and ticket sales"
        );
        assert_eq!(Category::Erp.clients(), "All companies");
    }

    #[test]
    fn every_app_generates_nonempty_deterministic_sessions() {
        for app in all_apps() {
            let a = app.session(7, 0);
            let b = app.session(7, 0);
            assert!(!a.is_empty(), "{} session empty", app.category());
            assert_eq!(a.len(), b.len(), "{} nondeterministic", app.category());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.req.url, y.req.url, "{} nondeterministic", app.category());
            }
        }
    }
}
