//! Traffic: positioning, directions and traffic advisories (Table 1, row 7).
//!
//! A road graph lives on the host; mobile probes (vehicles) report
//! congestion from the field, and drivers request routes whose directions
//! reflect the latest advisories — the paper's "global positioning,
//! directions, and traffic advisories" for the "transportation and auto
//! industries".

use hostsite::db::{DbError, Value};
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The traffic application.
#[derive(Debug, Default)]
pub struct TrafficApp;

/// Intersections of the simulated city grid.
pub const NODES: [&str; 6] = ["airport", "harbor", "station", "mall", "campus", "stadium"];

/// Directed road segments `(from, to, minutes)`.
const ROADS: [(&str, &str, i64); 10] = [
    ("airport", "station", 18),
    ("station", "mall", 7),
    ("mall", "campus", 9),
    ("campus", "stadium", 12),
    ("harbor", "station", 11),
    ("station", "harbor", 11),
    ("mall", "harbor", 14),
    ("stadium", "airport", 25),
    ("station", "campus", 15),
    ("harbor", "stadium", 21),
];

impl Application for TrafficApp {
    fn category(&self) -> Category {
        Category::Traffic
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table(
            "roads",
            &["id", "from_node", "to_node", "minutes", "congestion"],
            &["from_node"],
        )
        .expect("fresh database");
        for (i, (from, to, minutes)) in ROADS.iter().enumerate() {
            db.insert(
                "roads",
                vec![
                    (i as i64).into(),
                    (*from).into(),
                    (*to).into(),
                    (*minutes).into(),
                    0i64.into(),
                ],
            )
            .expect("seed roads");
        }

        // A probe vehicle reports congestion on a segment (0–9 scale).
        host.web.route_post(
            "/traffic/report",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("road").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad road id");
                };
                let level = req
                    .param("level")
                    .and_then(|s| s.parse::<i64>().ok())
                    .unwrap_or(0)
                    .clamp(0, 9);
                let result: Result<(), DbError> = ctx.db.transaction(|tx| {
                    let mut row =
                        (*tx.get("roads", &id.into())?.ok_or(DbError::NotFound)?).clone();
                    row[4] = level.into();
                    tx.update("roads", row)
                });
                match result {
                    Ok(()) => HttpResponse::ok(
                        html::page(
                            "Reported",
                            vec![
                                html::p(&format!("congestion {level} recorded on road {id}"))
                                    .into(),
                            ],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::NotFound, "no such road"),
                }
            },
        );

        // Directions: shortest path by congestion-adjusted minutes.
        host.web.route_get(
            "/traffic/route",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let (Some(from), Some(to)) = (req.param("from"), req.param("to")) else {
                    return HttpResponse::error(Status::BadRequest, "need from and to");
                };
                let roads = match ctx.db.select("roads", |_| true) {
                    Ok(r) => r,
                    Err(_) => return HttpResponse::error(Status::ServerError, "db error"),
                };
                let edges: Vec<(String, String, i64, i64)> = roads
                    .iter()
                    .map(|r| {
                        let minutes = match r[3] {
                            Value::Int(m) => m,
                            _ => 0,
                        };
                        let congestion = match r[4] {
                            Value::Int(c) => c,
                            _ => 0,
                        };
                        (r[1].to_string(), r[2].to_string(), minutes, congestion)
                    })
                    .collect();
                match shortest_path(&edges, from, to) {
                    Some((total, hops)) => {
                        let mut body: Vec<markup::Node> =
                            vec![html::h1(&format!("Route {from} to {to}")).into()];
                        body.push(html::p(&format!("estimated {total} minutes")).into());
                        for (a, b, cost) in &hops {
                            body.push(html::p(&format!("take {a} to {b} ({cost} min)")).into());
                        }
                        let worst = hops.iter().map(|(_, _, c)| *c).max().unwrap_or(0);
                        if worst >= 15 {
                            body.push(html::p("advisory: expect delays on this route").into());
                        }
                        HttpResponse::ok(html::page("Directions", body).to_markup())
                    }
                    None => HttpResponse::error(Status::NotFound, "no route"),
                }
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "traffic.session", index);
        let road = rng.random_range(0..ROADS.len() as i64);
        let level = rng.random_range(0..10i64);
        // Pick a pair known to be connected: everything reaches "stadium".
        let from = NODES[rng.random_range(0..4usize)];
        vec![
            Step::expecting(
                MobileRequest::post(
                    "/traffic/report",
                    vec![
                        ("road".into(), road.to_string()),
                        ("level".into(), level.to_string()),
                    ],
                ),
                format!("congestion {level} recorded"),
            ),
            Step::expecting(
                MobileRequest::get(&format!("/traffic/route?from={from}&to=stadium")),
                "estimated",
            ),
        ]
    }
}

/// Dijkstra over congestion-adjusted minutes: each congestion level adds
/// 30% of the segment's base time. Returns `(total, [(from, to, cost)])`.
type RoutePlan = (i64, Vec<(String, String, i64)>);

fn shortest_path(edges: &[(String, String, i64, i64)], from: &str, to: &str) -> Option<RoutePlan> {
    use std::collections::{BinaryHeap, HashMap};
    let cost_of = |minutes: i64, congestion: i64| minutes + (minutes * 3 * congestion) / 10;

    let mut best: HashMap<&str, i64> = HashMap::new();
    let mut prev: HashMap<&str, (&str, i64)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0i64), from));
    best.insert(from, 0);
    while let Some((std::cmp::Reverse(dist), node)) = heap.pop() {
        if node == to {
            break;
        }
        if dist > best.get(node).copied().unwrap_or(i64::MAX) {
            continue;
        }
        for (a, b, minutes, congestion) in edges {
            if a != node {
                continue;
            }
            let next = dist + cost_of(*minutes, *congestion);
            if next < best.get(b.as_str()).copied().unwrap_or(i64::MAX) {
                best.insert(b, next);
                prev.insert(b, (a, cost_of(*minutes, *congestion)));
                heap.push((std::cmp::Reverse(next), b));
            }
        }
    }
    let total = *best.get(to)?;
    let mut hops = Vec::new();
    let mut cursor = to;
    while cursor != from {
        let (parent, cost) = prev.get(cursor)?;
        hops.push(((*parent).to_owned(), cursor.to_owned(), *cost));
        cursor = parent;
    }
    hops.reverse();
    Some((total, hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 3);
        TrafficApp.install(&mut host);
        host
    }

    #[test]
    fn clear_roads_give_the_direct_route() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/traffic/route?from=airport&to=mall"));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("estimated 25 minutes"), "{}", resp.body);
        assert!(resp.body.contains("airport to station"));
        assert!(resp.body.contains("station to mall"));
    }

    #[test]
    fn congestion_reports_reroute_traffic() {
        let mut host = host();
        // Jam the station→mall segment (road 1) to maximum.
        host.process(HttpRequest::post(
            "/traffic/report",
            vec![
                ("road".to_owned(), "1".to_owned()),
                ("level".to_owned(), "9".to_owned()),
            ],
        ));
        let (resp, _) = host.process(HttpRequest::get("/traffic/route?from=harbor&to=mall"));
        // Direct harbor→station→mall is now worse than any alternative
        // that avoids road 1 — at minimum the estimate reflects the jam.
        assert!(resp.status == Status::Ok);
        assert!(!resp.body.contains("estimated 18 minutes"), "{}", resp.body);
    }

    #[test]
    fn heavy_congestion_produces_an_advisory() {
        let mut host = host();
        host.process(HttpRequest::post(
            "/traffic/report",
            vec![
                ("road".to_owned(), "0".to_owned()),
                ("level".to_owned(), "9".to_owned()),
            ],
        ));
        let (resp, _) = host.process(HttpRequest::get("/traffic/route?from=airport&to=station"));
        assert!(resp.body.contains("advisory"), "{}", resp.body);
    }

    #[test]
    fn unknown_endpoints_and_roads_error() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/traffic/route?from=nowhere&to=mall"));
        assert_eq!(resp.status, Status::NotFound);
        let (resp, _) = host.process(HttpRequest::post(
            "/traffic/report",
            vec![
                ("road".to_owned(), "99".to_owned()),
                ("level".to_owned(), "5".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn dijkstra_handles_unreachable_nodes() {
        let edges = vec![("a".to_owned(), "b".to_owned(), 5i64, 0i64)];
        assert!(shortest_path(&edges, "a", "b").is_some());
        assert!(shortest_path(&edges, "b", "a").is_none());
    }
}
