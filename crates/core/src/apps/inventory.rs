//! Inventory tracking and dispatching (Table 1, row 6).
//!
//! The paper's introduction singles this category out: "some tasks that
//! are not feasible for electronic commerce, such as mobile inventory
//! tracking and dispatching, are possible for mobile commerce." Drivers
//! scan packages from the road (POST from a handheld), dispatchers assign
//! them, and customers query live status — every write originates on a
//! mobile station.

use hostsite::db::DbError;
#[cfg(test)]
use hostsite::db::Value;
use hostsite::{HostComputer, HttpRequest, HttpResponse, ServerCtx, Status};
use markup::html;
use middleware::MobileRequest;
use rand::RngExt;
use simnet::rng::rng_for_indexed;

use super::{Application, Category, Step};

/// The inventory tracking and dispatching application.
#[derive(Debug, Default)]
pub struct InventoryApp;

/// Depots packages move through.
pub const DEPOTS: [&str; 5] = [
    "airport hub",
    "north depot",
    "south depot",
    "city dock",
    "van 7",
];

impl Application for InventoryApp {
    fn category(&self) -> Category {
        Category::Inventory
    }

    fn install(&self, host: &mut HostComputer) {
        let db = host.web.db_mut();
        db.create_table(
            "packages",
            &["id", "contents", "location", "status", "driver"],
            &["status"],
        )
        .expect("fresh database");
        for id in 0..200i64 {
            db.insert(
                "packages",
                vec![
                    id.into(),
                    format!("parcel #{id}").into(),
                    DEPOTS[id as usize % DEPOTS.len()].into(),
                    "in transit".into(),
                    "unassigned".into(),
                ],
            )
            .expect("seed packages");
        }

        // Driver scan: update a package's location (and maybe deliver it).
        host.web.route_post(
            "/track/scan",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad package id");
                };
                let location = req.param("location").unwrap_or("unknown").to_owned();
                let delivered = req.param("delivered") == Some("1");
                let result: Result<(), DbError> = ctx.db.transaction(|tx| {
                    let mut row =
                        (*tx.get("packages", &id.into())?.ok_or(DbError::NotFound)?).clone();
                    row[2] = location.clone().into();
                    if delivered {
                        row[3] = "delivered".into();
                    }
                    tx.update("packages", row)
                });
                match result {
                    Ok(()) => HttpResponse::ok(
                        html::page(
                            "Scanned",
                            vec![html::p(&format!("package {id} scanned at {location}")).into()],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::NotFound, "no such package"),
                }
            },
        );

        // Dispatcher assigns a driver.
        host.web.route_post(
            "/track/dispatch",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad package id");
                };
                let driver = req.param("driver").unwrap_or("unknown").to_owned();
                let result: Result<(), DbError> = ctx.db.transaction(|tx| {
                    let mut row =
                        (*tx.get("packages", &id.into())?.ok_or(DbError::NotFound)?).clone();
                    row[4] = driver.clone().into();
                    tx.update("packages", row)
                });
                match result {
                    Ok(()) => HttpResponse::ok(
                        html::page(
                            "Dispatched",
                            vec![html::p(&format!("package {id} assigned to {driver}")).into()],
                        )
                        .to_markup(),
                    ),
                    Err(_) => HttpResponse::error(Status::NotFound, "no such package"),
                }
            },
        );

        // Status query.
        host.web.route_get(
            "/track/status",
            |req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
                    return HttpResponse::error(Status::BadRequest, "bad package id");
                };
                match ctx.db.get("packages", &id.into()) {
                    Ok(Some(row)) => HttpResponse::ok(
                        html::page(
                            "Tracking",
                            vec![
                                html::h1(&format!("Package {id}")).into(),
                                html::table([
                                    ("contents", &row[1].to_string()[..]),
                                    ("location", &row[2].to_string()[..]),
                                    ("status", &row[3].to_string()[..]),
                                    ("driver", &row[4].to_string()[..]),
                                ])
                                .into(),
                            ],
                        )
                        .to_markup(),
                    ),
                    Ok(None) => HttpResponse::error(Status::NotFound, "no such package"),
                    Err(_) => HttpResponse::error(Status::ServerError, "db error"),
                }
            },
        );

        // Backlog view for dispatchers.
        host.web.route_get(
            "/track/backlog",
            |_req: &HttpRequest, ctx: &mut ServerCtx<'_>| {
                let in_transit = ctx
                    .db
                    .select_eq("packages", "status", &"in transit".into())
                    .map(|rows| rows.len())
                    .unwrap_or(0);
                HttpResponse::ok(
                    html::page(
                        "Backlog",
                        vec![html::p(&format!("{in_transit} packages in transit")).into()],
                    )
                    .to_markup(),
                )
            },
        );
    }

    fn session(&self, seed: u64, index: u64) -> Vec<Step> {
        let mut rng = rng_for_indexed(seed, "inventory.session", index);
        let id = rng.random_range(0..200i64);
        let depot = DEPOTS[rng.random_range(0..DEPOTS.len())];
        let driver = format!("driver-{}", rng.random_range(1..9u32));
        vec![
            Step::expecting(
                MobileRequest::post(
                    "/track/dispatch",
                    vec![
                        ("id".into(), id.to_string()),
                        ("driver".into(), driver.clone()),
                    ],
                ),
                format!("assigned to {driver}"),
            ),
            Step::expecting(
                MobileRequest::post(
                    "/track/scan",
                    vec![
                        ("id".into(), id.to_string()),
                        ("location".into(), depot.into()),
                    ],
                ),
                format!("scanned at {depot}"),
            ),
            Step::expecting(MobileRequest::get(&format!("/track/status?id={id}")), depot),
            Step::expecting(MobileRequest::get("/track/backlog"), "in transit"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;

    fn host() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 2);
        InventoryApp.install(&mut host);
        host
    }

    #[test]
    fn scan_updates_location_and_status_page_reflects_it() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::post(
            "/track/scan",
            vec![
                ("id".to_owned(), "5".to_owned()),
                ("location".to_owned(), "van 7".to_owned()),
                ("delivered".to_owned(), "1".to_owned()),
            ],
        ));
        assert_eq!(resp.status, Status::Ok);
        let (status, _) = host.process(HttpRequest::get("/track/status?id=5"));
        assert!(status.body.contains("van 7"));
        assert!(status.body.contains("delivered"));
    }

    #[test]
    fn dispatch_assigns_driver() {
        let mut host = host();
        host.process(HttpRequest::post(
            "/track/dispatch",
            vec![
                ("id".to_owned(), "9".to_owned()),
                ("driver".to_owned(), "driver-3".to_owned()),
            ],
        ));
        let row = host.web.db().get("packages", &9.into()).unwrap().unwrap();
        assert_eq!(row[4], Value::Text("driver-3".into()));
    }

    #[test]
    fn backlog_counts_shrink_as_packages_deliver() {
        let mut host = host();
        let before = {
            let (resp, _) = host.process(HttpRequest::get("/track/backlog"));
            resp.body.clone()
        };
        assert!(before.contains("200 packages"));
        for id in 0..10 {
            host.process(HttpRequest::post(
                "/track/scan",
                vec![
                    ("id".to_owned(), id.to_string()),
                    ("location".to_owned(), "door".to_owned()),
                    ("delivered".to_owned(), "1".to_owned()),
                ],
            ));
        }
        let (after, _) = host.process(HttpRequest::get("/track/backlog"));
        assert!(after.body.contains("190 packages"), "{}", after.body);
    }

    #[test]
    fn unknown_package_is_404() {
        let mut host = host();
        let (resp, _) = host.process(HttpRequest::get("/track/status?id=999"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
