#![warn(missing_docs)]
//! # mcommerce-core — the six-component mobile commerce system model
//!
//! This crate is the paper's primary contribution made executable: the
//! decomposition of a mobile commerce system into six components —
//! applications, mobile stations, mobile middleware, wireless networks,
//! wired networks, host computers (Figure 2) — assembled into a running
//! [`McSystem`], next to the four-component electronic commerce baseline
//! [`EcSystem`] (Figure 1) it extends.
//!
//! * [`netpath`] — wireless and wired hop models with link-layer ARQ,
//!   session setup, and byte/energy accounting,
//! * [`system`] — [`McSystem`] / [`EcSystem`] and the transaction engine
//!   producing per-component latency breakdowns,
//! * [`report`] — transaction reports and workload aggregation,
//! * [`apps`] — the eight application categories of Table 1, each a real
//!   host-side application program plus a client workflow,
//! * [`workload`] — session generators that drive applications through a
//!   system,
//! * [`requirements`] — executable checks of §1.1's five system
//!   requirements,
//! * [`fleet`] — the deterministic sharded scenario runner scaling the
//!   model to whole user populations ([`Scenario`] + [`Topology`] →
//!   [`FleetRunner`]),
//! * [`topology`] — the infrastructure shape a fleet runs on: cells ×
//!   gateways × hosts and user placement,
//! * [`shared`] — the shared-world contention engine behind
//!   [`Topology::shared`] topologies: FCFS airtime, gateway and host
//!   queues over island-sharded deterministic execution.
//!
//! Telemetry (per-layer counters, latency histograms, sim-time spans and
//! flight-recorder dumps) is published through the dependency-free
//! [`obs`] crate; [`hist`] re-exports its log-linear histogram, the
//! bucketing every latency percentile in [`report`] uses.

pub use obs::hist;

pub mod apps;
pub mod fleet;
pub mod merge;
pub mod netpath;
pub mod report;
pub mod requirements;
pub mod shared;
pub mod system;
pub mod topology;
pub mod workload;

pub use apps::Category;
pub use faults::{
    classify, FailureClass, FaultEvent, FaultKind, FaultPlan, FaultState, FaultWindow, RetryPolicy,
};
pub use fleet::{
    FleetReport, FleetRun, FleetRunner, FleetSummary, FleetTrace, RecorderKind, RunConfig,
    Scenario, ShardScratch, UserTrace,
};
pub use merge::{FleetMerger, TraceMerger};
pub use netpath::{AirLink, WiredPath, WirelessConfig};
pub use report::{
    PhaseBreakdown, TransactionOutcome, TransactionReport, WorkloadCounters, WorkloadSummary,
};
pub use hostsite::db::DurabilityPolicy;
pub use shared::ContentionStats;
pub use system::{
    db_recovery_outage_ns, CachePolicy, CommerceSystem, EcSystem, McSystem, MiddlewareKind,
    StationState, SystemSpec,
};
pub use topology::{Placement, Topology};
