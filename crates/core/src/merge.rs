//! Streaming canonical-order merge of shard results.
//!
//! Both fleet engines promise one merge discipline: counters fold in
//! shard-index order, traces concatenate in global user-index order —
//! that is what makes the output byte-identical at any thread count.
//! The original implementations bought that order by *collecting first*:
//! every shard's full result was held in a `Vec` until the last shard
//! finished, then folded (isolated) or sorted (shared). At F9
//! populations that is the peak-memory high-water mark of the whole
//! run, and the merge only starts after the slowest shard ends.
//!
//! The mergers here stream instead. Each accepts results in **arrival**
//! order — whichever shard or user finishes first — and folds them in
//! **canonical** order through a reorder buffer: a result that arrives
//! in its canonical slot is folded immediately (and releases any
//! buffered successors); an early arrival waits in a `BTreeMap` keyed
//! by its index. The output is therefore bit-identical to the
//! collect-then-sort implementation for every arrival interleaving — a
//! property `tests/merge_props.rs` pins with randomised chunkings.

use std::collections::BTreeMap;

use crate::fleet::{FleetTrace, UserTrace};
use crate::report::{WorkloadCounters, WorkloadSummary};

/// Folds per-shard workload counters into the fleet total in strict
/// shard-index order, accepting shards in any arrival order.
///
/// Counter merge is associative and commutative, so the fold order
/// cannot change the sums — the reorder buffer is what makes *gaps
/// observable*: [`FleetMerger::finish`] panics if a shard index never
/// arrived, instead of silently under-counting the fleet.
#[derive(Debug, Default)]
pub struct FleetMerger {
    next: u64,
    pending: BTreeMap<u64, WorkloadCounters>,
    counters: WorkloadCounters,
}

impl FleetMerger {
    /// An empty merger expecting shard 0 first (in canonical order).
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits shard `shard`'s summary, in any arrival order.
    ///
    /// # Panics
    ///
    /// If `shard` already arrived.
    pub fn push(&mut self, shard: u64, summary: &WorkloadSummary) {
        self.push_counters(shard, summary.counters.clone());
    }

    /// [`FleetMerger::push`] for bare counters.
    pub fn push_counters(&mut self, shard: u64, counters: WorkloadCounters) {
        assert!(
            shard >= self.next && !self.pending.contains_key(&shard),
            "shard {shard} merged twice"
        );
        if shard != self.next {
            self.pending.insert(shard, counters);
            return;
        }
        self.counters.merge(&counters);
        self.next += 1;
        while let Some(buffered) = self.pending.remove(&self.next) {
            self.counters.merge(&buffered);
            self.next += 1;
        }
    }

    /// Shards folded into the total so far (excludes the reorder buffer).
    pub fn flushed(&self) -> u64 {
        self.next
    }

    /// Completes the fold and returns the fleet-wide counters.
    ///
    /// # Panics
    ///
    /// If any shard index below the highest admitted one never arrived.
    pub fn finish(self) -> WorkloadCounters {
        assert!(
            self.pending.is_empty(),
            "shards missing below index {}: merge would under-count",
            self.pending.keys().next_back().unwrap_or(&0),
        );
        self.counters
    }
}

/// Concatenates per-user traces into a [`FleetTrace`] in strict global
/// user-index order, accepting users in any arrival order.
///
/// Replaces the shared engine's collect-everything-then-`sort_by_key`
/// and the isolated engine's per-shard `Vec<UserTrace>` accumulation: a
/// user whose canonical slot is open streams straight into the output
/// (events appended, dumps appended, metrics merged) and is freed;
/// only users that finish ahead of a canonical predecessor wait in the
/// reorder buffer.
#[derive(Debug, Default)]
pub struct TraceMerger {
    next: u64,
    expected_users: u64,
    pending: BTreeMap<u64, UserTrace>,
    trace: FleetTrace,
}

impl TraceMerger {
    /// An empty merger expecting user 0 first (in canonical order).
    pub fn new() -> Self {
        Self::default()
    }

    /// Like [`TraceMerger::new`], sized for `users` traces: the first
    /// arrival's event count seeds one up-front reservation of the
    /// fleet buffer. Purely an allocation hint — the merged output is
    /// identical whether or not (or how accurately) it is given.
    pub fn for_users(users: u64) -> Self {
        Self {
            expected_users: users,
            ..Self::default()
        }
    }

    /// Admits user `user`'s trace, in any arrival order.
    ///
    /// # Panics
    ///
    /// If `user` already arrived.
    pub fn push(&mut self, user: u64, trace: UserTrace) {
        assert!(
            user >= self.next && !self.pending.contains_key(&user),
            "trace for user {user} merged twice"
        );
        if user != self.next {
            self.pending.insert(user, trace);
            return;
        }
        self.admit(trace);
        self.next += 1;
        while let Some(buffered) = self.pending.remove(&self.next) {
            self.admit(buffered);
            self.next += 1;
        }
    }

    fn admit(&mut self, user: UserTrace) {
        if self.expected_users > 1 && self.next == 0 && self.trace.events.is_empty() {
            // Users of one scenario emit near-identical event counts, so
            // the first arrival sizes the whole fleet's buffer — one
            // allocation instead of log2(users) doublings, which halves
            // the traced run's memory traffic.
            self.trace
                .events
                .reserve(user.events.len().saturating_mul(self.expected_users as usize));
        }
        self.trace.events.extend(user.events);
        self.trace.dumps.extend(user.dumps);
        self.trace.metrics.merge(&user.metrics);
    }

    /// Traces already streamed into the output (excludes the buffer).
    pub fn flushed(&self) -> u64 {
        self.next
    }

    /// Traces waiting in the reorder buffer for a canonical predecessor.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Completes the merge. Any traces still buffered (user indices
    /// with gaps below them — legal when a population's indices are
    /// sparse) drain in ascending user order, preserving the canonical
    /// ordering guarantee.
    pub fn finish(mut self) -> FleetTrace {
        let pending = std::mem::take(&mut self.pending);
        for (_, trace) in pending {
            self.admit(trace);
        }
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TransactionReport;

    fn counters_with(marker: u64) -> WorkloadCounters {
        let mut c = WorkloadCounters::default();
        c.record(&TransactionReport::failed(format!("marker {marker}")));
        c
    }

    #[test]
    fn fleet_merger_is_arrival_order_independent() {
        let shards: Vec<WorkloadCounters> = (0..5).map(counters_with).collect();
        let mut in_order = FleetMerger::new();
        for (i, c) in shards.iter().enumerate() {
            in_order.push_counters(i as u64, c.clone());
        }
        let mut scrambled = FleetMerger::new();
        for &i in &[3usize, 0, 4, 1, 2] {
            scrambled.push_counters(i as u64, shards[i].clone());
        }
        assert_eq!(in_order.finish(), scrambled.finish());
    }

    #[test]
    fn fleet_merger_reports_flush_progress() {
        let mut merger = FleetMerger::new();
        merger.push_counters(1, counters_with(2));
        assert_eq!(merger.flushed(), 0, "shard 1 must wait for shard 0");
        merger.push_counters(0, counters_with(1));
        assert_eq!(merger.flushed(), 2, "shard 0 releases buffered shard 1");
    }

    #[test]
    #[should_panic(expected = "merged twice")]
    fn fleet_merger_rejects_duplicate_shards() {
        let mut merger = FleetMerger::new();
        merger.push_counters(0, WorkloadCounters::default());
        merger.push_counters(0, WorkloadCounters::default());
    }

    #[test]
    #[should_panic(expected = "shards missing")]
    fn fleet_merger_refuses_to_finish_with_gaps() {
        let mut merger = FleetMerger::new();
        merger.push_counters(1, WorkloadCounters::default());
        merger.finish();
    }

    fn trace_with_marker(user: u64) -> UserTrace {
        let mut metrics = obs::Metrics::default();
        metrics.counters.insert("unit.users", user + 1);
        UserTrace {
            events: Vec::new(),
            dumps: Vec::new(),
            metrics,
        }
    }

    #[test]
    fn trace_merger_streams_in_canonical_order_from_any_arrival_order() {
        let mut merger = TraceMerger::new();
        for user in [2u64, 0, 3, 1] {
            merger.push(user, trace_with_marker(user));
        }
        assert_eq!(merger.flushed(), 4);
        assert_eq!(merger.buffered(), 0);
        let trace = merger.finish();
        assert_eq!(trace.metrics.counter("unit.users"), 1 + 2 + 3 + 4);
    }

    #[test]
    fn trace_merger_finish_drains_sparse_indices() {
        let mut merger = TraceMerger::new();
        merger.push(0, trace_with_marker(0));
        merger.push(7, trace_with_marker(7)); // gap: users 1..=6 absent
        assert_eq!(merger.flushed(), 1);
        assert_eq!(merger.buffered(), 1);
        let trace = merger.finish();
        assert_eq!(trace.metrics.counter("unit.users"), 1 + 8);
    }
}
