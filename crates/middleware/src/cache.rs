//! The gateway content cache.
//!
//! WAP gateway deployments cached adapted decks so repeat visits from
//! the same device class were served without re-contacting the origin
//! host or re-running the WML translation. This cache memoizes whole
//! [`Exchange`]s per (url, device class, middleware kind, cookies): a
//! fresh hit re-serves the adapted payload with zero wired bytes, zero
//! host CPU and a fixed small lookup cost, while the over-the-air legs
//! still run (the station is no closer to the gateway than before).
//!
//! Like the host page cache it is deterministic and sim-time native:
//! TTL in simulated nanoseconds, LRU eviction under a byte budget driven
//! by a logical tick counter. And like the host page cache its keys are
//! interned: [`ContentCache::intern`] hashes the borrowed request
//! fields, hands out a dense `u64` id, and only builds an owned
//! [`ContentKey`] (four cloned strings) the first time a shape is seen.
//! Lookups hash eight bytes and probe the entry map once — the expired
//! path removes through the same probe. A hit clones the stored
//! [`Exchange`], whose payload is a refcounted `Bytes`, so re-serving a
//! deck never copies it.
//!
//! Admission policy: only form-free GETs carrying **no credentials** are
//! candidates, and only successful exchanges that set no cookies are
//! stored. Requests with basic-auth credentials are never cached — the
//! gateway must not answer for the host's auth realms, so every authed
//! request travels to the origin where the password is actually checked.
//! Cookied GETs *are* cached, partitioned per cookie set (cookies are
//! part of [`ContentKey`]): sessions never alias, but a session's own
//! revisits hit.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{Hash as _, Hasher as _};

use hostsite::intern::{probe_hasher, KeyInterner};
use simnet::SimDuration;

use crate::{Exchange, MobileRequest};

/// What a cached exchange is keyed by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContentKey {
    /// Request URL (path + query).
    pub url: String,
    /// Device class the adaptation targeted (e.g. the device name) —
    /// different screens get different decks.
    pub device_class: String,
    /// Middleware kind that produced the adaptation ("WAP", "i-mode").
    pub middleware_kind: String,
    /// Cookies attached to the request; pages rendered for different
    /// cookie sets never alias.
    pub cookies: Vec<(String, String)>,
}

impl ContentKey {
    /// Builds the key for `req` as adapted by `middleware_kind` for
    /// `device_class`.
    pub fn for_request(req: &MobileRequest, device_class: &str, middleware_kind: &str) -> Self {
        ContentKey {
            url: req.url.clone(),
            device_class: device_class.to_owned(),
            middleware_kind: middleware_kind.to_owned(),
            cookies: req.cookies.clone(),
        }
    }
}

/// Hashes the key fields borrowed — the probe-side twin of
/// [`ContentKey`]'s derived `Hash`, fed identically on every call so
/// interner probes for equal shapes always land in one bucket.
fn hash_fields(url: &str, device_class: &str, middleware_kind: &str, cookies: &[(String, String)]) -> u64 {
    let mut h = probe_hasher();
    url.hash(&mut h);
    device_class.hash(&mut h);
    middleware_kind.hash(&mut h);
    cookies.hash(&mut h);
    h.finish()
}

#[derive(Debug, Clone)]
struct Entry {
    exchange: Exchange,
    stored_ns: u64,
    last_used: u64,
    bytes: usize,
}

/// Simulated CPU cost of a cache lookup at the gateway — far below any
/// translation cost, but not free.
pub const LOOKUP_COST: SimDuration = SimDuration::from_micros(40);

/// A TTL + LRU cache of adapted exchanges at the middleware gateway,
/// keyed by interned [`ContentKey`] ids.
#[derive(Debug)]
pub struct ContentCache {
    ttl_ns: u64,
    byte_budget: usize,
    interner: KeyInterner<ContentKey>,
    entries: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ContentCache {
    /// Creates a cache with the given TTL (simulated nanoseconds) and
    /// byte budget over cached payload bytes.
    pub fn new(ttl_ns: u64, byte_budget: usize) -> Self {
        ContentCache {
            ttl_ns,
            byte_budget,
            interner: KeyInterner::new(),
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// True when `req` is even a candidate for caching: form-free GETs
    /// without credentials. Authed requests must always reach the host's
    /// auth realm — serving (or capturing) protected pages at the
    /// gateway would let a later request with missing or wrong
    /// credentials read them.
    pub fn cacheable_request(req: &MobileRequest) -> bool {
        req.form.is_none() && req.auth.is_none()
    }

    /// True when `ex` may be stored: a successful exchange that set no
    /// cookies (cookie-minting responses are per-client) and was not
    /// marked `no-store` by the host (one-shot search results would
    /// churn the hot pages out of the LRU without ever revisiting).
    pub fn cacheable_exchange(ex: &Exchange) -> bool {
        ex.status.is_success() && ex.set_cookies.is_empty() && !ex.no_store
    }

    /// Interns the key for `req` as adapted by `middleware_kind` for
    /// `device_class`, returning its dense id. Alloc-free for shapes
    /// seen before: fields are hashed and compared borrowed, and the
    /// owned [`ContentKey`] is only built on first sight.
    pub fn intern(&mut self, req: &MobileRequest, device_class: &str, middleware_kind: &str) -> u64 {
        let hash = hash_fields(&req.url, device_class, middleware_kind, &req.cookies);
        self.interner.intern_with(
            hash,
            |k| {
                k.url == req.url
                    && k.device_class == device_class
                    && k.middleware_kind == middleware_kind
                    && k.cookies == req.cookies
            },
            || ContentKey::for_request(req, device_class, middleware_kind),
        )
    }

    /// Looks up the interned id for `req` without interning: `None` when
    /// this shape has never been *stored*. The gateway probes on lookup
    /// and interns only at store time, so a high-cardinality key stream
    /// (distinct search query URLs) holds the interner flat.
    pub fn probe(&self, req: &MobileRequest, device_class: &str, middleware_kind: &str) -> Option<u64> {
        let hash = hash_fields(&req.url, device_class, middleware_kind, &req.cookies);
        self.interner.probe_with(hash, |k| {
            k.url == req.url
                && k.device_class == device_class
                && k.middleware_kind == middleware_kind
                && k.cookies == req.cookies
        })
    }

    /// Records a miss for a request whose key was never interned (the
    /// probe found no id, so [`ContentCache::lookup`] never ran) — keeps
    /// hit/miss accounting identical to a lookup-through-intern flow.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Interns an already-built [`ContentKey`] (equivalent to
    /// [`ContentCache::intern`] on the request it was built from).
    pub fn intern_key(&mut self, key: &ContentKey) -> u64 {
        let hash = hash_fields(&key.url, &key.device_class, &key.middleware_kind, &key.cookies);
        self.interner
            .intern_with(hash, |k| k == key, || key.clone())
    }

    /// Returns the re-served exchange when a fresh entry exists for the
    /// interned key `id` at `now_ns`: same payload and air-side byte
    /// counts, but zero wired bytes, zero host CPU, no extra round
    /// trips, and only [`LOOKUP_COST`] of middleware CPU. One probe
    /// serves hit, miss, and expiry alike.
    pub fn lookup(&mut self, id: u64, now_ns: u64) -> Option<Exchange> {
        match self.entries.entry(id) {
            MapEntry::Occupied(mut occ) => {
                if now_ns.saturating_sub(occ.get().stored_ns) < self.ttl_ns {
                    self.hits += 1;
                    self.tick += 1;
                    occ.get_mut().last_used = self.tick;
                    let mut ex = occ.get().exchange.clone();
                    ex.wired_bytes = (0, 0);
                    ex.host_cpu = SimDuration::ZERO;
                    ex.middleware_cpu = LOOKUP_COST;
                    ex.extra_round_trips = 0;
                    Some(ex)
                } else {
                    let old = occ.remove();
                    self.bytes -= old.bytes;
                    self.misses += 1;
                    None
                }
            }
            MapEntry::Vacant(_) => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores an exchange under the interned key `id` (call
    /// [`ContentCache::cacheable_request`] and
    /// [`ContentCache::cacheable_exchange`] first), evicting LRU entries
    /// until the byte budget holds. Returns the number of evictions.
    pub fn store(&mut self, id: u64, ex: &Exchange, now_ns: u64) -> usize {
        let bytes = self.interner.resolve(id).url.len() + ex.content.len();
        if bytes > self.byte_budget {
            return 0;
        }
        if let Some(old) = self.entries.remove(&id) {
            self.bytes -= old.bytes;
        }
        self.tick += 1;
        self.entries.insert(
            id,
            Entry {
                exchange: ex.clone(),
                stored_ns: now_ns,
                last_used: self.tick,
                bytes,
            },
        );
        self.bytes += bytes;
        let mut evicted = 0;
        while self.bytes > self.byte_budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id)
                .expect("over budget implies non-empty");
            let old = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= old.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry (e.g. when the gateway is reconfigured). Key
    /// ids survive — re-admissions after a flush reuse them.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload + key bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Distinct keys ever interned (live or evicted).
    pub fn interned_keys(&self) -> usize {
        self.interner.len()
    }

    /// Fresh lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing fresh since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups so far (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AirFormat;
    use bytes::Bytes;
    use hostsite::Status;

    fn exchange(body: &str) -> Exchange {
        Exchange {
            status: Status::Ok,
            content: Bytes::copy_from_slice(body.as_bytes()),
            format: AirFormat::WmlBinary,
            uplink_bytes: 40,
            downlink_bytes: body.len() + 8,
            wired_bytes: (120, body.len() * 3),
            middleware_cpu: SimDuration::from_micros(450),
            host_cpu: SimDuration::from_micros(2_500),
            extra_round_trips: 1,
            no_store: false,
            set_cookies: Vec::new(),
            deck: None,
        }
    }

    fn key(url: &str) -> ContentKey {
        ContentKey::for_request(&MobileRequest::get(url), "iPAQ", "WAP")
    }

    #[test]
    fn hits_zero_the_wired_side_and_keep_the_air_side() {
        let mut cache = ContentCache::new(1_000, 10_000);
        let ex = exchange("deck");
        let id = cache.intern_key(&key("/shop"));
        cache.store(id, &ex, 0);
        let hit = cache.lookup(id, 500).expect("fresh hit");
        assert_eq!(hit.content, ex.content);
        assert_eq!(hit.downlink_bytes, ex.downlink_bytes);
        assert_eq!(hit.uplink_bytes, ex.uplink_bytes);
        assert_eq!(hit.wired_bytes, (0, 0));
        assert_eq!(hit.host_cpu, SimDuration::ZERO);
        assert_eq!(hit.middleware_cpu, LOOKUP_COST);
        assert_eq!(hit.extra_round_trips, 0);
        // Expired afterwards.
        assert!(cache.lookup(id, 1_500).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn entries_expire_at_exactly_the_ttl_boundary() {
        // Same boundary rule as the host page cache and the DB query
        // cache: fresh strictly before `stored + ttl`, expired at it.
        let mut cache = ContentCache::new(1_000, 10_000);
        let id = cache.intern_key(&key("/shop"));
        cache.store(id, &exchange("deck"), 0);
        assert!(cache.lookup(id, 999).is_some(), "one tick early: fresh");
        assert!(
            cache.lookup(id, 1_000).is_none(),
            "probed at exactly stored + ttl: expired"
        );
        assert!(cache.is_empty(), "expired entry is dropped");
    }

    #[test]
    fn device_class_and_kind_partition_the_key_space() {
        let mut cache = ContentCache::new(u64::MAX / 2, 10_000);
        let id = cache.intern_key(&key("/shop"));
        cache.store(id, &exchange("wap deck"), 0);
        let imode = cache.intern(&MobileRequest::get("/shop"), "iPAQ", "i-mode");
        assert!(cache.lookup(imode, 1).is_none());
        let other_device = cache.intern(&MobileRequest::get("/shop"), "P503i", "WAP");
        assert!(cache.lookup(other_device, 1).is_none());
        let cookied = cache.intern(
            &MobileRequest::get("/shop").with_cookie("sid", "s"),
            "iPAQ",
            "WAP",
        );
        assert!(cache.lookup(cookied, 1).is_none());
        assert_eq!(cache.interned_keys(), 4, "four distinct shapes");
    }

    #[test]
    fn interned_request_ids_match_built_key_ids() {
        let mut cache = ContentCache::new(u64::MAX / 2, 10_000);
        let req = MobileRequest::get("/shop?x=1").with_cookie("sid", "s");
        let by_req = cache.intern(&req, "iPAQ", "WAP");
        let by_key = cache.intern_key(&ContentKey::for_request(&req, "iPAQ", "WAP"));
        assert_eq!(by_req, by_key);
        assert_eq!(cache.interned_keys(), 1);
    }

    #[test]
    fn only_clean_get_exchanges_are_cacheable() {
        assert!(ContentCache::cacheable_request(&MobileRequest::get("/a")));
        assert!(!ContentCache::cacheable_request(&MobileRequest::post(
            "/a",
            vec![]
        )));
        // Credential-carrying requests never enter the cache: the host's
        // auth realm must see every one of them.
        assert!(!ContentCache::cacheable_request(
            &MobileRequest::get("/ward/patient").with_auth("nurse", "secret")
        ));
        let mut ex = exchange("x");
        assert!(ContentCache::cacheable_exchange(&ex));
        ex.set_cookies.push(("sid".into(), "s".into()));
        assert!(!ContentCache::cacheable_exchange(&ex));
        let mut failed = exchange("x");
        failed.status = Status::NotFound;
        assert!(!ContentCache::cacheable_exchange(&failed));
        // `no_store` responses (search results) bypass admission even
        // when everything else about the exchange is clean.
        let mut search = exchange("x");
        search.no_store = true;
        assert!(!ContentCache::cacheable_exchange(&search));
    }

    #[test]
    fn probing_unseen_keys_never_grows_the_interner() {
        // Regression test for the unbounded-interner bug: lookups probe
        // for an id and only stores intern, so a high-cardinality query
        // stream leaves the interner exactly as large as the set of
        // exchanges actually admitted.
        let mut cache = ContentCache::new(u64::MAX / 2, 10_000);
        for i in 0..100_000u64 {
            let req = MobileRequest::get(&format!("/search?q=term{i}"));
            assert!(cache.probe(&req, "iPAQ", "WAP").is_none());
            cache.record_miss();
        }
        assert_eq!(cache.interned_keys(), 0, "probes intern nothing");
        assert_eq!(cache.misses(), 100_000);
        // A stored exchange interns once and probes back to the same id.
        let req = MobileRequest::get("/shop");
        let id = cache.intern(&req, "iPAQ", "WAP");
        cache.store(id, &exchange("deck"), 0);
        assert_eq!(cache.probe(&req, "iPAQ", "WAP"), Some(id));
        assert_eq!(cache.interned_keys(), 1);
    }

    #[test]
    fn lru_eviction_bounds_the_budget() {
        let mut cache = ContentCache::new(u64::MAX / 2, 24);
        let (a, b) = (cache.intern_key(&key("/a")), cache.intern_key(&key("/b")));
        cache.store(a, &exchange("0123456789"), 0);
        cache.store(b, &exchange("0123456789"), 1);
        assert!(cache.lookup(a, 2).is_some());
        let c = cache.intern_key(&key("/c"));
        let evicted = cache.store(c, &exchange("0123456789"), 3);
        assert_eq!(evicted, 1);
        assert!(cache.lookup(b, 4).is_none());
        assert!(cache.lookup(a, 4).is_some());
        assert!(cache.bytes() <= 24);
    }
}
