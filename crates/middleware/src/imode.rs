//! The i-mode service.
//!
//! §5.1: "i-mode is the full-color, always-on, and packet-switched
//! Internet service for cellular phones offered by NTT DoCoMo." Table 3
//! contrasts it with WAP: a complete service rather than a protocol,
//! cHTML rather than WML as host language, and "TCP/IP modifications"
//! rather than a translating gateway as its major technology.
//!
//! Architecturally that means: no per-page translation step (content is
//! served in cHTML — here the service applies the cheap HTML→cHTML
//! *filter* when a site only offers HTML), textual markup over the air
//! (heavier bytes than WBXML), and an always-on packet session (no
//! session-setup round trip, ever). Those are exactly the knobs the
//! Table 3 experiment turns.

use std::sync::Arc;

use bytes::Bytes;
use hostsite::{ContentFormat, HostComputer, HttpResponse};
use markup::transcode::html_to_chtml;
use markup::{chtml, html};
use simnet::stats::Counter;
use simnet::SimDuration;

use crate::memo::{SharedTranscodeMemo, TranscodeMode, TranscodedDeck};
use crate::{AirFormat, Exchange, Middleware, MobileRequest};

/// Packet-header framing per i-mode response on the air.
pub const IMODE_RESPONSE_OVERHEAD: usize = 16;

/// The i-mode service middleware.
#[derive(Debug, Default)]
pub struct IModeService {
    /// Shard-local memo of pure filter results (fleet engine only).
    memo: Option<SharedTranscodeMemo>,
    /// Exchanges performed.
    pub requests: Counter,
    /// Pages that arrived as HTML and were filtered to cHTML.
    pub filtered_pages: Counter,
}

impl IModeService {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cHTML filter is much cheaper than WAP's full translation: no
    /// re-authoring, no binary encoding.
    fn filter_cost(html_bytes: usize) -> SimDuration {
        SimDuration::from_micros(50)
            + SimDuration::from_micros(30) * (html_bytes as u32).div_ceil(1024)
    }

    /// The pure HTML → cHTML filter: everything derived from the body
    /// alone. Returns the air payload and whether the page needed
    /// filtering (already-compact pages pass through unchanged).
    ///
    /// When the host attached the body's parsed tree
    /// (`HttpResponse::page`), the parse is skipped — and a page that
    /// validates as cHTML passes through as the body's own buffer (the
    /// body is defined to be the tree's serialised form), with the tree
    /// handed onward so the station browser can skip its parse too.
    fn filter(resp: &HttpResponse) -> (Bytes, bool, Option<Arc<markup::Element>>) {
        if let Some(doc) = resp.page.as_ref() {
            return if chtml::validate(doc).is_ok() {
                (resp.body.as_bytes_buf(), false, Some(Arc::clone(doc)))
            } else {
                (Bytes::from(html_to_chtml(doc).to_markup()), true, None)
            };
        }
        match html::parse_html(resp.body.as_str()) {
            Ok(doc) => {
                if chtml::validate(&doc).is_ok() {
                    // A parsed tree re-serialises to markup that parses
                    // back equal, so the tree can ride along.
                    let markup = doc.to_markup();
                    (Bytes::from(markup), false, Some(Arc::new(doc)))
                } else {
                    (Bytes::from(html_to_chtml(&doc).to_markup()), true, None)
                }
            }
            Err(_) => (
                Bytes::from(
                    html::page("Error", vec![html::p("content unavailable").into()]).to_markup(),
                ),
                false,
                None,
            ),
        }
    }
}

impl Middleware for IModeService {
    fn name(&self) -> &str {
        "i-mode"
    }

    fn attach_transcode_memo(&mut self, memo: SharedTranscodeMemo) {
        self.memo = Some(memo);
    }

    fn exchange(&mut self, host: &mut HostComputer, req: &MobileRequest) -> Exchange {
        self.requests.incr();

        // The phone talks (nearly) plain HTTP over the packet network.
        let http_req = req.to_http(ContentFormat::Chtml);
        let uplink_bytes = http_req.wire_size();
        let wired_up = uplink_bytes; // same representation end to end
        let (resp, host_cpu) = host.process(http_req);
        let wired_down = resp.wire_size();

        // Serve cHTML: pass through if already compact, filter if not.
        // The filter is pure in the body, so a shard memo can replay it.
        let (content, middleware_cpu, deck) = if resp.format == ContentFormat::Chtml {
            // Pass-through shares the response's refcounted buffer (and
            // the host's page tree, when it attached one).
            (
                resp.body.as_bytes_buf(),
                SimDuration::from_micros(20),
                resp.page.clone(),
            )
        } else {
            let (content, filtered, deck) = match &self.memo {
                Some(memo) => {
                    let body_buf = resp.body.as_bytes_buf();
                    let mut memo = memo.borrow_mut();
                    match memo.get(TranscodeMode::Chtml, &body_buf) {
                        Some(deck) => (deck.content, deck.flagged, deck.deck),
                        None => {
                            let (content, filtered, deck) = Self::filter(&resp);
                            memo.insert(
                                TranscodeMode::Chtml,
                                body_buf,
                                TranscodedDeck {
                                    content: content.clone(),
                                    flagged: filtered,
                                    deck: deck.clone(),
                                },
                            );
                            (content, filtered, deck)
                        }
                    }
                }
                None => Self::filter(&resp),
            };
            if filtered {
                self.filtered_pages.incr();
            }
            (content, Self::filter_cost(resp.body.len()), deck)
        };
        let downlink_bytes = IMODE_RESPONSE_OVERHEAD + content.len();
        obs::metrics::incr("middleware.exchanges");
        obs::metrics::add("middleware.transcode_in_bytes", resp.body.len() as u64);
        obs::metrics::add("middleware.transcode_out_bytes", content.len() as u64);

        Exchange {
            status: resp.status,
            content,
            format: AirFormat::Chtml,
            uplink_bytes,
            downlink_bytes,
            wired_bytes: (wired_up, wired_down),
            middleware_cpu,
            host_cpu,
            // Always-on packet service: no session setup, ever (§5.1).
            extra_round_trips: 0,
            no_store: resp.no_store,
            set_cookies: resp.set_cookies.into_iter().collect(),
            deck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wap::WapGateway;
    use hostsite::db::Database;
    use hostsite::Status;

    fn host_with_pages() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 5);
        let fancy = html::page(
            "Menu",
            vec![
                html::h1("Today's menu").into(),
                html::table([("espresso", "¥300"), ("latte", "¥450")]).into(),
                html::a("/order?item=espresso", "Order espresso").into(),
            ],
        );
        host.web.static_page("/menu", fancy.to_markup());
        let compact = html::page("Plain", vec![html::p("already compact").into()]);
        host.web.static_page("/plain", compact.to_markup());
        host
    }

    #[test]
    fn serves_valid_chtml_with_no_session_setup() {
        let mut host = host_with_pages();
        let mut imode = IModeService::new();
        let ex = imode.exchange(&mut host, &MobileRequest::get("/menu"));
        assert_eq!(ex.status, Status::Ok);
        assert_eq!(ex.format, AirFormat::Chtml);
        assert_eq!(ex.extra_round_trips, 0);
        let doc = markup::parse::parse(std::str::from_utf8(&ex.content).unwrap()).unwrap();
        chtml::validate(&doc).unwrap();
        assert!(doc.text_content().contains("espresso"));
        assert!(doc.find("table").is_none()); // tables filtered away
        assert_eq!(imode.filtered_pages.get(), 1);
    }

    #[test]
    fn already_compact_pages_pass_through_unfiltered() {
        let mut host = host_with_pages();
        let mut imode = IModeService::new();
        let ex = imode.exchange(&mut host, &MobileRequest::get("/plain"));
        assert_eq!(imode.filtered_pages.get(), 0);
        let doc = markup::parse::parse(std::str::from_utf8(&ex.content).unwrap()).unwrap();
        assert!(doc.text_content().contains("already compact"));
    }

    #[test]
    fn table3_tradeoff_wap_cpu_vs_imode_bytes() {
        // The structural comparison behind Table 3: WAP pays translation
        // CPU and wins on air bytes; i-mode pays nothing in CPU and ships
        // heavier text.
        let mut host = host_with_pages();
        let mut wap = WapGateway::default();
        let mut imode = IModeService::new();
        let via_wap = wap.exchange(&mut host, &MobileRequest::get("/menu"));
        let via_imode = imode.exchange(&mut host, &MobileRequest::get("/menu"));
        assert!(via_wap.middleware_cpu > via_imode.middleware_cpu * 2);
        assert!(via_wap.downlink_bytes < via_imode.downlink_bytes);
        // Both preserve the content.
        let wml = markup::wbxml::decode(&via_wap.content).unwrap();
        let chtml_doc =
            markup::parse::parse(std::str::from_utf8(&via_imode.content).unwrap()).unwrap();
        assert!(wml.text_content().contains("espresso"));
        assert!(chtml_doc.text_content().contains("espresso"));
    }

    #[test]
    fn errors_from_the_host_propagate() {
        let mut host = host_with_pages();
        let mut imode = IModeService::new();
        let ex = imode.exchange(&mut host, &MobileRequest::get("/missing"));
        assert_eq!(ex.status, Status::NotFound);
    }
}
