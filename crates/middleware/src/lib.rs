#![warn(missing_docs)]
//! # middleware — mobile middleware (component iii)
//!
//! §5 of the paper: "The term middleware refers to the software layer
//! between the operating system and the distributed applications that
//! interact via the networks. It translates requests from mobile stations
//! to a host computer and adapts content from the host to the mobile
//! station." Table 3 compares the two dominant kinds, both implemented
//! here behind one [`Middleware`] trait:
//!
//! | | WAP | i-mode |
//! |---|---|---|
//! | Developer | WAP Forum | NTT DoCoMo |
//! | Function | a protocol | a complete mobile Internet service |
//! | Host language | WML | cHTML (Compact HTML) |
//! | Major technology | WAP Gateway | TCP/IP modifications |
//! | Key features | widely adopted, flexible | most users, easy to use |
//!
//! [`wap::WapGateway`] receives compact binary-encoded requests, fetches
//! HTML from the host on the wired side, translates it to WML and ships
//! WBXML over the air. [`imode::IModeService`] runs an always-on
//! packet session and serves cHTML with no translation step. The
//! measurable trade-off between them — translation CPU against
//! over-the-air bytes — is Table 3's experiment.

pub mod cache;
pub mod imode;
pub mod memo;
pub mod wap;

use bytes::Bytes;
use simnet::SimDuration;

pub use cache::{ContentCache, ContentKey};
pub use imode::IModeService;
pub use memo::{SharedTranscodeMemo, TranscodeMemo};
pub use wap::WapGateway;

use hostsite::{ContentFormat, HostComputer, HttpRequest, Status};

/// A request issued by a mobile station through middleware.
#[derive(Debug, Clone)]
pub struct MobileRequest {
    /// Target URL path (with optional query).
    pub url: String,
    /// Form parameters for POSTs; `None` makes the request a GET.
    pub form: Option<Vec<(String, String)>>,
    /// Cookies the station holds.
    pub cookies: Vec<(String, String)>,
    /// Basic credentials, if the realm needs them.
    pub auth: Option<(String, String)>,
}

impl MobileRequest {
    /// A GET for `url`.
    pub fn get(url: &str) -> Self {
        MobileRequest {
            url: url.to_owned(),
            form: None,
            cookies: Vec::new(),
            auth: None,
        }
    }

    /// A POST with form fields.
    pub fn post(url: &str, form: Vec<(String, String)>) -> Self {
        MobileRequest {
            url: url.to_owned(),
            form: Some(form),
            cookies: Vec::new(),
            auth: None,
        }
    }

    /// Attaches a cookie (builder style).
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.cookies.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Attaches credentials (builder style).
    pub fn with_auth(mut self, user: &str, password: &str) -> Self {
        self.auth = Some((user.to_owned(), password.to_owned()));
        self
    }

    fn to_http(&self, accept: ContentFormat) -> HttpRequest {
        let mut req = match &self.form {
            None => HttpRequest::get(&self.url),
            Some(form) => HttpRequest::post(&self.url, form.iter().cloned()),
        };
        req = req.with_accept(accept);
        for (k, v) in &self.cookies {
            req = req.with_cookie(k, v);
        }
        if let Some((u, p)) = &self.auth {
            req = req.with_auth(u, p);
        }
        req
    }
}

/// The over-the-air payload format a middleware delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AirFormat {
    /// WBXML-encoded binary WML (WAP).
    WmlBinary,
    /// Textual WML (WAP with binary encoding disabled — ablation only).
    WmlText,
    /// Textual cHTML (i-mode).
    Chtml,
    /// Raw HTML (EC baseline / desktop clients).
    Html,
}

/// Everything a middleware exchange produces and costs.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Response status from the host.
    pub status: Status,
    /// The payload shipped over the air to the station.
    ///
    /// A refcounted [`Bytes`] chunk: the gateway encodes the page once and
    /// every later stage (air-link framing, browser render, caches) shares
    /// the same allocation instead of deep-cloning the body.
    pub content: Bytes,
    /// Payload format.
    pub format: AirFormat,
    /// Bytes sent over the air station → middleware (request).
    pub uplink_bytes: usize,
    /// Bytes sent over the air middleware → station (response+framing).
    pub downlink_bytes: usize,
    /// Bytes on the wired side (request, response).
    pub wired_bytes: (usize, usize),
    /// CPU time spent by the middleware itself (translation, encoding).
    pub middleware_cpu: SimDuration,
    /// CPU time spent by the host computer.
    pub host_cpu: SimDuration,
    /// Extra protocol round trips the middleware needs beyond the basic
    /// request/response (e.g. WSP session setup on first contact).
    pub extra_round_trips: u32,
    /// Cookies the host set (to be stored in the station's jar).
    pub set_cookies: Vec<(String, String)>,
    /// The host marked the response cache-bypassing (`no-store`): the
    /// gateway content cache must not admit it.
    pub no_store: bool,
    /// The parsed form of `content`, when the middleware has it in hand
    /// (the WAP gateway builds the deck it then WBXML-encodes; i-mode's
    /// pass-through keeps the host's page tree). Invariant: when set,
    /// decoding/parsing `content` yields exactly this tree, so the
    /// station browser may render from it without re-parsing.
    pub deck: Option<std::sync::Arc<markup::Element>>,
}

/// The software layer between mobile stations and host computers.
pub trait Middleware {
    /// Middleware name for reports ("WAP", "i-mode").
    fn name(&self) -> &str;

    /// Performs one request against `host` on behalf of a station,
    /// translating the request in and adapting the content out.
    fn exchange(&mut self, host: &mut HostComputer, req: &MobileRequest) -> Exchange;

    /// Attaches a shard-local [`memo::TranscodeMemo`] so repeated bodies
    /// skip re-translation. Translation is a pure function of the body,
    /// so attaching (or not attaching) a memo never changes an exchange.
    /// The default implementation ignores the memo — only middlewares
    /// with a translation step benefit.
    fn attach_transcode_memo(&mut self, _memo: SharedTranscodeMemo) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_request_builders() {
        let get = MobileRequest::get("/shop?item=1");
        assert!(get.form.is_none());
        let post = MobileRequest::post("/buy", vec![("sku".into(), "2".into())])
            .with_cookie("sid", "x")
            .with_auth("u", "p");
        assert!(post.form.is_some());
        assert_eq!(post.cookies.len(), 1);
        let http = post.to_http(ContentFormat::Wml);
        assert_eq!(http.param("sku"), Some("2"));
        assert_eq!(http.cookies.get("sid").map(String::as_str), Some("x"));
        assert_eq!(http.accept, ContentFormat::Wml);
    }
}
