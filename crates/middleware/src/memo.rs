//! The per-shard transcode memo — arena-style reuse of translation
//! results across the users of one fleet shard.
//!
//! Every gateway translation (WAP's HTML → WML → WBXML chain, i-mode's
//! HTML → cHTML filter) is a *pure function* of the exact response body
//! and the translation mode: no clock, no randomness, no per-user
//! state. A fleet shard builds a fresh world per user, so the same
//! storefront page crosses the same gateway code millions of times —
//! and re-parsing it every time is pure waste. The memo caches the
//! translated deck keyed by `(mode, body bytes)`; hits hand back a
//! refcounted [`Bytes`] clone of the deck built the first time.
//!
//! # Why determinism survives
//!
//! A hit returns byte-identical content to what a fresh translation
//! would produce (the function is pure, and the key is the *entire*
//! input), so a system with a memo attached executes bit-for-bit the
//! same transactions as one without. Shards never share a memo across
//! threads — each worker owns one via [`SharedTranscodeMemo`] — so the
//! cross-thread digest gate of the F9 experiment is unaffected by
//! population, shard layout, or hit order.
//!
//! # Bounded residency
//!
//! Distinct bodies stop being inserted once [`TranscodeMemo::capacity`]
//! entries are held (workloads with per-user receipts would otherwise
//! grow O(users)); the hot handful of shared pages is inserted first
//! and stays for the shard's lifetime.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

/// Default bound on distinct translation inputs held per shard.
pub const DEFAULT_MEMO_CAPACITY: usize = 512;

/// The translation a gateway applied — part of the memo key, since the
/// same HTML translates differently per target encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranscodeMode {
    /// WAP: HTML → WML → WBXML binary deck.
    WmlBinary,
    /// WAP ablation: HTML → textual WML deck.
    WmlText,
    /// i-mode: HTML → cHTML filter.
    Chtml,
}

/// A memoised translation result.
#[derive(Debug, Clone)]
pub struct TranscodedDeck {
    /// The over-the-air payload the translation produced.
    pub content: Bytes,
    /// Whether the translation took the gateway's flagged path (WAP: the
    /// source HTML failed to parse and an error card was served; i-mode:
    /// the page needed filtering). Replayed into the owning gateway's
    /// counter on every hit, so counters stay identical with and without
    /// the memo.
    pub flagged: bool,
    /// The parsed form of `content`, when the translation had it in
    /// hand (see `Exchange::deck`). Hits replay the tree too, so the
    /// station-side decode skip survives memoisation.
    pub deck: Option<std::sync::Arc<markup::Element>>,
}

/// A bounded memo of pure translation results for one fleet shard.
#[derive(Debug)]
pub struct TranscodeMemo {
    entries: HashMap<(TranscodeMode, Bytes), TranscodedDeck>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for TranscodeMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl TranscodeMemo {
    /// A memo bounded at [`DEFAULT_MEMO_CAPACITY`] distinct inputs.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// A memo bounded at `capacity` distinct inputs.
    pub fn with_capacity(capacity: usize) -> Self {
        TranscodeMemo {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// The bound on distinct inputs held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the translation of `body` under `mode`. The returned
    /// deck shares the stored allocation (a refcount bump).
    pub fn get(&mut self, mode: TranscodeMode, body: &Bytes) -> Option<TranscodedDeck> {
        // The tuple key needs an owned `Bytes`, which is only an Arc
        // clone — the body bytes themselves are never copied.
        match self.entries.get(&(mode, body.clone())) {
            Some(deck) => {
                self.hits += 1;
                Some(deck.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a translation result. A no-op once the capacity bound is
    /// reached, so per-user unique bodies cannot grow the memo O(users).
    pub fn insert(&mut self, mode: TranscodeMode, body: Bytes, deck: TranscodedDeck) {
        if self.entries.len() < self.capacity {
            self.entries.insert((mode, body), deck);
        }
    }

    /// Distinct inputs currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to translate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The handle a fleet shard passes to every gateway it builds: one memo,
/// shared by refcount within the shard's thread, never across threads.
pub type SharedTranscodeMemo = Rc<RefCell<TranscodeMemo>>;

/// A fresh shard-local memo handle.
pub fn shared_memo() -> SharedTranscodeMemo {
    Rc::new(RefCell::new(TranscodeMemo::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn memo_round_trips_by_mode_and_body() {
        let mut memo = TranscodeMemo::new();
        let html = body("<html><body><p>x</p></body></html>");
        assert!(memo.get(TranscodeMode::WmlBinary, &html).is_none());
        memo.insert(
            TranscodeMode::WmlBinary,
            html.clone(),
            TranscodedDeck {
                content: body("deck"),
                flagged: false,
                deck: None,
            },
        );
        let hit = memo.get(TranscodeMode::WmlBinary, &html).expect("hit");
        assert_eq!(hit.content.as_ref(), b"deck");
        assert!(!hit.flagged);
        // Same body under a different mode is a distinct entry.
        assert!(memo.get(TranscodeMode::Chtml, &html).is_none());
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn capacity_bounds_distinct_inserts() {
        let mut memo = TranscodeMemo::with_capacity(2);
        for i in 0..10 {
            memo.insert(
                TranscodeMode::WmlBinary,
                body(&format!("page {i}")),
                TranscodedDeck {
                    content: body("d"),
                    flagged: false,
                    deck: None,
                },
            );
        }
        assert_eq!(memo.len(), 2, "inserts stop at the bound");
        // The first two inputs stay resident.
        assert!(memo.get(TranscodeMode::WmlBinary, &body("page 0")).is_some());
        assert!(memo.get(TranscodeMode::WmlBinary, &body("page 9")).is_none());
    }
}
