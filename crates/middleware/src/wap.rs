//! The WAP gateway.
//!
//! §5.1: "The most important technology applied by WAP is probably the
//! WAP Gateway … requests from mobile stations are sent as a URL through
//! the network to the WAP Gateway; responses are sent from the Web server
//! to the WAP Gateway in HTML and are then translated in WML and sent to
//! the mobile stations."
//!
//! The gateway therefore does four jobs per exchange, each visible in the
//! returned [`Exchange`]: decode the station's compact (WSP-style) binary
//! request; issue a plain HTTP request to the host on the wired side;
//! translate the HTML response into a WML deck sized to the device; and
//! WBXML-encode that deck for the air link. Translation costs gateway CPU
//! and a session-setup round trip on first contact — WAP's side of the
//! Table 3 trade-off.

use std::sync::Arc;

use bytes::Bytes;
use hostsite::{ContentFormat, HostComputer};
use markup::transcode::{html_to_wml, WmlOptions};
use markup::{html, wbxml};
use simnet::stats::Counter;
use simnet::SimDuration;

use crate::memo::{SharedTranscodeMemo, TranscodeMode, TranscodedDeck};
use crate::{AirFormat, Exchange, Middleware, MobileRequest};

/// WSP compact request framing overhead in bytes (transaction id, PDU
/// type, capability flags).
pub const WSP_REQUEST_OVERHEAD: usize = 12;

/// WSP response framing overhead in bytes.
pub const WSP_RESPONSE_OVERHEAD: usize = 8;

/// The WAP gateway middleware.
#[derive(Debug)]
pub struct WapGateway {
    wml_options: WmlOptions,
    binary_encoding: bool,
    session_open: bool,
    /// Shard-local memo of pure translation results (fleet engine only).
    memo: Option<SharedTranscodeMemo>,
    /// Exchanges performed.
    pub requests: Counter,
    /// HTML documents that failed to parse (served as an error card).
    pub translation_failures: Counter,
}

impl Default for WapGateway {
    fn default() -> Self {
        Self::new(WmlOptions::default())
    }
}

impl WapGateway {
    /// Creates a gateway that paginates decks per `wml_options`.
    pub fn new(wml_options: WmlOptions) -> Self {
        WapGateway {
            wml_options,
            binary_encoding: true,
            session_open: false,
            memo: None,
            requests: Counter::new(),
            translation_failures: Counter::new(),
        }
    }

    /// A gateway that ships *textual* WML instead of WBXML — an ablation
    /// configuration isolating what the binary encoding buys on the air.
    pub fn without_binary_encoding() -> Self {
        WapGateway {
            binary_encoding: false,
            ..Self::default()
        }
    }

    /// Gateway translation CPU: HTML parse + transcode + WBXML encode,
    /// priced per input kilobyte on gateway-class hardware.
    fn translation_cost(html_bytes: usize) -> SimDuration {
        SimDuration::from_micros(300)
            + SimDuration::from_micros(150) * (html_bytes as u32).div_ceil(1024)
    }

    /// The pure HTML → WML → (WBXML | text) translation: everything the
    /// gateway derives from the response body alone. When the host
    /// attached the body's parsed tree (`HttpResponse::page`), the parse
    /// step is skipped — the tree is defined to round-trip to the same
    /// document. Returns the air payload, whether the source failed to
    /// parse (error card), and — on the binary path, where WBXML
    /// decoding is the exact inverse of encoding — the deck tree itself,
    /// so the station browser can skip the decode.
    fn translate(
        &self,
        html: &str,
        page: Option<&markup::Element>,
    ) -> (Bytes, bool, Option<Arc<markup::Element>>) {
        let (deck, failed) = match page {
            Some(doc) => (html_to_wml(doc, &self.wml_options), false),
            None => match html::parse_html(html) {
                Ok(doc) => (html_to_wml(&doc, &self.wml_options), false),
                Err(_) => {
                    let fallback = html::page("Error", vec![html::p("content unavailable").into()]);
                    (html_to_wml(&fallback, &self.wml_options), true)
                }
            },
        };
        if self.binary_encoding {
            let content = Bytes::from(wbxml::encode(&deck));
            (content, failed, Some(Arc::new(deck)))
        } else {
            (Bytes::from(deck.to_markup()), failed, None)
        }
    }
}

impl Middleware for WapGateway {
    fn name(&self) -> &str {
        "WAP"
    }

    fn attach_transcode_memo(&mut self, memo: SharedTranscodeMemo) {
        self.memo = Some(memo);
    }

    fn exchange(&mut self, host: &mut HostComputer, req: &MobileRequest) -> Exchange {
        self.requests.incr();

        // WSP session establishment on first contact costs one extra
        // round trip over the air.
        let extra_round_trips = if self.session_open {
            0
        } else {
            self.session_open = true;
            1
        };

        // Station → gateway: compact binary-encoded URL request.
        let form_bytes: usize = req
            .form
            .iter()
            .flatten()
            .map(|(k, v)| k.len() + v.len() + 2)
            .sum();
        let cookie_bytes: usize = req.cookies.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
        let auth_bytes = if req.auth.is_some() { 32 } else { 0 };
        let uplink_bytes =
            WSP_REQUEST_OVERHEAD + req.url.len() + form_bytes + cookie_bytes + auth_bytes;

        // Gateway → host: ordinary HTTP on the wired side.
        let http_req = req.to_http(ContentFormat::Html);
        let wired_up = http_req.wire_size();
        let (resp, host_cpu) = host.process(http_req);
        let wired_down = resp.wire_size();

        // Translate HTML → WML → WBXML. The translation is pure in the
        // body, so a shard memo can replay it; hits share the deck
        // allocation and replay the failure flag into the counter.
        let html_len = resp.body.len();
        let mode = if self.binary_encoding {
            TranscodeMode::WmlBinary
        } else {
            TranscodeMode::WmlText
        };
        let (content, failed, deck) = match &self.memo {
            Some(memo) => {
                let body_buf = resp.body.as_bytes_buf();
                let mut memo = memo.borrow_mut();
                match memo.get(mode, &body_buf) {
                    Some(deck) => (deck.content, deck.flagged, deck.deck),
                    None => {
                        let (content, failed, deck) =
                            self.translate(resp.body.as_str(), resp.page.as_deref());
                        memo.insert(
                            mode,
                            body_buf,
                            TranscodedDeck {
                                content: content.clone(),
                                flagged: failed,
                                deck: deck.clone(),
                            },
                        );
                        (content, failed, deck)
                    }
                }
            }
            None => self.translate(resp.body.as_str(), resp.page.as_deref()),
        };
        if failed {
            self.translation_failures.incr();
        }
        let format = if self.binary_encoding {
            AirFormat::WmlBinary
        } else {
            AirFormat::WmlText
        };
        let downlink_bytes = WSP_RESPONSE_OVERHEAD + content.len();
        obs::metrics::incr("middleware.exchanges");
        obs::metrics::add("middleware.transcode_in_bytes", html_len as u64);
        obs::metrics::add("middleware.transcode_out_bytes", content.len() as u64);

        Exchange {
            status: resp.status,
            content,
            format,
            uplink_bytes,
            downlink_bytes,
            wired_bytes: (wired_up, wired_down),
            middleware_cpu: Self::translation_cost(html_len),
            host_cpu,
            extra_round_trips,
            no_store: resp.no_store,
            set_cookies: resp.set_cookies.into_iter().collect(),
            deck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsite::db::Database;
    use hostsite::{HttpRequest, HttpResponse, ServerCtx, Status};
    use markup::wml;

    fn host_with_catalog() -> HostComputer {
        let mut host = HostComputer::new(Database::new(), 3);
        let page = html::page(
            "Catalog",
            vec![
                html::h1("Products").into(),
                html::p("Two fine products are available today").into(),
                html::a("/buy?sku=1", "Buy the widget").into(),
            ],
        );
        host.web.static_page("/catalog", page.to_markup());
        host.web
            .route_post("/buy", |req: &HttpRequest, _ctx: &mut ServerCtx<'_>| {
                let sku = req.param("sku").unwrap_or("?").to_owned();
                HttpResponse::ok(
                    html::page("Done", vec![html::p(&format!("bought {sku}")).into()]).to_markup(),
                )
                .with_cookie("last", &sku)
            });
        host
    }

    #[test]
    fn gateway_translates_html_to_valid_binary_wml() {
        let mut host = host_with_catalog();
        let mut gw = WapGateway::default();
        let ex = gw.exchange(&mut host, &MobileRequest::get("/catalog"));
        assert_eq!(ex.status, Status::Ok);
        assert_eq!(ex.format, AirFormat::WmlBinary);
        let deck = wbxml::decode(&ex.content).expect("valid WBXML over the air");
        wml::validate(&deck).expect("valid WML deck");
        assert!(deck.text_content().contains("Products"));
        assert_eq!(deck.find("a").unwrap().attr("href"), Some("/buy?sku=1"));
    }

    #[test]
    fn air_bytes_are_far_smaller_than_wired_html() {
        let mut host = host_with_catalog();
        let mut gw = WapGateway::default();
        let ex = gw.exchange(&mut host, &MobileRequest::get("/catalog"));
        assert!(
            ex.downlink_bytes < ex.wired_bytes.1,
            "air {} vs wired {}",
            ex.downlink_bytes,
            ex.wired_bytes.1
        );
        // The compact request is smaller than its HTTP form too.
        assert!(ex.uplink_bytes < ex.wired_bytes.0);
    }

    #[test]
    fn first_contact_pays_session_setup_then_stops() {
        let mut host = host_with_catalog();
        let mut gw = WapGateway::default();
        let first = gw.exchange(&mut host, &MobileRequest::get("/catalog"));
        let second = gw.exchange(&mut host, &MobileRequest::get("/catalog"));
        assert_eq!(first.extra_round_trips, 1);
        assert_eq!(second.extra_round_trips, 0);
        assert_eq!(gw.requests.get(), 2);
    }

    #[test]
    fn posts_flow_through_and_cookies_come_back() {
        let mut host = host_with_catalog();
        let mut gw = WapGateway::default();
        let ex = gw.exchange(
            &mut host,
            &MobileRequest::post("/buy", vec![("sku".into(), "1".into())]),
        );
        assert_eq!(ex.status, Status::Ok);
        assert!(ex.set_cookies.iter().any(|(k, v)| k == "last" && v == "1"));
        let deck = wbxml::decode(&ex.content).unwrap();
        assert!(deck.text_content().contains("bought 1"));
    }

    #[test]
    fn unparseable_html_degrades_to_an_error_card() {
        let mut host = HostComputer::new(Database::new(), 3);
        host.web.static_page("/broken", "<html><body><p>unclosed");
        let mut gw = WapGateway::default();
        let ex = gw.exchange(&mut host, &MobileRequest::get("/broken"));
        assert_eq!(gw.translation_failures.get(), 1);
        let deck = wbxml::decode(&ex.content).unwrap();
        wml::validate(&deck).unwrap();
        assert!(deck.text_content().contains("content unavailable"));
    }

    #[test]
    fn translation_cpu_scales_with_page_size() {
        let mut host = HostComputer::new(Database::new(), 3);
        let small = html::page("s", vec![html::p("tiny").into()]);
        let paragraphs: Vec<markup::Node> = (0..200)
            .map(|i| html::p(&format!("long paragraph {i}")).into())
            .collect();
        let large = html::page("l", paragraphs);
        host.web.static_page("/small", small.to_markup());
        host.web.static_page("/large", large.to_markup());
        let mut gw = WapGateway::default();
        let ex_small = gw.exchange(&mut host, &MobileRequest::get("/small"));
        let ex_large = gw.exchange(&mut host, &MobileRequest::get("/large"));
        assert!(ex_large.middleware_cpu > ex_small.middleware_cpu);
    }
}
