//! Split-connection (indirect) TCP at the base station.
//!
//! Yavatkar & Bhagawat \[16\] (cited in §5.2): "splits the path between
//! the mobile node and the fixed node into two separate sub-paths: one
//! over the wireless links and the other over the wired links. This
//! approach limits the TCP performance degradation in a 'short' wireless
//! link connection."
//!
//! [`SplitProxy`] is the base-station half: it accepts the fixed host's
//! connection on the wired side, opens its own connection to the mobile on
//! the wireless side, and relays bytes between the two. Wireless losses
//! now shrink only the short wireless sub-connection's congestion window
//! and are recovered within a wireless-hop RTT.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use netstack::Ip;
use simnet::stats::Counter;
use simnet::trace::Trace;

use crate::conn::Connection;
use crate::seg::SocketAddr;
use crate::tcp::Tcp;

/// A split-TCP relay at a base station.
pub struct SplitProxy {
    /// Bytes relayed wired → wireless.
    pub bytes_downstream: Counter,
    /// Bytes relayed wireless → wired.
    pub bytes_upstream: Counter,
    /// Sub-connection pairs established.
    pub pairs: Counter,
}

impl std::fmt::Debug for SplitProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitProxy")
            .field("pairs", &self.pairs.get())
            .field("bytes_downstream", &self.bytes_downstream.get())
            .finish()
    }
}

impl SplitProxy {
    /// Installs a relay on the base station's TCP instance `bs_tcp`.
    ///
    /// Connections arriving on `listen_port` are paired with a fresh
    /// connection from `bs_ip` to `mobile_target`; data and close events
    /// are piped both ways.
    pub fn install(
        bs_tcp: &Rc<Tcp>,
        bs_ip: Ip,
        listen_port: u16,
        mobile_target: SocketAddr,
        trace: Trace,
    ) -> Rc<Self> {
        let proxy = Rc::new(SplitProxy {
            bytes_downstream: Counter::new(),
            bytes_upstream: Counter::new(),
            pairs: Counter::new(),
        });
        let bs_tcp_for_accept = Rc::clone(bs_tcp);
        let proxy_for_accept = Rc::clone(&proxy);
        bs_tcp.listen(listen_port, move |sim, wired_conn| {
            proxy_for_accept.pairs.incr();
            trace.log(
                sim.now(),
                "split",
                format!("pairing wired {} with wireless leg", wired_conn.remote()),
            );
            let wireless_conn = bs_tcp_for_accept.connect(sim, bs_ip, mobile_target);
            Self::pipe(
                &proxy_for_accept,
                &wired_conn,
                &wireless_conn,
                Direction::Down,
            );
            Self::pipe(
                &proxy_for_accept,
                &wireless_conn,
                &wired_conn,
                Direction::Up,
            );
        });
        proxy
    }

    fn pipe(proxy: &Rc<SplitProxy>, from: &Rc<Connection>, to: &Rc<Connection>, dir: Direction) {
        // Data arriving before the outgoing leg is established is buffered
        // here and flushed on establishment.
        let pending: Rc<RefCell<Vec<Bytes>>> = Rc::default();
        {
            let to = Rc::clone(to);
            let pending = Rc::clone(&pending);
            let proxy = Rc::clone(proxy);
            from.on_data(move |sim, data: Bytes| {
                match dir {
                    Direction::Down => proxy.bytes_downstream.add(data.len() as u64),
                    Direction::Up => proxy.bytes_upstream.add(data.len() as u64),
                }
                if to.state() == crate::conn::State::Established {
                    // Relay the refcounted chunk as-is: the proxy never
                    // deep-copies the byte stream it splices.
                    to.send_bytes(sim, data);
                } else {
                    pending.borrow_mut().push(data);
                }
            });
        }
        {
            let to_flush = Rc::clone(to);
            let pending = Rc::clone(&pending);
            to.on_established(move |sim| {
                for data in pending.borrow_mut().drain(..) {
                    to_flush.send_bytes(sim, data);
                }
            });
        }
        {
            let to = Rc::clone(to);
            from.on_closed(move |sim| {
                if to.state() == crate::conn::State::Established {
                    to.close(sim);
                }
            });
        }
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Down,
    Up,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::Tcp;
    use netstack::node::Network;
    use netstack::Subnet;
    use simnet::link::{LinkParams, LossModel};
    use simnet::rng::rng_for;
    use simnet::{SimDuration, Simulator};
    use std::cell::RefCell;

    const FIXED: Ip = Ip::new(10, 0, 0, 1);
    const BS: Ip = Ip::new(10, 0, 0, 254);
    const MOBILE: Ip = Ip::new(172, 16, 0, 5);

    fn world(loss: LossModel) -> (Simulator, Rc<Tcp>, Rc<Tcp>, Rc<Tcp>, Trace) {
        let sim = Simulator::new();
        let trace = Trace::for_test();
        let mut net = Network::new();
        let fixed = net.add_node("fixed", FIXED);
        let bs = net.add_node("bs", BS);
        let mobile = net.add_node("mobile", MOBILE);
        Network::connect(&fixed, FIXED, &bs, BS, LinkParams::wired_wan());
        let mut wparams = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
        wparams.loss = loss;
        wparams.queue_capacity = 1024;
        let (d, u) = Network::connect(&bs, BS, &mobile, MOBILE, wparams);
        d.set_rng(rng_for(9, "split.down"));
        u.set_rng(rng_for(9, "split.up"));
        fixed.add_route(Subnet::DEFAULT, BS);
        mobile.add_route(Subnet::DEFAULT, BS);
        (
            sim,
            Tcp::install(fixed, trace.clone()),
            Tcp::install(bs, trace.clone()),
            Tcp::install(mobile, trace.clone()),
            trace,
        )
    }

    fn sink_on(tcp: &Rc<Tcp>, port: u16) -> Rc<RefCell<Vec<u8>>> {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();
        let b = Rc::clone(&buf);
        tcp.listen(port, move |_sim, conn| {
            let b = Rc::clone(&b);
            conn.on_data(move |_sim, data| b.borrow_mut().extend_from_slice(&data));
        });
        buf
    }

    #[test]
    fn relays_the_exact_byte_stream() {
        let (mut sim, tcp_f, tcp_bs, tcp_m, trace) = world(LossModel::None);
        let proxy = SplitProxy::install(&tcp_bs, BS, 80, SocketAddr::new(MOBILE, 80), trace);
        let sink = sink_on(&tcp_m, 80);
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(BS, 80));
        let payload: Vec<u8> = (0..120_000u32).map(|i| (i % 241) as u8).collect();
        conn.send(&mut sim, &payload);
        conn.close(&mut sim);
        sim.run();
        assert_eq!(*sink.borrow(), payload);
        assert_eq!(proxy.pairs.get(), 1);
        assert_eq!(proxy.bytes_downstream.get(), payload.len() as u64);
    }

    #[test]
    fn wireless_loss_never_shrinks_the_wired_senders_window() {
        let (mut sim, tcp_f, tcp_bs, tcp_m, trace) = world(LossModel::Bernoulli { p: 0.05 });
        let _proxy = SplitProxy::install(&tcp_bs, BS, 80, SocketAddr::new(MOBILE, 80), trace);
        let sink = sink_on(&tcp_m, 80);
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(BS, 80));
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
        conn.send(&mut sim, &payload);
        sim.run();
        assert_eq!(*sink.borrow(), payload);
        // The wired sub-connection crosses a lossless link: zero end-to-end
        // retransmissions at the fixed host — the whole point of I-TCP.
        assert_eq!(conn.stats.retransmits.get(), 0);
        assert_eq!(conn.stats.rtos.get(), 0);
    }

    #[test]
    fn close_propagates_across_the_split() {
        let (mut sim, tcp_f, tcp_bs, tcp_m, trace) = world(LossModel::None);
        SplitProxy::install(&tcp_bs, BS, 80, SocketAddr::new(MOBILE, 80), trace);
        let closed: Rc<RefCell<u32>> = Rc::default();
        {
            let c = Rc::clone(&closed);
            tcp_m.listen(80, move |_sim, conn| {
                let c = Rc::clone(&c);
                conn.on_data(|_, _| {});
                conn.on_closed(move |_| *c.borrow_mut() += 1);
                let conn2 = Rc::clone(&conn);
                // Server closes in response to EOF-ish: close when client does.
                conn.on_established(move |_sim| {
                    let _ = &conn2;
                });
            });
        }
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(BS, 80));
        conn.send(&mut sim, b"done");
        conn.close(&mut sim);
        sim.run();
        // The mobile-side connection saw the FIN relayed through the proxy.
        // (Full Done requires the mobile to close too; we assert the relay
        // delivered the data and the wired side completed.)
        assert_eq!(conn.unacked(), 0);
    }
}
