//! The per-node TCP endpoint: demultiplexing, listeners, active opens.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use netstack::{Ip, IpPacket, Node, Protocol};
use simnet::trace::Trace;
use simnet::Simulator;

use crate::conn::Connection;
use crate::seg::{SocketAddr, TcpSegment};

type AcceptCallback = Rc<dyn Fn(&mut Simulator, Rc<Connection>)>;

/// The TCP protocol instance attached to one [`Node`].
///
/// Install with [`Tcp::install`]; then [`Tcp::listen`] for passive opens
/// and [`Tcp::connect`] for active ones. Segments are demultiplexed to
/// connections by the `(local, remote)` socket-address pair.
pub struct Tcp {
    node: Rc<Node>,
    conns: RefCell<HashMap<(SocketAddr, SocketAddr), Rc<Connection>>>,
    listeners: RefCell<HashMap<u16, AcceptCallback>>,
    next_ephemeral: std::cell::Cell<u16>,
    trace: Trace,
}

impl std::fmt::Debug for Tcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tcp")
            .field("node", &self.node.name())
            .field("conns", &self.conns.borrow().len())
            .field(
                "listeners",
                &self.listeners.borrow().keys().collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Tcp {
    /// Installs a TCP instance on `node`, claiming its
    /// [`Protocol::Tcp`] upper-layer slot.
    pub fn install(node: Rc<Node>, trace: Trace) -> Rc<Self> {
        let tcp = Rc::new(Tcp {
            node: Rc::clone(&node),
            conns: RefCell::new(HashMap::new()),
            listeners: RefCell::new(HashMap::new()),
            next_ephemeral: std::cell::Cell::new(49_152),
            trace,
        });
        {
            let tcp = Rc::clone(&tcp);
            node.set_upper(Protocol::Tcp, move |sim, pkt| tcp.handle_packet(sim, pkt));
        }
        tcp
    }

    /// The node this instance is attached to.
    pub fn node(&self) -> &Rc<Node> {
        &self.node
    }

    /// Starts accepting connections on `port`; `accept` runs for each new
    /// connection as soon as its state object exists (before the handshake
    /// completes — register callbacks there).
    pub fn listen(&self, port: u16, accept: impl Fn(&mut Simulator, Rc<Connection>) + 'static) {
        self.listeners.borrow_mut().insert(port, Rc::new(accept));
    }

    /// Opens a connection from `local_ip:ephemeral` to `remote`.
    ///
    /// The returned connection is in `SynSent`; use
    /// [`Connection::on_established`] to learn when it opens.
    pub fn connect(&self, sim: &mut Simulator, local_ip: Ip, remote: SocketAddr) -> Rc<Connection> {
        let port = self
            .next_ephemeral
            .replace(self.next_ephemeral.get().wrapping_add(1));
        let local = SocketAddr::new(local_ip, port);
        let conn = Connection::new(Rc::clone(&self.node), local, remote, self.trace.clone());
        self.conns
            .borrow_mut()
            .insert((local, remote), Rc::clone(&conn));
        conn.open_active(sim);
        conn
    }

    /// Number of live connection records.
    pub fn connection_count(&self) -> usize {
        self.conns.borrow().len()
    }

    fn handle_packet(self: &Rc<Self>, sim: &mut Simulator, pkt: IpPacket) {
        let Some(seg) = pkt.payload.downcast_ref::<TcpSegment>().cloned() else {
            return;
        };
        let key = (seg.dst, seg.src);
        let existing = self.conns.borrow().get(&key).cloned();
        if let Some(conn) = existing {
            conn.handle_segment(sim, seg);
            return;
        }
        // New connection: must be a SYN to a listening port.
        if seg.syn && !seg.ack_flag {
            let listener = self.listeners.borrow().get(&seg.dst.port).cloned();
            if let Some(accept) = listener {
                let conn =
                    Connection::new(Rc::clone(&self.node), seg.dst, seg.src, self.trace.clone());
                self.conns.borrow_mut().insert(key, Rc::clone(&conn));
                accept(sim, Rc::clone(&conn));
                conn.handle_segment(sim, seg);
            }
        }
        // Non-SYN segments for unknown connections are silently dropped
        // (no RST modelling — nothing in the experiments needs it).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::State;
    use bytes::Bytes;
    use netstack::node::Network;
    use netstack::Subnet;
    use simnet::link::{LinkParams, LossModel};
    use simnet::rng::rng_for;
    use simnet::{SimDuration, SimTime};
    use std::cell::RefCell;

    const A: Ip = Ip::new(10, 0, 0, 1);
    const B: Ip = Ip::new(10, 0, 0, 2);

    struct Pair {
        sim: Simulator,
        tcp_a: Rc<Tcp>,
        tcp_b: Rc<Tcp>,
        links: (Rc<simnet::Link<IpPacket>>, Rc<simnet::Link<IpPacket>>),
        trace: Trace,
    }

    fn pair(params: LinkParams) -> Pair {
        let sim = Simulator::new();
        let trace = Trace::for_test();
        let mut net = Network::new();
        let a = net.add_node("a", A);
        let b = net.add_node("b", B);
        let links = Network::connect(&a, A, &b, B, params);
        links.0.set_rng(rng_for(1, "tcp.ab"));
        links.1.set_rng(rng_for(1, "tcp.ba"));
        a.add_route(Subnet::DEFAULT, B);
        b.add_route(Subnet::DEFAULT, A);
        let tcp_a = Tcp::install(a, trace.clone());
        let tcp_b = Tcp::install(b, trace.clone());
        Pair {
            sim,
            tcp_a,
            tcp_b,
            links,
            trace,
        }
    }

    /// Collects everything the server receives on port 80.
    fn server_sink(tcp: &Rc<Tcp>) -> Rc<RefCell<Vec<u8>>> {
        let received: Rc<RefCell<Vec<u8>>> = Rc::default();
        let r = Rc::clone(&received);
        tcp.listen(80, move |_sim, conn| {
            let r = Rc::clone(&r);
            conn.on_data(move |_sim, data: Bytes| r.borrow_mut().extend_from_slice(&data));
        });
        received
    }

    #[test]
    fn handshake_reaches_established_on_both_sides() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let _sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        assert_eq!(conn.state(), State::SynSent);
        p.sim.run();
        assert_eq!(conn.state(), State::Established);
        assert_eq!(p.tcp_b.connection_count(), 1);
        assert!(p.trace.contains("tcp", "established"));
    }

    #[test]
    fn small_transfer_delivers_exact_bytes() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        conn.send(&mut p.sim, &payload);
        p.sim.run();
        assert_eq!(*sink.borrow(), payload);
        assert_eq!(conn.stats.retransmits.get(), 0);
    }

    #[test]
    fn bulk_transfer_on_clean_link_uses_no_retransmits() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(10),
        ));
        let sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let payload = vec![7u8; 500_000];
        conn.send(&mut p.sim, &payload);
        p.sim.run();
        assert_eq!(sink.borrow().len(), payload.len());
        assert_eq!(conn.stats.retransmits.get(), 0);
        assert_eq!(conn.stats.rtos.get(), 0);
        // RTT estimate should be near 2×10 ms.
        let rtt = conn.stats.rtt.summary();
        assert!(rtt.mean > 0.019 && rtt.mean < 0.08, "rtt mean {}", rtt.mean);
    }

    #[test]
    fn transfer_survives_random_loss() {
        let mut params = LinkParams::reliable(5_000_000, SimDuration::from_millis(10));
        params.loss = LossModel::Bernoulli { p: 0.02 };
        params.queue_capacity = 1024;
        let mut p = pair(params);
        let sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 253) as u8).collect();
        conn.send(&mut p.sim, &payload);
        p.sim.run();
        assert_eq!(*sink.borrow(), payload, "stream corrupted or truncated");
        assert!(
            conn.stats.retransmits.get() > 0,
            "loss must force retransmits"
        );
    }

    #[test]
    fn fast_retransmit_fires_before_rto_on_isolated_loss() {
        let mut params = LinkParams::reliable(10_000_000, SimDuration::from_millis(5));
        params.loss = LossModel::Bernoulli { p: 0.01 };
        params.queue_capacity = 1024;
        let mut p = pair(params);
        let _sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        conn.send(&mut p.sim, &vec![1u8; 400_000]);
        p.sim.run();
        assert!(conn.stats.fast_retransmits.get() > 0);
        // With plenty of dupacks available, most recoveries avoid RTO.
        assert!(conn.stats.fast_retransmits.get() >= conn.stats.rtos.get());
    }

    #[test]
    fn close_completes_both_sides() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let closed_server: Rc<RefCell<Vec<Rc<Connection>>>> = Rc::default();
        {
            let cs = Rc::clone(&closed_server);
            p.tcp_b.listen(80, move |_sim, conn| {
                cs.borrow_mut().push(Rc::clone(&conn));
                // Echo-style server closes when the client closes.
                let c2 = Rc::clone(&conn);
                conn.on_data(move |sim, _data| {
                    c2.close(sim);
                });
            });
        }
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let closed: Rc<RefCell<u32>> = Rc::default();
        {
            let c = Rc::clone(&closed);
            conn.on_closed(move |_| *c.borrow_mut() += 1);
        }
        conn.send(&mut p.sim, b"bye");
        conn.close(&mut p.sim);
        p.sim.run();
        assert_eq!(conn.state(), State::Done);
        assert_eq!(*closed.borrow(), 1);
        assert_eq!(closed_server.borrow()[0].state(), State::Done);
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let mut p = pair(LinkParams::reliable(
            100_000_000,
            SimDuration::from_millis(20),
        ));
        let _sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let initial = conn.cwnd();
        conn.send(&mut p.sim, &vec![0u8; 300_000]);
        p.sim.run_until(SimTime::from_millis(400));
        assert!(
            conn.cwnd() > initial * 4.0,
            "cwnd {} initial {}",
            conn.cwnd(),
            initial
        );
    }

    #[test]
    fn sending_after_close_panics() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let _sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        conn.close(&mut p.sim);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conn.send(&mut p.sim, b"late");
        }));
        assert!(result.is_err());
    }

    #[test]
    fn two_concurrent_connections_are_demultiplexed() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let per_conn: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
        {
            let pc = Rc::clone(&per_conn);
            p.tcp_b.listen(80, move |_sim, conn| {
                let idx = pc.borrow().len();
                pc.borrow_mut().push(Vec::new());
                let pc = Rc::clone(&pc);
                conn.on_data(move |_sim, data| pc.borrow_mut()[idx].extend_from_slice(&data));
            });
        }
        let c1 = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let c2 = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        c1.send(&mut p.sim, &[1u8; 5000]);
        c2.send(&mut p.sim, &[2u8; 7000]);
        p.sim.run();
        let got = per_conn.borrow();
        assert_eq!(got.len(), 2);
        let mut sizes: Vec<usize> = got.iter().map(|v| v.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5000, 7000]);
        assert!(got.iter().any(|v| v.iter().all(|&b| b == 1)));
        assert!(got.iter().any(|v| v.iter().all(|&b| b == 2)));
        let _ = p.links;
    }

    #[test]
    fn syn_to_closed_port_is_ignored() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 9999));
        p.sim.run_until(SimTime::from_millis(150));
        assert_eq!(conn.state(), State::SynSent);
        assert_eq!(p.tcp_b.connection_count(), 0);
    }

    #[test]
    fn dead_peer_aborts_after_consecutive_rtos() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let _sink = server_sink(&p.tcp_b);
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        let errors: Rc<RefCell<Vec<String>>> = Rc::default();
        {
            let e = Rc::clone(&errors);
            conn.on_error(move |_sim, reason| e.borrow_mut().push(reason.to_string()));
        }
        conn.send(&mut p.sim, &vec![3u8; 500_000]);
        // Mid-transfer the path dies permanently, in both directions.
        {
            let (ab, ba) = (Rc::clone(&p.links.0), Rc::clone(&p.links.1));
            p.sim.schedule_at(SimTime::from_millis(50), move |_| {
                let mut dead = ab.params();
                dead.loss = LossModel::Bernoulli { p: 1.0 };
                ab.set_params(dead.clone());
                ba.set_params(dead);
            });
        }
        p.sim.run();
        // Regression: this used to retransmit at MAX_RTO forever (the
        // backoff counter was written but never read). Now it gives up.
        assert_eq!(conn.state(), State::Aborted);
        assert_eq!(conn.stats.aborts.get(), 1);
        assert!(conn.stats.rtos.get() >= crate::conn::MAX_CONSECUTIVE_RTOS as u64);
        assert_eq!(errors.borrow().len(), 1);
        assert!(errors.borrow()[0].contains("retransmission limit"));
        // ... and promptly: well before a MAX_RTO treadmill would.
        assert!(p.sim.now().as_secs_f64() < 180.0);
    }

    #[test]
    fn syn_is_retransmitted_after_rto() {
        let mut p = pair(LinkParams::reliable(
            10_000_000,
            SimDuration::from_millis(5),
        ));
        // Server listens, but the first SYN is swallowed by a blackout.
        let _sink = server_sink(&p.tcp_b);
        let mut black = p.links.0.params();
        black.loss = LossModel::Bernoulli { p: 1.0 };
        let normal = p.links.0.params();
        p.links.0.set_params(black);
        {
            let link = Rc::clone(&p.links.0);
            p.sim
                .schedule_at(SimTime::from_millis(500), move |_| link.set_params(normal));
        }
        let conn = p.tcp_a.connect(&mut p.sim, A, SocketAddr::new(B, 80));
        p.sim.run();
        assert_eq!(conn.state(), State::Established);
        assert!(conn.stats.rtos.get() >= 1);
    }
}

#[cfg(test)]
mod burst_loss_tests {
    use super::*;
    use crate::conn::State;
    use bytes::Bytes;
    use netstack::node::Network;
    use netstack::Subnet;
    use simnet::link::{LinkParams, LossModel};
    use simnet::rng::rng_for;
    use simnet::trace::Trace;
    use simnet::SimDuration;
    use std::cell::RefCell;

    const A: Ip = Ip::new(10, 0, 0, 1);
    const B: Ip = Ip::new(10, 0, 0, 2);

    /// Gilbert–Elliott burst loss: whole windows die together, the worst
    /// case for cumulative-ACK recovery. The stream must still arrive
    /// intact.
    #[test]
    fn stream_survives_bursty_gilbert_loss() {
        let mut sim = Simulator::new();
        let trace = Trace::bounded(16);
        let mut net = Network::new();
        let a = net.add_node("a", A);
        let b = net.add_node("b", B);
        let mut params = LinkParams::reliable(3_000_000, SimDuration::from_millis(10));
        params.queue_capacity = 2048;
        params.loss = LossModel::Gilbert {
            p_enter_bad: 0.01,
            p_exit_bad: 0.25,
            loss_in_bad: 0.9,
        };
        let (ab, ba) = Network::connect(&a, A, &b, B, params);
        ab.set_rng(rng_for(77, "burst.ab"));
        ba.set_rng(rng_for(77, "burst.ba"));
        a.add_route(Subnet::DEFAULT, B);
        b.add_route(Subnet::DEFAULT, A);
        let tcp_a = Tcp::install(a, trace.clone());
        let tcp_b = Tcp::install(b, trace);
        let got: Rc<RefCell<Vec<u8>>> = Rc::default();
        {
            let got = Rc::clone(&got);
            tcp_b.listen(80, move |_sim, conn| {
                let got = Rc::clone(&got);
                conn.on_data(move |_sim, data: Bytes| got.borrow_mut().extend_from_slice(&data));
            });
        }
        let payload: Vec<u8> = (0..250_000u32).map(|i| (i % 233) as u8).collect();
        let conn = tcp_a.connect(&mut sim, A, SocketAddr::new(B, 80));
        conn.send(&mut sim, &payload);
        sim.run();
        assert_eq!(*got.borrow(), payload, "burst loss corrupted the stream");
        assert!(
            conn.stats.retransmits.get() > 0,
            "bursts must force recovery"
        );
        assert_eq!(conn.state(), State::Established);
    }

    /// Both directions carry data simultaneously (full duplex): each
    /// side's stream arrives intact and in order.
    #[test]
    fn full_duplex_streams_do_not_interfere() {
        let mut sim = Simulator::new();
        let trace = Trace::bounded(16);
        let mut net = Network::new();
        let a = net.add_node("a", A);
        let b = net.add_node("b", B);
        Network::connect(
            &a,
            A,
            &b,
            B,
            LinkParams::reliable(5_000_000, SimDuration::from_millis(5)),
        );
        a.add_route(Subnet::DEFAULT, B);
        b.add_route(Subnet::DEFAULT, A);
        let tcp_a = Tcp::install(a, trace.clone());
        let tcp_b = Tcp::install(b, trace);

        let to_b: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        let to_a: Vec<u8> = (0..45_000u32).map(|i| (i % 241) as u8).collect();
        let got_at_b: Rc<RefCell<Vec<u8>>> = Rc::default();
        let got_at_a: Rc<RefCell<Vec<u8>>> = Rc::default();
        {
            let got = Rc::clone(&got_at_b);
            let reply = to_a.clone();
            tcp_b.listen(80, move |sim, conn| {
                // The server immediately starts streaming its own data back.
                conn.send(sim, &reply);
                let got = Rc::clone(&got);
                conn.on_data(move |_sim, data: Bytes| got.borrow_mut().extend_from_slice(&data));
            });
        }
        let conn = tcp_a.connect(&mut sim, A, SocketAddr::new(B, 80));
        {
            let got = Rc::clone(&got_at_a);
            conn.on_data(move |_sim, data: Bytes| got.borrow_mut().extend_from_slice(&data));
        }
        conn.send(&mut sim, &to_b);
        sim.run();
        assert_eq!(*got_at_b.borrow(), to_b);
        assert_eq!(*got_at_a.borrow(), to_a);
    }
}
