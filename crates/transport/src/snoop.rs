//! The snoop agent — "packet caching" at the base station.
//!
//! Balakrishnan et al. \[1\] (cited in §5.2): the base station caches TCP
//! data segments heading to the mobile host and watches the ACK stream
//! coming back. When duplicate ACKs reveal a loss on the wireless hop, the
//! base station retransmits from its cache *locally* and suppresses the
//! duplicate ACKs so the fixed sender never notices — its congestion
//! window stays open and no end-to-end retransmission (or RTO) is paid.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use netstack::node::TapResult;
use netstack::{IpPacket, Node, Payload, Protocol, Subnet};
use simnet::stats::Counter;
use simnet::trace::Trace;
use simnet::{SimDuration, SimTime, Simulator};

use crate::seg::{SocketAddr, TcpSegment};

/// Per-connection snoop state.
struct FlowState {
    /// Cached unacknowledged data segments toward the mobile, keyed by seq.
    cache: BTreeMap<u64, TcpSegment>,
    /// Highest cumulative ACK seen from the mobile.
    last_ack: u64,
    /// Count of consecutive duplicate ACKs currently suppressed.
    dup_count: u32,
    /// When the base station last retransmitted locally.
    last_local_retx: SimTime,
    /// When the mobile last acknowledged new data.
    last_progress: SimTime,
}

/// A snoop agent installed on a base-station node via the node's tap.
pub struct SnoopAgent {
    node: Rc<Node>,
    mobile_net: Subnet,
    flows: RefCell<HashMap<(SocketAddr, SocketAddr), FlowState>>,
    /// Local retransmission timeout: how long the head-of-line segment may
    /// sit unacknowledged before the base station resends it unprompted.
    local_timeout: SimDuration,
    /// Data segments cached.
    pub cached: Counter,
    /// Local retransmissions performed.
    pub local_retransmits: Counter,
    /// Of which, triggered by the local timer (vs duplicate ACKs).
    pub timer_retransmits: Counter,
    /// Duplicate ACKs suppressed before they reached the fixed sender.
    pub suppressed_dupacks: Counter,
    trace: Trace,
}

impl std::fmt::Debug for SnoopAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnoopAgent")
            .field("mobile_net", &self.mobile_net)
            .field("local_retransmits", &self.local_retransmits.get())
            .field("suppressed_dupacks", &self.suppressed_dupacks.get())
            .finish()
    }
}

impl SnoopAgent {
    /// Installs snooping on `base_station`. Traffic *to* addresses inside
    /// `mobile_net` is cached; duplicate ACKs *from* those addresses
    /// trigger local retransmission and are suppressed.
    ///
    /// Claims the node's tap slot.
    pub fn install(base_station: &Rc<Node>, mobile_net: Subnet, trace: Trace) -> Rc<Self> {
        let agent = Rc::new(SnoopAgent {
            node: Rc::clone(base_station),
            mobile_net,
            flows: RefCell::new(HashMap::new()),
            local_timeout: SimDuration::from_millis(100),
            cached: Counter::new(),
            local_retransmits: Counter::new(),
            timer_retransmits: Counter::new(),
            suppressed_dupacks: Counter::new(),
            trace,
        });
        {
            let agent = Rc::clone(&agent);
            base_station.set_tap(move |sim, node, pkt| agent.tap(sim, node, pkt));
        }
        agent
    }

    /// Retransmits `cached` toward the mobile from the base station.
    fn retransmit_local(&self, sim: &mut Simulator, cached: TcpSegment, by_timer: bool) {
        self.local_retransmits.incr();
        if by_timer {
            self.timer_retransmits.incr();
        }
        self.trace.log(
            sim.now(),
            "snoop",
            format!(
                "local retransmit seq={}{}",
                cached.seq,
                if by_timer { " (timer)" } else { "" }
            ),
        );
        let size = cached.wire_size();
        let out = IpPacket::new(
            cached.src.ip,
            cached.dst.ip,
            Protocol::Tcp,
            Payload::new(cached, size),
        );
        let node = Rc::clone(&self.node);
        node.forward(sim, out);
    }

    /// Arms the head-of-line watchdog for `(key, seq)`: if the segment is
    /// still cached and still the next one the mobile expects when the
    /// timer fires, resend it locally and re-arm (bounded attempts).
    fn arm_local_timer(
        self: &Rc<Self>,
        sim: &mut Simulator,
        key: (SocketAddr, SocketAddr),
        seq: u64,
        attempt: u32,
    ) {
        if attempt >= 6 {
            return;
        }
        let agent = Rc::clone(self);
        let delay = SimDuration::from_nanos(self.local_timeout.as_nanos() << attempt.min(4));
        sim.schedule_in(delay, move |sim| {
            // Only act when the segment is still head-of-line AND the ack
            // stream has genuinely stalled — while acks keep arriving the
            // segment is just queued behind others, not lost.
            let (stale, segment) = {
                let flows = agent.flows.borrow();
                match flows.get(&key) {
                    Some(flow)
                        if flow.last_ack == seq
                            && sim.now().since(flow.last_progress) >= agent.local_timeout / 2 =>
                    {
                        (true, flow.cache.get(&seq).cloned())
                    }
                    Some(flow) if flow.cache.contains_key(&seq) => {
                        // Still cached but not stalled: keep watching.
                        let _ = flow;
                        agent.arm_local_timer(sim, key, seq, attempt + 1);
                        (false, None)
                    }
                    _ => (false, None),
                }
            };
            if !stale {
                return;
            }
            if let Some(cached) = segment {
                if let Some(flow) = agent.flows.borrow_mut().get_mut(&key) {
                    flow.last_local_retx = sim.now();
                }
                agent.retransmit_local(sim, cached, true);
                agent.arm_local_timer(sim, key, seq, attempt + 1);
            }
        });
    }

    fn tap(self: &Rc<Self>, sim: &mut Simulator, node: &Rc<Node>, pkt: IpPacket) -> TapResult {
        if pkt.proto != Protocol::Tcp {
            return TapResult::Continue(pkt);
        }
        let Some(seg) = pkt.payload.downcast_ref::<TcpSegment>().cloned() else {
            return TapResult::Continue(pkt);
        };

        let to_mobile = self.mobile_net.contains(pkt.dst) && !self.mobile_net.contains(pkt.src);
        let from_mobile = self.mobile_net.contains(pkt.src) && !self.mobile_net.contains(pkt.dst);

        if to_mobile && !seg.data.is_empty() {
            // Cache a copy of the data segment on its way to the mobile and
            // arm the head-of-line watchdog for it.
            let key = (seg.src, seg.dst);
            let seq = seg.seq;
            {
                let mut flows = self.flows.borrow_mut();
                let now = sim.now();
                let flow = flows.entry(key).or_insert_with(|| FlowState {
                    cache: BTreeMap::new(),
                    last_ack: 0,
                    dup_count: 0,
                    last_local_retx: SimTime::ZERO,
                    last_progress: now,
                });
                flow.cache.insert(seq, seg.clone());
            }
            self.cached.incr();
            self.arm_local_timer(sim, key, seq, 0);
            return TapResult::Continue(pkt);
        }

        if from_mobile && seg.is_pure_ack() {
            // The flow is keyed by the *downstream* direction.
            let key = (seg.dst, seg.src);
            let mut flows = self.flows.borrow_mut();
            let Some(flow) = flows.get_mut(&key) else {
                return TapResult::Continue(pkt);
            };
            if seg.ack > flow.last_ack {
                // Progress: clean the cache and pass the ACK through.
                flow.last_ack = seg.ack;
                flow.dup_count = 0;
                flow.last_progress = sim.now();
                flow.cache
                    .retain(|&s, cached| s + cached.data.len() as u64 > seg.ack);
                return TapResult::Continue(pkt);
            }
            if seg.ack == flow.last_ack {
                // Duplicate ACK: if the missing segment is cached, serve it
                // from here and hide the dupack from the fixed sender.
                if let Some(cached) = flow.cache.get(&seg.ack).cloned() {
                    flow.dup_count += 1;
                    self.suppressed_dupacks.incr();
                    // Retransmit locally on the first duplicate; later
                    // duplicates only trigger a resend if the previous
                    // local copy has had time to die on the air (the
                    // watchdog timer also covers silent losses).
                    let resend = flow.dup_count == 1
                        || sim.now().since(flow.last_local_retx) > self.local_timeout / 2;
                    if resend {
                        flow.last_local_retx = sim.now();
                        drop(flows);
                        self.retransmit_local(sim, cached, false);
                    }
                    let _ = node;
                    return TapResult::Consumed;
                }
            }
        }

        TapResult::Continue(pkt)
    }

    /// Number of segments currently cached across all flows.
    pub fn cache_len(&self) -> usize {
        self.flows.borrow().values().map(|f| f.cache.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::MSS;
    use crate::tcp::Tcp;
    use bytes::Bytes;
    use netstack::node::Network;
    use netstack::Ip;
    use simnet::link::{LinkParams, LossModel};
    use simnet::rng::rng_for;
    use simnet::{SimDuration, Simulator};
    use std::cell::RefCell;

    const FIXED: Ip = Ip::new(10, 0, 0, 1);
    const BS: Ip = Ip::new(10, 0, 0, 254);
    const MOBILE: Ip = Ip::new(172, 16, 0, 5);

    /// fixed —wired— bs —wireless(lossy)— mobile
    fn world(wireless_loss: LossModel) -> (Simulator, Rc<Tcp>, Rc<Tcp>, Rc<Node>, Trace) {
        let sim = Simulator::new();
        let trace = Trace::for_test();
        let mut net = Network::new();
        let fixed = net.add_node("fixed", FIXED);
        let bs = net.add_node("bs", BS);
        let mobile = net.add_node("mobile", MOBILE);

        Network::connect(&fixed, FIXED, &bs, BS, LinkParams::wired_wan());

        let mut wparams = LinkParams::reliable(2_000_000, SimDuration::from_millis(5));
        wparams.loss = wireless_loss;
        wparams.queue_capacity = 1024;
        let (bs_m, m_bs) = Network::connect(&bs, BS, &mobile, MOBILE, wparams);
        bs_m.set_rng(rng_for(5, "snoop.down"));
        m_bs.set_rng(rng_for(5, "snoop.up"));

        fixed.add_route(Subnet::DEFAULT, BS);
        mobile.add_route(Subnet::DEFAULT, BS);

        let tcp_fixed = Tcp::install(fixed, trace.clone());
        let tcp_mobile = Tcp::install(mobile, trace.clone());
        (sim, tcp_fixed, tcp_mobile, bs, trace)
    }

    fn mobile_sink(tcp: &Rc<Tcp>) -> Rc<RefCell<Vec<u8>>> {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();
        let b = Rc::clone(&buf);
        tcp.listen(80, move |_sim, conn| {
            let b = Rc::clone(&b);
            conn.on_data(move |_sim, data: Bytes| b.borrow_mut().extend_from_slice(&data));
        });
        buf
    }

    #[test]
    fn snoop_hides_wireless_loss_from_the_fixed_sender() {
        let loss = LossModel::Bernoulli { p: 0.05 };
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();

        // Baseline: no snoop.
        let (mut sim, tcp_f, tcp_m, _bs, _tr) = world(loss.clone());
        let sink = mobile_sink(&tcp_m);
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(MOBILE, 80));
        conn.send(&mut sim, &payload);
        sim.run();
        assert_eq!(*sink.borrow(), payload);
        let baseline_end_retx = conn.stats.retransmits.get();
        let baseline_time = sim.now();

        // With snoop.
        let (mut sim, tcp_f, tcp_m, bs, trace) = world(loss);
        let agent = SnoopAgent::install(&bs, Subnet::new(MOBILE, 24), trace);
        let sink = mobile_sink(&tcp_m);
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(MOBILE, 80));
        conn.send(&mut sim, &payload);
        sim.run();
        assert_eq!(*sink.borrow(), payload);

        assert!(agent.local_retransmits.get() > 0, "snoop must act");
        assert!(agent.suppressed_dupacks.get() > 0);
        // End-to-end retransmissions collapse versus the baseline.
        assert!(
            conn.stats.retransmits.get() * 2 < baseline_end_retx.max(1),
            "snoop retx {} vs baseline {}",
            conn.stats.retransmits.get(),
            baseline_end_retx
        );
        // And the transfer is at least as fast.
        assert!(sim.now() <= baseline_time);
    }

    #[test]
    fn cache_is_cleaned_by_progress_acks() {
        let (mut sim, tcp_f, tcp_m, bs, trace) = world(LossModel::None);
        let agent = SnoopAgent::install(&bs, Subnet::new(MOBILE, 24), trace);
        let _sink = mobile_sink(&tcp_m);
        let conn = tcp_f.connect(&mut sim, FIXED, SocketAddr::new(MOBILE, 80));
        conn.send(&mut sim, &vec![0u8; 50 * MSS]);
        sim.run();
        assert!(agent.cached.get() >= 50);
        assert_eq!(agent.cache_len(), 0, "acked segments must leave the cache");
        assert_eq!(agent.local_retransmits.get(), 0);
    }

    #[test]
    fn non_tcp_traffic_passes_untouched() {
        let (mut sim, _tcp_f, _tcp_m, bs, trace) = world(LossModel::None);
        let agent = SnoopAgent::install(&bs, Subnet::new(MOBILE, 24), trace);
        // Hand-inject a UDP packet through the BS tap path.
        let pkt = IpPacket::new(FIXED, MOBILE, Protocol::Udp, Payload::new((), 64));
        bs.receive(&mut sim, pkt);
        sim.run();
        assert_eq!(agent.cached.get(), 0);
        assert_eq!(bs.forwarded.get(), 1);
    }
}
