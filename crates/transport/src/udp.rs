//! UDP: unreliable datagrams with port demultiplexing.
//!
//! Mobile IP keeps "UDP port bindings" alive across roaming (§5.2); this
//! is the service those bindings belong to. The middleware layer also uses
//! it for lightweight request/reply exchanges (WAP's datagram-oriented
//! WDP leg).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

use netstack::{Ip, IpPacket, Node, Payload, Protocol};
use simnet::stats::Counter;
use simnet::Simulator;

use crate::seg::SocketAddr;

/// Simulated UDP header size in bytes.
pub const UDP_HEADER_BYTES: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram {
    /// Sender's socket address.
    pub src: SocketAddr,
    /// Receiver's socket address.
    pub dst: SocketAddr,
    /// Payload bytes.
    pub data: Bytes,
}

type PortHandler = Rc<dyn Fn(&mut Simulator, UdpDatagram)>;

/// The UDP protocol instance attached to one [`Node`].
pub struct Udp {
    node: Rc<Node>,
    ports: RefCell<HashMap<u16, PortHandler>>,
    /// Datagrams delivered to a bound port.
    pub delivered: Counter,
    /// Datagrams dropped for lack of a bound port.
    pub dropped: Counter,
}

impl std::fmt::Debug for Udp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Udp")
            .field("node", &self.node.name())
            .field("ports", &self.ports.borrow().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Udp {
    /// Installs a UDP instance on `node`, claiming its
    /// [`Protocol::Udp`] upper-layer slot.
    pub fn install(node: Rc<Node>) -> Rc<Self> {
        let udp = Rc::new(Udp {
            node: Rc::clone(&node),
            ports: RefCell::new(HashMap::new()),
            delivered: Counter::new(),
            dropped: Counter::new(),
        });
        {
            let udp = Rc::clone(&udp);
            node.set_upper(Protocol::Udp, move |sim, pkt| udp.handle_packet(sim, pkt));
        }
        udp
    }

    /// Binds `port` to `handler`. Replaces any previous binding.
    pub fn bind(&self, port: u16, handler: impl Fn(&mut Simulator, UdpDatagram) + 'static) {
        self.ports.borrow_mut().insert(port, Rc::new(handler));
    }

    /// Removes a port binding.
    pub fn unbind(&self, port: u16) {
        self.ports.borrow_mut().remove(&port);
    }

    /// Sends a datagram from `src_port` on this node to `dst`.
    pub fn send_to(
        &self,
        sim: &mut Simulator,
        src_ip: Ip,
        src_port: u16,
        dst: SocketAddr,
        data: impl Into<Bytes>,
    ) {
        let data = data.into();
        let dgram = UdpDatagram {
            src: SocketAddr::new(src_ip, src_port),
            dst,
            data,
        };
        let size = UDP_HEADER_BYTES + dgram.data.len();
        let pkt = IpPacket::new(src_ip, dst.ip, Protocol::Udp, Payload::new(dgram, size));
        let node = Rc::clone(&self.node);
        node.send(sim, pkt);
    }

    fn handle_packet(&self, sim: &mut Simulator, pkt: IpPacket) {
        let Some(dgram) = pkt.payload.downcast_ref::<UdpDatagram>().cloned() else {
            return;
        };
        let handler = self.ports.borrow().get(&dgram.dst.port).cloned();
        match handler {
            Some(h) => {
                self.delivered.incr();
                h(sim, dgram);
            }
            None => self.dropped.incr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::node::Network;
    use netstack::Subnet;
    use simnet::link::LinkParams;
    use simnet::SimDuration;

    const A: Ip = Ip::new(10, 0, 0, 1);
    const B: Ip = Ip::new(10, 0, 0, 2);

    fn pair() -> (Simulator, Rc<Udp>, Rc<Udp>) {
        let sim = Simulator::new();
        let mut net = Network::new();
        let a = net.add_node("a", A);
        let b = net.add_node("b", B);
        Network::connect(
            &a,
            A,
            &b,
            B,
            LinkParams::reliable(1_000_000, SimDuration::from_millis(2)),
        );
        a.add_route(Subnet::DEFAULT, B);
        b.add_route(Subnet::DEFAULT, A);
        (sim, Udp::install(a), Udp::install(b))
    }

    #[test]
    fn datagram_reaches_bound_port() {
        let (mut sim, ua, ub) = pair();
        let got: Rc<RefCell<Vec<UdpDatagram>>> = Rc::default();
        let g = Rc::clone(&got);
        ub.bind(53, move |_sim, d| g.borrow_mut().push(d));
        ua.send_to(&mut sim, A, 1000, SocketAddr::new(B, 53), &b"query"[..]);
        sim.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].data[..], b"query");
        assert_eq!(got[0].src, SocketAddr::new(A, 1000));
        assert_eq!(ub.delivered.get(), 1);
    }

    #[test]
    fn unbound_port_drops() {
        let (mut sim, ua, ub) = pair();
        ua.send_to(&mut sim, A, 1000, SocketAddr::new(B, 9), &b"x"[..]);
        sim.run();
        assert_eq!(ub.dropped.get(), 1);
        assert_eq!(ub.delivered.get(), 0);
    }

    #[test]
    fn unbind_stops_delivery() {
        let (mut sim, ua, ub) = pair();
        let got: Rc<RefCell<u32>> = Rc::default();
        let g = Rc::clone(&got);
        ub.bind(7, move |_sim, _| *g.borrow_mut() += 1);
        ua.send_to(&mut sim, A, 1, SocketAddr::new(B, 7), &b"a"[..]);
        sim.run();
        ub.unbind(7);
        ua.send_to(&mut sim, A, 1, SocketAddr::new(B, 7), &b"b"[..]);
        sim.run();
        assert_eq!(*got.borrow(), 1);
        assert_eq!(ub.dropped.get(), 1);
    }

    #[test]
    fn reply_round_trip() {
        let (mut sim, ua, ub) = pair();
        // Server echoes.
        {
            let ub2 = Rc::clone(&ub);
            ub.bind(7, move |sim, d| {
                let data = d.data.clone();
                ub2.send_to(sim, B, 7, d.src, data);
            });
        }
        let got: Rc<RefCell<Vec<Bytes>>> = Rc::default();
        let g = Rc::clone(&got);
        ua.bind(1234, move |_sim, d| g.borrow_mut().push(d.data));
        ua.send_to(&mut sim, A, 1234, SocketAddr::new(B, 7), &b"ping"[..]);
        sim.run();
        assert_eq!(&got.borrow()[0][..], b"ping");
    }
}
